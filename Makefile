# Development entry points.  Everything runs from the repo root and
# needs only the baked-in toolchain (python + pytest).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-smoke bench bench-core bench-scenario bench-replication bench-stream bench-storage bench-serve bench-large docs-check check

# Tier-1 gate: the full test suite, fail-fast.
test:
	$(PYTHON) -m pytest -x -q

# Seconds-long proof that the parallel sweep engine reproduces the
# sequential results (and a rough speedup reading), plus the
# classifier-core micro-benchmarks (ID core vs retained dict core,
# bit-identical outputs asserted; JSON record in benchmarks/results/)
# and the scenario-executor dispatch benchmark (executor output
# asserted identical to the retained drivers).
bench-smoke:
	$(PYTHON) benchmarks/bench_parallel_sweep.py --scale smoke --workers 2
	$(PYTHON) benchmarks/bench_classifier_core.py --scale smoke
	$(PYTHON) benchmarks/bench_scenario_overhead.py --scale smoke
	$(PYTHON) benchmarks/bench_replication.py --scale smoke --workers 2
	$(PYTHON) benchmarks/bench_stream_throughput.py --scale smoke --workers 2
	$(PYTHON) benchmarks/bench_stream_throughput.py --scale smoke --ticks
	$(PYTHON) benchmarks/bench_storage.py --scale smoke
	$(PYTHON) benchmarks/bench_serve.py --scale smoke

# The classifier-core micro-benchmarks at the default (1/10) scale;
# writes benchmarks/results/BENCH_classifier_core.json.
bench-core:
	$(PYTHON) benchmarks/bench_classifier_core.py --scale small

# Scenario-executor equivalence + dispatch overhead at the default
# scale; appends to benchmarks/results/BENCH_scenario.json.
bench-scenario:
	$(PYTHON) benchmarks/bench_scenario_overhead.py --scale small

# Flattened (seed x spec x fold) replication pool vs the naive
# sequential seed loop, records asserted identical; appends to
# benchmarks/results/BENCH_replication.json.
bench-replication:
	$(PYTHON) benchmarks/bench_replication.py --scale small --workers 2

# Streaming engine: multi-seed streams sequential vs shared-pool,
# records asserted identical, messages/sec reported; appends to
# benchmarks/results/BENCH_stream.json.
bench-stream:
	$(PYTHON) benchmarks/bench_stream_throughput.py --scale small --workers 2

# Storage backends head-to-head: ingest throughput (memory vs disk),
# cold-open latency of an on-disk table, and fold-scoring ratio with
# scores asserted identical; appends to
# benchmarks/results/BENCH_storage.json.
bench-storage:
	$(PYTHON) benchmarks/bench_storage.py --scale small

# The serving layer under concurrent load: batched vs unbatched
# scoring SLOs (p50/p99, msgs/sec), served scores asserted identical
# to the library; enforces the batched >= 2x unbatched floor and
# appends to benchmarks/results/BENCH_serve.json.
bench-serve:
	$(PYTHON) benchmarks/bench_serve.py --scale small

# The headline perf scale: big enough that the NumPy kernel's
# fold-scoring speedup and the pooled engines' fixed costs are
# measured against real work, small enough for a CI job.  Writes
# BENCH_*.large.json records into benchmarks/results/.
bench-large:
	$(PYTHON) benchmarks/bench_classifier_core.py --scale large
	$(PYTHON) benchmarks/bench_replication.py --scale large --workers 2
	$(PYTHON) benchmarks/bench_stream_throughput.py --scale large --workers 2
	$(PYTHON) benchmarks/bench_stream_throughput.py --scale large --ticks
	$(PYTHON) benchmarks/bench_storage.py --scale large

# The full benchmark suite: renders every figure/table artifact into
# benchmarks/results/.  REPRO_SCALE=paper for Table 1 sizes.
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Fail if README.md / docs/ reference a file or CLI subcommand that
# does not exist.
docs-check:
	$(PYTHON) tools/check_docs_links.py

check: test docs-check bench-smoke
