"""E-A8 — ablation: is the attack specific to Fisher combining?

The paper attacks SpamBayes' Robinson/Fisher scoring and argues
(Section 7) that "other spam filtering systems based on similar
learning algorithms" — BogoFilter, SpamAssassin's Bayes — should be
vulnerable too.  This ablation tests that claim inside one codebase:
the same training state scored by the Robinson/Fisher combiner vs
Graham's 2002 naive-Bayes-odds combiner, under the same usenet
dictionary attack.
"""

from __future__ import annotations

from repro.attacks.dictionary import UsenetDictionaryAttack
from repro.corpus.trec import TrecStyleCorpus
from repro.corpus.vocabulary import PAPER_PROFILE, SMALL_PROFILE
from repro.experiments.crossval import (
    attack_message_count,
    evaluate_dataset,
    train_grouped,
)
from repro.experiments.reporting import format_table
from repro.rng import SeedSpawner
from repro.spambayes.classifier import Classifier
from repro.spambayes.graham import GrahamClassifier


def _run(scale: str):
    if scale == "paper":
        corpus = TrecStyleCorpus.generate(
            n_ham=6_000, n_spam=6_000, profile=PAPER_PROFILE, seed=18
        )
        inbox_size = 10_000
    else:
        corpus = TrecStyleCorpus.generate(
            n_ham=700, n_spam=700, profile=SMALL_PROFILE, seed=18
        )
        inbox_size = 1_000
    spawner = SeedSpawner(18).spawn("ablation-combiners")
    inbox = corpus.dataset.sample_inbox(inbox_size, 0.5, spawner.rng("inbox"))
    inbox.tokenize_all()
    inbox_ids = {m.msgid for m in inbox}
    held_out = [m for m in corpus.dataset if m.msgid not in inbox_ids][:300]
    attack = UsenetDictionaryAttack.from_vocabulary(corpus.vocabulary)

    combiners = {
        "robinson-fisher (SpamBayes)": Classifier(),
        "graham-2002 (naive bayes odds)": GrahamClassifier(),
    }
    rows = []
    damage = {}
    for name, classifier in combiners.items():
        train_grouped(classifier, inbox)
        clean = evaluate_dataset(classifier, held_out)
        for fraction in (0.01, 0.05):
            working = classifier.copy()
            count = attack_message_count(inbox_size, fraction)
            attack.generate(count, spawner.rng(f"{name}:{fraction}")).train_into(working)
            attacked = evaluate_dataset(working, held_out)
            rows.append(
                [
                    name,
                    f"{fraction:.0%}",
                    f"{clean.ham_misclassified_rate:.1%}",
                    f"{attacked.ham_as_spam_rate:.1%}",
                    f"{attacked.ham_misclassified_rate:.1%}",
                    f"{attacked.spam_as_spam_rate:.1%}",
                ]
            )
            damage[(name, fraction)] = (
                attacked.ham_as_spam_rate,
                attacked.ham_misclassified_rate,
            )
    return rows, damage


def bench_ablation_combiners(benchmark, artifacts, scale):
    rows, damage = benchmark.pedantic(_run, args=(scale,), rounds=1, iterations=1)

    fisher = "robinson-fisher (SpamBayes)"
    graham = "graham-2002 (naive bayes odds)"
    # Section 7 claim: both combiners are substantially poisoned (clean
    # rates are ~0, attacked rates are tens of percent)...
    for (name, fraction), (as_spam, lost) in damage.items():
        assert lost > 0.15, f"{name} resisted at {fraction:.0%}"
    # ...but they fail differently: Fisher's unsure band floods (more
    # total ham lost), while Graham's hard 0.99-clamped odds jump
    # straight to spam verdicts (more outright false positives at 1%).
    assert damage[(fisher, 0.05)][1] > damage[(graham, 0.05)][1]
    assert damage[(graham, 0.01)][0] > damage[(fisher, 0.01)][0]

    table = format_table(
        [
            "combiner",
            "attack",
            "clean ham lost",
            "ham-as-spam",
            "ham lost",
            "spam caught",
        ],
        rows,
    )
    artifacts.add(
        "ablation-combiners",
        f"E-A8 combiner ablation (scale={scale}, usenet dictionary attack)\n\n{table}"
        + "\n\nreading: the poisoned quantity is the per-token statistic, which both"
        + "\nRobinson/Fisher and Graham-style combiners consume — the attack"
        + "\ntransfers across combining rules (the paper's Section 7 claim about"
        + "\nBogoFilter / SpamAssassin-Bayes). The failure *mode* differs: Fisher"
        + "\nfloods the unsure band, while Graham's clamped odds convert the same"
        + "\npoison directly into ham-as-spam false positives.",
    )
