"""E-A1 — ablation: dictionary size vs attack effectiveness.

Section 3.2 argues a frequency-ranked word source lets the attacker
"send smaller emails without losing much effectiveness", and Section
4.2 notes attack emails are ~6-7x the corpus token mass at 2% control.
This ablation sweeps Usenet top-k against full dictionaries, printing
effectiveness alongside the attack's token cost.
"""

from __future__ import annotations

from repro.analysis.plots import ascii_line_chart
from repro.attacks.dictionary import UsenetDictionaryAttack
from repro.corpus.stats import corpus_statistics
from repro.corpus.trec import TrecStyleCorpus
from repro.corpus.vocabulary import PAPER_PROFILE, SMALL_PROFILE
from repro.experiments.crossval import attack_fraction_sweep
from repro.experiments.reporting import format_table
from repro.rng import SeedSpawner


def _run(scale: str):
    if scale == "paper":
        corpus = TrecStyleCorpus.generate(
            n_ham=6_000, n_spam=6_000, profile=PAPER_PROFILE, seed=10
        )
        inbox_size, folds = 10_000, 3
        top_ks = (90_000, 45_000, 22_500, 9_000, 2_000)
    else:
        corpus = TrecStyleCorpus.generate(
            n_ham=700, n_spam=700, profile=SMALL_PROFILE, seed=10
        )
        inbox_size, folds = 1_000, 2
        top_ks = (9_000, 4_500, 2_250, 900, 200)
    spawner = SeedSpawner(10).spawn("ablation-dictsize")
    inbox = corpus.dataset.sample_inbox(inbox_size, 0.5, spawner.rng("inbox"))
    inbox.tokenize_all()
    fraction = 0.02
    rows = []
    curve = []
    stats = corpus_statistics(inbox)
    for top_k in top_ks:
        attack = UsenetDictionaryAttack.from_vocabulary(corpus.vocabulary, top_k=top_k)
        points = attack_fraction_sweep(
            inbox, attack, (0.0, fraction), folds=folds, rng=spawner.rng(f"k{top_k}")
        )
        attacked = points[1]
        token_cost = attacked.attack_message_count * top_k
        rows.append(
            [
                top_k,
                f"{attacked.confusion.ham_as_spam_rate:.1%}",
                f"{attacked.confusion.ham_misclassified_rate:.1%}",
                f"{token_cost / max(1, stats.token_occurrences):.1f}x",
            ]
        )
        curve.append((top_k, attacked.confusion.ham_misclassified_rate))
    return rows, curve, stats


def bench_ablation_dictionary_size(benchmark, artifacts, scale):
    rows, curve, stats = benchmark.pedantic(_run, args=(scale,), rounds=1, iterations=1)

    # Effectiveness must degrade gracefully, not linearly with size:
    # half the dictionary keeps most of the damage (the paper's point
    # about frequency-ranked sources).
    full = curve[0][1]
    half = curve[1][1]
    assert half > 0.6 * full, "top-half dictionary keeps most effectiveness"

    table = format_table(
        ["usenet top-k", "ham-as-spam @2%", "ham-as-spam|unsure @2%", "attack tokens / corpus tokens"],
        rows,
    )
    chart = ascii_line_chart(
        {"ham misclassified @2%": curve},
        title="Ablation: Usenet dictionary size vs effectiveness (2% control)",
        x_label="dictionary size (words)",
    )
    artifacts.add(
        "ablation-dictionary-size",
        f"E-A1 dictionary-size ablation (scale={scale}; corpus tokens="
        f"{stats.token_occurrences})\n\n{table}\n\n{chart}"
        + "\n\npaper remark checked (Section 4.2): at 2% control the full attack's"
        + "\ntoken mass is several times the corpus; smaller top-k lists shrink that"
        + "\ncost much faster than they shrink effectiveness.",
    )
