"""E-A7 — ablation: learner hyper-parameters vs attack damage.

DESIGN.md pins the paper's learner configuration (s = 0.45, 150
discriminators, θ = (0.15, 0.9)).  This ablation asks whether those
choices matter to the attack's success: smoothing strength ``s``
controls how fast a token's score moves per attack occurrence, and
``max_discriminators`` bounds how much poisoned evidence one message
can contribute.  The result quantifies the (non-)robustness knobs a
defender might hope to hide behind.
"""

from __future__ import annotations

from repro.attacks.dictionary import UsenetDictionaryAttack
from repro.corpus.trec import TrecStyleCorpus
from repro.corpus.vocabulary import PAPER_PROFILE, SMALL_PROFILE
from repro.experiments.crossval import (
    attack_message_count,
    evaluate_dataset,
    train_grouped,
)
from repro.experiments.reporting import format_table
from repro.rng import SeedSpawner
from repro.spambayes.classifier import Classifier
from repro.spambayes.options import ClassifierOptions


def _run(scale: str):
    if scale == "paper":
        corpus = TrecStyleCorpus.generate(
            n_ham=6_000, n_spam=6_000, profile=PAPER_PROFILE, seed=17
        )
        inbox_size = 10_000
    else:
        corpus = TrecStyleCorpus.generate(
            n_ham=700, n_spam=700, profile=SMALL_PROFILE, seed=17
        )
        inbox_size = 1_000
    spawner = SeedSpawner(17).spawn("ablation-options")
    inbox = corpus.dataset.sample_inbox(inbox_size, 0.5, spawner.rng("inbox"))
    inbox.tokenize_all()
    inbox_ids = {m.msgid for m in inbox}
    held_out = [m for m in corpus.dataset if m.msgid not in inbox_ids][:300]
    attack = UsenetDictionaryAttack.from_vocabulary(corpus.vocabulary)
    count = attack_message_count(inbox_size, 0.01)

    variants = {
        "paper (s=0.45, 150 disc)": ClassifierOptions(),
        "strong prior (s=4.5)": ClassifierOptions(unknown_word_strength=4.5),
        "weak prior (s=0.045)": ClassifierOptions(unknown_word_strength=0.045),
        "27 discriminators": ClassifierOptions(max_discriminators=27),
        "unbounded discriminators": ClassifierOptions(max_discriminators=100_000),
        "wide unsure (θ=0.05/0.95)": ClassifierOptions(ham_cutoff=0.05, spam_cutoff=0.95),
    }
    rows = []
    damages = {}
    for name, options in variants.items():
        classifier = Classifier(options)
        train_grouped(classifier, inbox)
        clean = evaluate_dataset(classifier, held_out)
        attack.generate(count, spawner.rng(name)).train_into(classifier)
        attacked = evaluate_dataset(classifier, held_out)
        rows.append(
            [
                name,
                f"{clean.ham_misclassified_rate:.1%}",
                f"{clean.spam_as_spam_rate:.1%}",
                f"{attacked.ham_misclassified_rate:.1%}",
                f"{attacked.ham_as_spam_rate:.1%}",
            ]
        )
        damages[name] = attacked.ham_misclassified_rate
    return rows, damages


def bench_ablation_learner_options(benchmark, artifacts, scale):
    rows, damages = benchmark.pedantic(_run, args=(scale,), rounds=1, iterations=1)

    # No hyper-parameter setting saves the filter at 1% contamination —
    # the attack exploits the learning rule itself, not a tuning choice.
    for name, damage in damages.items():
        assert damage > 0.3, f"{name} unexpectedly resisted the attack"

    table = format_table(
        [
            "learner configuration",
            "clean ham lost",
            "clean spam caught",
            "@1% ham lost",
            "@1% ham-as-spam",
        ],
        rows,
    )
    artifacts.add(
        "ablation-learner-options",
        f"E-A7 learner hyper-parameter ablation (scale={scale}, usenet @1%)\n\n{table}"
        + "\n\nreading: smoothing strength, discriminator budget and threshold"
        + "\nplacement all fail to blunt a 1%-control dictionary attack — the"
        + "\nvulnerability is in Robinson's per-token statistics themselves,"
        + "\nwhich is why the paper reaches for training-time (RONI) and"
        + "\nthreshold-refit defenses instead of hyper-parameter hardening.",
    )
