"""E-A2 — ablation: RONI protocol parameters.

The paper fixes T=20, V=50, 5 resamples and promises to extend the
experiment. This ablation sweeps the validation size and the number of
resamples and reports the separation margin (min attack impact - max
non-attack impact, normalized by validation ham count) so the
robustness of the defense's separability is visible, not asserted.
"""

from __future__ import annotations

from repro.defenses.roni import RoniConfig
from repro.experiments.reporting import format_table
from repro.experiments.roni_exp import RoniExperimentConfig, run_roni_experiment


def _run(scale: str):
    reps = 4 if scale == "paper" else 2
    queries = 30 if scale == "paper" else 12
    variants = ("usenet", "aspell")
    rows = []
    for validation_size in (20, 50, 100):
        for trials in (1, 5):
            config = RoniExperimentConfig(
                pool_size=400,
                n_nonattack_spam=queries,
                repetitions_per_variant=reps,
                variants=variants,
                roni=RoniConfig(validation_size=validation_size, trials=trials),
                corpus_ham=400,
                corpus_spam=400,
                seed=11,
            )
            result = run_roni_experiment(config)
            validation_ham = validation_size * (1 - config.roni.spam_fraction)
            margin = result.min_attack_impact - result.max_nonattack_impact
            rows.append(
                [
                    validation_size,
                    trials,
                    f"{result.min_attack_impact:.2f}",
                    f"{result.max_nonattack_impact:.2f}",
                    f"{margin / validation_ham:.1%}",
                    "yes" if result.separable else "NO",
                ]
            )
    return rows


def bench_ablation_roni_parameters(benchmark, artifacts, scale):
    rows = benchmark.pedantic(_run, args=(scale,), rounds=1, iterations=1)

    # Separability must hold at the paper's setting (V=50, 5 trials).
    paper_row = next(row for row in rows if row[0] == 50 and row[1] == 5)
    assert paper_row[-1] == "yes"

    table = format_table(
        [
            "validation size",
            "trials",
            "min attack impact",
            "max non-attack impact",
            "margin / validation ham",
            "separable",
        ],
        rows,
    )
    artifacts.add(
        "ablation-roni-parameters",
        f"E-A2 RONI parameter ablation (scale={scale})\n\n{table}"
        + "\n\nreading: the paper's separability (Section 5.1) is not knife-edge —"
        + "\nit persists across validation sizes and resample counts.",
    )
