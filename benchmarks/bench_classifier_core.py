#!/usr/bin/env python3
"""Micro-benchmarks of the interned token-ID classifier core.

Measures the four hot operations of the experiment harness on the ID
core (:class:`repro.spambayes.classifier.Classifier`) against the
retained PR-1 dict-keyed core
(:class:`repro.spambayes.reference.ReferenceClassifier`), asserting
bit-identical outputs while it times them:

* **learn** — grouped full-inbox training (what every sweep pays once
  per inbox, and every fold pays under ``reuse_clean_model=False``);
* **fold-scoring** — the Figure 1/5 inner loop: layer an attack batch
  increment, bulk-score the held-out fold, repeat over the fraction
  grid (``score_many_ids`` over pre-encoded arrays vs the PR-1
  ``score_many`` over token frozensets);
* **snapshot-restore** — derive a fold model from a shared clean model
  (snapshot, unlearn stripe, layer attack, restore), the engine's
  per-fold bookkeeping;
* **roni-gate** — measure a candidate batch through the RONI defense
  (encoded ``measure_many`` vs the PR-1 per-message-per-trial rescan).

Run it directly (it is a script, not a pytest benchmark)::

    PYTHONPATH=src python benchmarks/bench_classifier_core.py
    PYTHONPATH=src python benchmarks/bench_classifier_core.py --scale smoke

Every run writes a machine-readable record — scale, per-op wall-clock
for both cores, speedups, and the equivalence verdict — so the perf
trajectory of the classifier core accumulates one artifact per
revision.  The default scale writes the canonical
``benchmarks/results/BENCH_classifier_core.json``; other scales write
``BENCH_classifier_core.<scale>.json`` (override with ``--json PATH``)
so a smoke run never clobbers the trajectory record.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import random

from repro.corpus.trec import TrecStyleCorpus
from repro.corpus.vocabulary import SMALL_PROFILE, TINY_PROFILE
from repro.defenses.roni import RoniConfig, RoniDefense
from repro.experiments.dictionary_exp import build_attack_variants
from repro.rng import SeedSpawner
from repro.spambayes import ndkernel
from repro.spambayes.classifier import Classifier
from repro.spambayes.options import DEFAULT_OPTIONS
from repro.spambayes.reference import ReferenceClassifier

_RESULTS_DIR = Path(__file__).resolve().parent / "results"


def _default_json(scale_name: str) -> Path:
    """The canonical trajectory record is the default-scale file;
    other scales get their own suffix so they never clobber it."""
    if scale_name == "small":
        return _RESULTS_DIR / "BENCH_classifier_core.json"
    return _RESULTS_DIR / f"BENCH_classifier_core.{scale_name}.json"


@dataclass(frozen=True)
class Scale:
    profile: object
    corpus_ham: int
    corpus_spam: int
    inbox_size: int
    fractions: tuple[float, ...]
    learn_rounds: int
    snapshot_rounds: int
    roni_candidates: int


SCALES = {
    "smoke": Scale(TINY_PROFILE, 150, 150, 150, (0.0, 0.01, 0.05), 5, 10, 10),
    "small": Scale(SMALL_PROFILE, 700, 700, 1_000, (0.0, 0.001, 0.005, 0.01, 0.02, 0.05, 0.10),
                   5, 10, 40),
    # The vectorized-kernel showcase: fold scoring over a fold big
    # enough that per-message Python overhead dominates the pure cores.
    "large": Scale(SMALL_PROFILE, 1_800, 1_800, 3_000,
                   (0.0, 0.005, 0.01, 0.02, 0.05, 0.10), 3, 6, 40),
}


def _best_of(fn, rounds=3):
    """Best-of-N wall clock for an idempotent callable (noise floor)."""
    best = None
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _grouped_messages(messages):
    """(representative message, is_spam, count) per distinct token set."""
    groups: dict[tuple[bool, frozenset], list] = {}
    for message in messages:
        key = (message.is_spam, message.tokens())
        entry = groups.get(key)
        if entry is None:
            groups[key] = [message, 1]
        else:
            entry[1] += 1
    return [
        (message, is_spam, count)
        for (is_spam, _), (message, count) in groups.items()
    ]


def bench_learn(scale, inbox, table, rounds):
    """Grouped full-inbox training, ID columns vs dict store."""
    groups = _grouped_messages(inbox)
    string_groups = [(m.tokens(), is_spam, count) for m, is_spam, count in groups]
    # Pre-encoded once, as the harness encodes each inbox exactly once.
    encoded_groups = [(m.token_ids(table), is_spam, count) for m, is_spam, count in groups]

    def run_reference():
        for _ in range(rounds):
            classifier = ReferenceClassifier()
            for tokens, is_spam, count in string_groups:
                classifier.learn_repeated(tokens, is_spam, count)
        return classifier

    def run_id_core():
        for _ in range(rounds):
            classifier = Classifier(table=table)
            for ids, is_spam, count in encoded_groups:
                classifier.learn_ids_repeated(ids, is_spam, count)
        return classifier

    ref_time, ref = _best_of(run_reference)
    id_time, new = _best_of(run_id_core)
    identical = (
        ref.nspam == new.nspam
        and ref.nham == new.nham
        and ref.vocabulary_size == new.vocabulary_size
    )
    return ref_time, id_time, identical


EVALUATION_ARMS = 3
"""Figure 5's fold loop scores the held-out fold once per defense arm
(static thresholds plus one evaluation per fitted quantile) at every
contamination level — thresholds change, trained state does not."""


def bench_fold_scoring(scale, inbox, table, attack, seed):
    """The sweep inner loop: attack increment + bulk fold scoring.

    Mirrors the engine's fold task for the threshold experiment: at
    each contamination fraction, layer the attack increment, then
    bulk-score the held-out fold once per defense arm.  The PR-1 path
    re-derives its per-call memo for every arm; the ID core's memos
    persist until the next training call, so arms beyond the first cost
    a probe per message.
    """
    fold = [message for index, message in enumerate(inbox) if index % 3 == 0]
    train = [message for index, message in enumerate(inbox) if index % 3 != 0]
    counts = [round(len(inbox) * f / (1.0 - f)) for f in scale.fractions]
    batch = attack.generate(counts[-1], random.Random(seed))
    groups = _grouped_messages(train)

    fold_sets = [message.tokens() for message in fold]
    reference = ReferenceClassifier()
    for message, is_spam, count in groups:
        reference.learn_repeated(message.tokens(), is_spam, count)

    def run_reference():
        # Snapshot/restore wraps the sweep exactly as an engine fold
        # task does, and makes the run idempotent for best-of-N timing.
        scores = []
        trained = 0
        snap = reference.snapshot()
        try:
            for target in counts:
                for group in batch.groups:  # single-group dictionary batches
                    take = max(0, min(group.count, target) - trained)
                    if take:
                        reference.learn_repeated(group.training_tokens, True, take)
                        trained += take
                for _ in range(EVALUATION_ARMS):
                    scores.append(reference.score_many(fold_sets))
        finally:
            reference.restore(snap)
        return scores

    fold_ids = [message.token_ids(table) for message in fold]
    id_core = Classifier(table=table)
    for message, is_spam, count in groups:
        id_core.learn_ids_repeated(message.token_ids(table), is_spam, count)
    encoded_groups = [id_core.encode_tokens(g.training_tokens) for g in batch.groups]

    def run_id_core():
        scores = []
        trained = 0
        snap = id_core.snapshot()
        try:
            for target in counts:
                for group, ids in zip(batch.groups, encoded_groups):
                    take = max(0, min(group.count, target) - trained)
                    if take:
                        id_core.learn_ids_repeated(ids, True, take)
                        trained += take
                for _ in range(EVALUATION_ARMS):
                    scores.append(id_core.score_many_ids(fold_ids))
        finally:
            id_core.restore(snap)
        return scores

    ref_time, ref_scores = _best_of(run_reference)
    id_time, id_scores = _best_of(run_id_core)

    # Third comparison: the sweep engine's actual per-fold cost on each
    # kernel.  ``run_attack_sweeps`` scores the held-out fold ONCE per
    # contamination level — always cold, because the attack increment
    # just evicted every affected memo entry — and the defense arms
    # reuse that score array.  The pure kernel pays a Python loop per
    # message (``score_many_ids``); the NumPy kernel scores the fold as
    # one CSR block (``score_csr``).  Bit-identical by the differential
    # suite's contract; re-checked here while timed.
    nd_result = None
    if ndkernel.available():
        nd_core = ndkernel.NDClassifier(table=table)
        for message, is_spam, count in groups:
            nd_core.learn_ids_repeated(message.token_ids(table), is_spam, count)
        fold_corpus = ndkernel.CsrMatrix.from_rows(fold_ids)

        def fold_sweep(classifier, score_fold):
            scores = []
            trained = 0
            snap = classifier.snapshot()
            try:
                for target in counts:
                    for group, ids in zip(batch.groups, encoded_groups):
                        take = max(0, min(group.count, target) - trained)
                        if take:
                            classifier.learn_ids_repeated(ids, True, take)
                            trained += take
                    scores.append(score_fold())
            finally:
                classifier.restore(snap)
            return scores

        id_cold_time, id_cold_scores = _best_of(
            lambda: fold_sweep(id_core, lambda: id_core.score_many_ids(fold_ids))
        )
        nd_time, nd_scores = _best_of(
            lambda: fold_sweep(nd_core, lambda: nd_core.score_csr(fold_corpus))
        )
        nd_result = (id_cold_time, nd_time, nd_scores == id_cold_scores)
    return ref_time, id_time, ref_scores == id_scores, nd_result


def bench_snapshot_restore(scale, inbox, table, attack, seed, rounds):
    """Per-fold bookkeeping: snapshot, unlearn stripe, attack, restore."""
    stripe = [message for index, message in enumerate(inbox) if index % 10 == 0]
    groups = _grouped_messages(inbox)
    stripe_groups = _grouped_messages(stripe)
    batch = attack.generate(20, random.Random(seed))

    reference = ReferenceClassifier()
    for message, is_spam, count in groups:
        reference.learn_repeated(message.tokens(), is_spam, count)
    probe = next(iter(inbox)).tokens()
    before_ref = reference.score(probe)

    def run_reference():
        for _ in range(rounds):
            snap = reference.snapshot()
            for message, is_spam, count in stripe_groups:
                reference.unlearn_repeated(message.tokens(), is_spam, count)
            for group in batch.groups:
                reference.learn_repeated(group.training_tokens, True, group.count)
            reference.restore(snap)
        return reference.score(probe)

    id_core = Classifier(table=table)
    stripe_encoded = [
        (message.token_ids(table), is_spam, count)
        for message, is_spam, count in stripe_groups
    ]
    for message, is_spam, count in groups:
        id_core.learn_ids_repeated(message.token_ids(table), is_spam, count)
    batch_encoded = [
        (id_core.encode_tokens(group.training_tokens), group.count) for group in batch.groups
    ]
    probe_ids = next(iter(inbox)).token_ids(table)
    before_id = id_core.score_ids(probe_ids)

    def run_id_core():
        for _ in range(rounds):
            snap = id_core.snapshot()
            for ids, is_spam, count in stripe_encoded:
                id_core.unlearn_ids_repeated(ids, is_spam, count)
            for ids, count in batch_encoded:
                id_core.learn_ids_repeated(ids, True, count)
            id_core.restore(snap)
        return id_core.score_ids(probe_ids)

    ref_time, after_ref = _best_of(run_reference)
    id_time, after_id = _best_of(run_id_core)
    identical = before_ref == after_ref == before_id == after_id
    return ref_time, id_time, identical


def bench_roni_gate(scale, pool, table, candidates, seed):
    """The RONI gate: PR-1 per-message rescans vs encoded measure_many.

    Both arms share the same calibration draw ((T, V) resamples and
    baselines, built once outside the timed region, as the defense
    builds them once per deployment); what is timed is gating the
    candidate batch — the per-query hot path of Section 5.1.
    """
    config = RoniConfig()
    options = DEFAULT_OPTIONS

    # PR-1 arm calibration: trial filters + per-message-scored baselines.
    rng = random.Random(seed)
    needed = config.train_size + config.validation_size
    trials = []
    for _ in range(config.trials):
        sample = pool.sample_inbox(needed, config.spam_fraction, rng)
        classifier = ReferenceClassifier(options)
        for message in sample.messages[: config.train_size]:
            classifier.learn(message.tokens(), message.is_spam)
        validation = [
            (message.tokens(), message.is_spam)
            for message in sample.messages[config.train_size :]
        ]
        trials.append((classifier, validation))

    def counts_of(classifier, validation):
        ham_as_ham = 0.0
        for tokens, is_spam in validation:
            score = classifier.score(tokens)
            if not is_spam and score <= options.ham_cutoff:
                ham_as_ham += 1
        return ham_as_ham

    baselines = [counts_of(classifier, v) for classifier, v in trials]

    def reference_gate():
        impacts = []
        for message in candidates:
            tokens = message.tokens()
            total = 0.0
            for (classifier, validation), baseline in zip(trials, baselines):
                classifier.learn(tokens, True)
                total += counts_of(classifier, validation) - baseline
                classifier.unlearn(tokens, True)
            impacts.append(-(total / len(trials)))
        return impacts

    # ID-core arm calibration: same resample draw, encoded validation.
    defense = RoniDefense(
        pool, random.Random(seed), config=config, options=options, table=table
    )

    def id_gate():
        return [
            measurement.ham_as_ham_decrease
            for measurement in defense.measure_many(candidates)
        ]

    ref_time, ref_impacts = _best_of(reference_gate)
    id_time, id_impacts = _best_of(id_gate)
    return ref_time, id_time, ref_impacts == id_impacts


def run(scale_name: str, seed: int, json_out: Path) -> int:
    scale = SCALES[scale_name]
    print(f"# classifier-core benchmark — scale={scale_name}, seed={seed}")
    spawner = SeedSpawner(seed).spawn("bench-classifier-core")
    corpus = TrecStyleCorpus.generate(
        n_ham=scale.corpus_ham,
        n_spam=scale.corpus_spam,
        profile=scale.profile,
        seed=spawner.child_seed("corpus"),
    )
    inbox = corpus.dataset.sample_inbox(scale.inbox_size, 0.5, spawner.rng("inbox"))
    inbox.tokenize_all()
    table = inbox.encode()
    attack = build_attack_variants(corpus, ("optimal",), seed=seed)["optimal"]
    candidates = corpus.dataset.spam[: scale.roni_candidates]

    fold_ref, fold_id, fold_identical, fold_nd = bench_fold_scoring(
        scale, inbox, table, attack, seed
    )
    records = {}
    all_identical = True
    for name, (ref_time, id_time, identical) in {
        "learn": bench_learn(scale, inbox, table, scale.learn_rounds),
        "fold-scoring": (fold_ref, fold_id, fold_identical),
        "snapshot-restore": bench_snapshot_restore(
            scale, inbox, table, attack, seed, scale.snapshot_rounds
        ),
        "roni-gate": bench_roni_gate(scale, inbox, table, candidates, seed),
    }.items():
        speedup = ref_time / id_time if id_time else float("inf")
        records[name] = {
            "reference_seconds": ref_time,
            "id_core_seconds": id_time,
            "speedup": speedup,
            "identical": identical,
        }
        all_identical = all_identical and identical
        print(
            f"{name:<18} reference {ref_time:8.3f}s   id-core {id_time:8.3f}s   "
            f"speedup x{speedup:5.2f}   identical: {'yes' if identical else 'NO'}"
        )
    if fold_nd is not None:
        id_cold_time, nd_time, nd_identical = fold_nd
        nd_speedup = id_cold_time / nd_time if nd_time else float("inf")
        records["fold-scoring"].update(
            id_cold_seconds=id_cold_time,
            nd_seconds=nd_time,
            nd_speedup_vs_pure=nd_speedup,
            nd_identical=nd_identical,
        )
        all_identical = all_identical and nd_identical
        print(
            f"{'fold-scoring (nd)':<18} pure-cold {id_cold_time:6.3f}s   nd-kernel "
            f"{nd_time:8.3f}s   speedup x{nd_speedup:5.2f}   "
            f"identical: {'yes' if nd_identical else 'NO'}"
        )
    print()
    print("outputs identical across cores:", "yes" if all_identical else "NO")
    json_out.parent.mkdir(parents=True, exist_ok=True)
    json_out.write_text(
        json.dumps(
            {
                "benchmark": "classifier_core",
                "scale": scale_name,
                "seed": seed,
                "operations": records,
                "all_identical": all_identical,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    print(f"wrote {json_out}")
    return 0 if all_identical else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--json", type=Path, default=None,
                        help="where to write the JSON record (default: "
                             "benchmarks/results/BENCH_classifier_core[.<scale>].json)")
    args = parser.parse_args(argv)
    return run(args.scale, args.seed, args.json or _default_json(args.scale))


if __name__ == "__main__":
    sys.exit(main())
