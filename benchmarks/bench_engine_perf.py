"""E-P1 — engine throughput benchmarks (ours, not a paper artifact).

Real pytest-benchmark measurements of the hot paths: tokenization,
incremental training, classification, and the batched dictionary-
attack learning that makes paper-scale sweeps tractable.
"""

from __future__ import annotations

import pytest

from repro.corpus.trec import TrecStyleCorpus
from repro.corpus.vocabulary import SMALL_PROFILE
from repro.corpus.wordlists import build_usenet_wordlist
from repro.rng import SeedSpawner
from repro.spambayes.classifier import Classifier
from repro.spambayes.tokenizer import DEFAULT_TOKENIZER


@pytest.fixture(scope="module")
def corpus():
    return TrecStyleCorpus.generate(n_ham=300, n_spam=300, profile=SMALL_PROFILE, seed=8)


@pytest.fixture(scope="module")
def trained(corpus):
    classifier = Classifier()
    for message in corpus.dataset:
        classifier.learn(message.tokens(), message.is_spam)
    return classifier


def bench_tokenize_email(benchmark, corpus):
    email = corpus.dataset.ham[0].email
    tokens = benchmark(DEFAULT_TOKENIZER.tokenize, email)
    assert tokens


def bench_learn_one_message(benchmark, corpus):
    tokens = corpus.dataset.ham[0].tokens()

    def learn_and_unlearn():
        classifier = Classifier()
        classifier.learn(tokens, False)
        return classifier

    assert benchmark(learn_and_unlearn).nham == 1


def bench_classify_message(benchmark, corpus, trained):
    tokens = corpus.dataset.ham[1].tokens()
    score = benchmark(trained.score, tokens)
    assert 0.0 <= score <= 1.0


def bench_classify_after_attack(benchmark, corpus, trained):
    """Scoring against a poisoned vocabulary (bigger candidate set)."""
    attacked = trained.copy()
    usenet = build_usenet_wordlist(corpus.vocabulary)
    attacked.learn_repeated(frozenset(usenet.words), True, 10)
    tokens = corpus.dataset.ham[2].tokens()
    score = benchmark(attacked.score, tokens)
    assert score > 0.0


def bench_dictionary_batch_learning(benchmark, corpus):
    """learn_repeated over a 9,000-word dictionary — the operation that
    replaces thousands of per-message updates in attack sweeps."""
    usenet = frozenset(build_usenet_wordlist(corpus.vocabulary).words)

    def learn_batch():
        classifier = Classifier()
        classifier.learn_repeated(usenet, True, 100)
        return classifier

    assert benchmark(learn_batch).nspam == 100


def bench_corpus_generation(benchmark):
    corpus = benchmark.pedantic(
        lambda: TrecStyleCorpus.generate(
            n_ham=200, n_spam=200, profile=SMALL_PROFILE, seed=9
        ),
        rounds=3,
        iterations=1,
    )
    assert len(corpus.dataset) == 400
