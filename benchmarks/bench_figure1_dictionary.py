"""E-F1 — Figure 1: dictionary attacks vs percent control.

Paper (Section 4.2): the optimal, Usenet and Aspell attacks on a
10,000-message inbox (50% spam, 10-fold CV).  Headline numbers: every
variant makes the filter unusable at 1% control (101 messages), the
Usenet attack misclassifies ~36%+ of ham outright, and the ordering
optimal > usenet > aspell holds everywhere.
"""

from __future__ import annotations

from repro.experiments.dictionary_exp import (
    DictionaryExperimentConfig,
    run_dictionary_experiment,
)
from repro.experiments.paper_targets import FIGURE1_CLAIMS
from repro.experiments.reporting import render_dictionary_result

def _config(scale: str, seed: int = 1, workers: int = 1) -> DictionaryExperimentConfig:
    factory = (
        DictionaryExperimentConfig.paper_scale
        if scale == "paper"
        else DictionaryExperimentConfig.small_scale
    )
    return factory(seed=seed, workers=workers)


def bench_figure1_dictionary_attacks(benchmark, artifacts, scale, root_seed, workers):
    config = _config(scale, root_seed, workers)
    result = benchmark.pedantic(
        run_dictionary_experiment, args=(config,), rounds=1, iterations=1
    )

    sweeps = result.sweeps
    # Shape assertions: the claims of FIGURE1_CLAIMS.
    for index in range(1, len(config.attack_fractions)):
        optimal = sweeps["optimal"][index].confusion.ham_misclassified_rate
        usenet = sweeps["usenet"][index].confusion.ham_misclassified_rate
        aspell = sweeps["aspell"][index].confusion.ham_misclassified_rate
        assert optimal >= usenet - 0.03, "ordering: optimal >= usenet"
        assert usenet >= aspell - 0.03, "ordering: usenet >= aspell"
    one_percent = next(
        point for point in sweeps["usenet"] if abs(point.attack_fraction - 0.01) < 1e-9
    )
    assert one_percent.confusion.ham_misclassified_rate > 0.30, "unusable at 1%"

    claims = "\n".join(f"  [{c.artifact}] {c.claim} (paper: {c.paper_value})" for c in FIGURE1_CLAIMS)
    artifacts.add(
        "figure1-dictionary",
        f"Figure 1 (scale={scale}: inbox={config.inbox_size}, folds={config.folds})\n\n"
        + render_dictionary_result(result)
        + "\n\npaper claims checked:\n"
        + claims,
    )
