"""E-T1b — Figure 1 under Table 1's alternate configurations.

Table 1 lists *two* training sizes (2,000 and 10,000) and *two* spam
prevalences (0.50 and 0.75) for the dictionary experiment; Figure 1
shows the 10,000/0.50 cell.  This bench runs the remaining cells (at
the harness's scale factor) and checks the attack's conclusions are
insensitive to them — which is why the paper can show one panel.
"""

from __future__ import annotations

from repro.experiments.dictionary_exp import (
    DictionaryExperimentConfig,
    run_dictionary_experiment,
)
from repro.experiments.reporting import format_table


def _configs(scale: str) -> dict[str, DictionaryExperimentConfig]:
    if scale == "paper":
        from repro.corpus.vocabulary import PAPER_PROFILE

        sizes = {"train-2000": 2_000, "train-10000": 10_000}
        base = dict(profile=PAPER_PROFILE, corpus_ham=8_000, corpus_spam=8_000, folds=10)
    else:
        sizes = {"train-200": 200, "train-1000": 1_000}
        base = dict(corpus_ham=700, corpus_spam=900, folds=3)
    fractions = (0.0, 0.01, 0.05, 0.10)
    configs = {}
    for name, inbox in sizes.items():
        configs[f"{name}/prev-0.50"] = DictionaryExperimentConfig(
            inbox_size=inbox, spam_prevalence=0.50, attack_fractions=fractions,
            variants=("usenet",), seed=13, **base
        )
    # The 0.75-prevalence cell at the larger size.
    large = max(sizes.values())
    configs[f"train-{large}/prev-0.75"] = DictionaryExperimentConfig(
        inbox_size=large, spam_prevalence=0.75, attack_fractions=fractions,
        variants=("usenet",), seed=13, **base
    )
    return configs


def bench_figure1_variants(benchmark, artifacts, scale):
    def run_all():
        return {
            name: run_dictionary_experiment(config)
            for name, config in _configs(scale).items()
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, result in results.items():
        points = result.sweeps["usenet"]
        for point in points:
            rows.append(
                [
                    name,
                    f"{point.attack_fraction:.1%}",
                    f"{point.confusion.ham_as_spam_rate:.1%}",
                    f"{point.confusion.ham_misclassified_rate:.1%}",
                ]
            )
        # The paper's conclusion must hold in every Table-1 cell:
        # baseline clean, unusable by 1%.
        assert points[0].confusion.ham_misclassified_rate < 0.05
        assert points[1].confusion.ham_misclassified_rate > 0.30

    table = format_table(
        ["configuration", "attack %", "ham-as-spam", "ham-as-spam|unsure"], rows
    )
    artifacts.add(
        "figure1-variants",
        f"E-T1b Figure 1 across Table 1 cells (scale={scale}, usenet attack)\n\n{table}"
        + "\n\nreading: the 1%-control conclusion holds at both training sizes and"
        + "\nat 75% spam prevalence — the panel the paper shows is representative.",
    )
