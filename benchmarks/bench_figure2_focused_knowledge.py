"""E-F2 — Figure 2: focused attack vs attacker knowledge.

Paper (Section 4.3): 5,000-message inbox, 300 attack emails, 20
targets; guessing 30% of the target's tokens already changes the
classification of 60% of targets, and p=0.9 sends ~90% to spam.
"""

from __future__ import annotations

from repro.experiments.focused_exp import (
    FocusedExperimentConfig,
    run_focused_knowledge_experiment,
)
from repro.experiments.paper_targets import FIGURE2_CLAIMS
from repro.experiments.reporting import render_focused_knowledge_result

_SMALL = FocusedExperimentConfig(
    inbox_size=1_000,
    n_targets=10,
    repetitions=2,
    attack_count=60,  # 6% of inbox = the paper's 300-of-5,000 proportion
    corpus_ham=700,
    corpus_spam=700,
    seed=2,
)


def _config(scale: str) -> FocusedExperimentConfig:
    return FocusedExperimentConfig.paper_scale(seed=2) if scale == "paper" else _SMALL


def bench_figure2_focused_knowledge(benchmark, artifacts, scale):
    config = _config(scale)
    result = benchmark.pedantic(
        run_focused_knowledge_experiment, args=(config,), rounds=1, iterations=1
    )

    success = [result.attack_success_rate(p) for p in config.guess_probabilities]
    for earlier, later in zip(success, success[1:]):
        assert later >= earlier - 0.05, "success monotone in p"
    assert success[-1] > 0.7, "p=0.9 must be highly effective"
    assert result.attack_success_rate(0.3) > 0.3, "p=0.3 changes many targets"

    claims = "\n".join(f"  [{c.artifact}] {c.claim} (paper: {c.paper_value})" for c in FIGURE2_CLAIMS)
    artifacts.add(
        "figure2-focused-knowledge",
        f"Figure 2 (scale={scale}: inbox={config.inbox_size}, "
        f"attack={config.attack_count}, targets={config.n_targets}x{config.repetitions})\n\n"
        + render_focused_knowledge_result(result)
        + "\n\npaper claims checked:\n"
        + claims,
    )
