"""E-F3 — Figure 3: focused attack vs number of attack emails.

Paper (Section 4.3): p = 0.5 fixed; with 100 attack emails on a
5,000-message inbox (~2% control) the target is misclassified 32% of
the time, rising steeply with attack size.
"""

from __future__ import annotations

from repro.experiments.focused_exp import (
    FocusedExperimentConfig,
    run_focused_size_experiment,
)
from repro.experiments.paper_targets import FIGURE3_CLAIMS
from repro.experiments.reporting import render_focused_size_result

_SMALL = FocusedExperimentConfig(
    inbox_size=1_000,
    n_targets=10,
    repetitions=2,
    corpus_ham=700,
    corpus_spam=700,
    size_sweep_fractions=(0.0, 0.005, 0.01, 0.02, 0.04, 0.06, 0.08, 0.10),
    seed=3,
)


def _config(scale: str) -> FocusedExperimentConfig:
    return FocusedExperimentConfig.paper_scale(seed=3) if scale == "paper" else _SMALL


def bench_figure3_focused_count(benchmark, artifacts, scale):
    config = _config(scale)
    result = benchmark.pedantic(
        run_focused_size_experiment, args=(config,), rounds=1, iterations=1
    )

    rates = [point.ham_misclassified_rate for point in result.points]
    assert rates[0] < 0.1, "clean baseline"
    for earlier, later in zip(rates, rates[1:]):
        assert later >= earlier - 0.05, "monotone in attack size"
    assert rates[-1] > 0.5, "large attacks filter most targets"

    claims = "\n".join(f"  [{c.artifact}] {c.claim} (paper: {c.paper_value})" for c in FIGURE3_CLAIMS)
    artifacts.add(
        "figure3-focused-count",
        f"Figure 3 (scale={scale}: inbox={config.inbox_size}, p=0.5, "
        f"targets={config.n_targets}x{config.repetitions})\n\n"
        + render_focused_size_result(result)
        + "\n\npaper claims checked:\n"
        + claims,
    )
