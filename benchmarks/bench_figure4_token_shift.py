"""E-F4 — Figure 4: token score movement under the focused attack.

Paper (Section 4.3): three representative targets — one misclassified
as spam, one as unsure, one still ham — each shown as a before/after
scatter of token scores.  Tokens included in the attack jump toward
1.0; excluded tokens dip slightly.

We run the focused attack over a pool of candidate targets, pick one
representative per outcome, and render the three panels.
"""

from __future__ import annotations

from repro.analysis.token_shift import token_shift_analysis
from repro.attacks.focused import FocusedAttack
from repro.corpus.trec import TrecStyleCorpus
from repro.corpus.vocabulary import PAPER_PROFILE, SMALL_PROFILE
from repro.experiments.crossval import train_grouped
from repro.rng import SeedSpawner
from repro.spambayes.classifier import Classifier


def _run(scale: str):
    if scale == "paper":
        corpus = TrecStyleCorpus.generate(
            n_ham=3_100, n_spam=3_100, profile=PAPER_PROFILE, seed=4
        )
        inbox_size, attack_count, candidates = 5_000, 300, 60
    else:
        corpus = TrecStyleCorpus.generate(
            n_ham=700, n_spam=700, profile=SMALL_PROFILE, seed=4
        )
        inbox_size, attack_count, candidates = 1_000, 60, 40
    spawner = SeedSpawner(4).spawn("figure4")
    inbox = corpus.dataset.sample_inbox(inbox_size, 0.5, spawner.rng("inbox"))
    inbox.tokenize_all()
    classifier = Classifier()
    train_grouped(classifier, inbox)
    inbox_ids = {message.msgid for message in inbox}
    targets = [m for m in corpus.dataset.ham if m.msgid not in inbox_ids][:candidates]
    header_pool = [message.email for message in inbox.spam]
    reports = []
    rng = spawner.rng("attacks")
    for target in targets:
        attack = FocusedAttack(target.email, guess_probability=0.5, header_pool=header_pool)
        batch = attack.generate(attack_count, rng)
        reports.append(token_shift_analysis(classifier, target.email, batch))
    return reports


def bench_figure4_token_shift(benchmark, artifacts, scale):
    reports = benchmark.pedantic(_run, args=(scale,), rounds=1, iterations=1)

    # The core Figure 4 observation must hold on every target.
    for report in reports:
        if report.included_shifts:
            assert report.mean_delta(included=True) > 0.0, "included tokens rise"
        if report.excluded_shifts:
            assert report.mean_delta(included=False) < 0.10, "excluded tokens do not rise much"

    # One representative panel per outcome, like the paper's three.
    panels = []
    for outcome in ("spam", "unsure", "ham"):
        match = next((r for r in reports if r.label_after.value == outcome), None)
        if match is not None:
            panels.append(match.render())
    by_outcome = {
        outcome: sum(1 for r in reports if r.label_after.value == outcome)
        for outcome in ("spam", "unsure", "ham")
    }
    artifacts.add(
        "figure4-token-shift",
        f"Figure 4 (scale={scale}; outcomes over {len(reports)} targets: {by_outcome})\n\n"
        + "\n\n".join(panels)
        + "\n\npaper claim: included tokens (x) jump toward 1.0, excluded (o) dip slightly;"
        + "\nthe outcome (spam/unsure/ham) depends on how much was guessed.",
    )
