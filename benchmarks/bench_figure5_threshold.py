"""E-F5 — Figure 5: the dynamic threshold defense under attack.

Paper (Section 5.2): with re-fitted thresholds, ham is never
classified as spam and only moderately unsure, far below the
undefended filter — but nearly all spam lands in unsure, even at 1%
contamination.
"""

from __future__ import annotations

from repro.experiments.paper_targets import FIGURE5_CLAIMS
from repro.experiments.reporting import render_threshold_result
from repro.experiments.threshold_exp import (
    ThresholdExperimentConfig,
    run_threshold_experiment,
)

def _config(scale: str, workers: int = 1) -> ThresholdExperimentConfig:
    factory = (
        ThresholdExperimentConfig.paper_scale
        if scale == "paper"
        else ThresholdExperimentConfig.small_scale
    )
    return factory(seed=5, workers=workers)


def bench_figure5_threshold_defense(benchmark, artifacts, scale, workers):
    config = _config(scale, workers)
    result = benchmark.pedantic(
        run_threshold_experiment, args=(config,), rounds=1, iterations=1
    )

    undefended = result.series["no-defense"]
    for arm in ("threshold-0.05", "threshold-0.10"):
        defended = result.series[arm]
        for u_point, d_point in zip(undefended, defended):
            assert d_point.ham_as_spam_rate < 0.15, "defended ham-as-spam near zero"
            if u_point.x >= 0.01:
                # At meaningful attack levels the defense dominates.
                # (At 0.1% = one attack message, the refit's calibration
                # cost can exceed the negligible attack damage.)
                assert d_point.ham_misclassified_rate <= u_point.ham_misclassified_rate + 0.02
        attacked = [p for p in defended if p.x >= 0.01]
        assert max(p.spam_as_unsure_rate for p in attacked) > 0.3, (
            "the defense's cost: spam floods unsure"
        )

    claims = "\n".join(f"  [{c.artifact}] {c.claim} (paper: {c.paper_value})" for c in FIGURE5_CLAIMS)
    artifacts.add(
        "figure5-threshold-defense",
        f"Figure 5 (scale={scale}: inbox={config.inbox_size}, folds={config.folds}, "
        f"attack={config.attack_variant})\n\n"
        + render_threshold_result(result)
        + "\n\npaper claims checked:\n"
        + claims,
    )
