"""E-A4 — ablation: good-word evasion cost (Exploratory Integrity).

Quantifies the Section 6 contrast: Exploratory attacks need no
training access, but pay per message in added words.  The oracle
attacker (Lowd & Meek) should evade with far fewer words than the
blind common-word attacker (Wittel & Wu).
"""

from __future__ import annotations

from repro.analysis.plots import ascii_line_chart
from repro.experiments.goodword_exp import (
    GoodWordExperimentConfig,
    run_goodword_experiment,
)
from repro.experiments.reporting import format_table

_SMALL = GoodWordExperimentConfig(
    inbox_size=1_000, n_test_spam=50, corpus_ham=700, corpus_spam=800, seed=14
)

_PAPER = GoodWordExperimentConfig(
    inbox_size=5_000,
    n_test_spam=120,
    corpus_ham=3_000,
    corpus_spam=3_200,
    seed=14,
)


def bench_goodword_evasion_cost(benchmark, artifacts, scale):
    config = _PAPER if scale == "paper" else _SMALL
    if scale == "paper":
        from repro.corpus.vocabulary import PAPER_PROFILE
        config = GoodWordExperimentConfig(
            **{**config.__dict__, "profile": PAPER_PROFILE}
        )
    result = benchmark.pedantic(run_goodword_experiment, args=(config,), rounds=1, iterations=1)

    oracle = dict(result.evasion["oracle (Lowd-Meek)"])
    blind = dict(result.evasion["common-word (blind)"])
    # Oracle access dominates at every budget; both are monotone.
    for budget in config.word_budgets:
        assert oracle[budget] >= blind[budget] - 0.02
    oracle_rates = [oracle[b] for b in config.word_budgets]
    assert oracle_rates == sorted(oracle_rates)
    assert oracle_rates[-1] > 0.8, "a well-informed evader gets most spam through"

    rows = [
        [budget, f"{blind[budget]:.0%}", f"{oracle[budget]:.0%}"]
        for budget in config.word_budgets
    ]
    table = format_table(["word budget", "blind evasion", "oracle evasion"], rows)
    chart = ascii_line_chart(
        {
            "oracle": [(b, oracle[b]) for b in config.word_budgets],
            "blind": [(b, blind[b]) for b in config.word_budgets],
        },
        title="Good-word attacks: evasion rate vs word budget",
        x_label="good words added per spam",
    )
    medians = "  ".join(
        f"{model}: {count if count is not None else '>budget'}"
        for model, count in result.median_words_to_evade.items()
    )
    artifacts.add(
        "goodword-evasion-cost",
        f"E-A4 good-word evasion cost (scale={scale}; "
        f"{config.n_test_spam} held-out spam)\n\n{table}\n\n{chart}"
        f"\n\nmedian words to evade: {medians}"
        + "\n\nreading (Section 6 contrast): Exploratory Integrity attacks trade"
        + "\ntraining access for a per-message word cost; oracle knowledge of the"
        + "\nfilter's scores slashes that cost (Lowd & Meek vs Wittel & Wu).",
    )
