#!/usr/bin/env python3
"""Wall-clock benchmark of the parallel sweep engine vs the seed path.

Runs the Figure 1 sweep (optimal + Usenet + Aspell dictionary attacks,
K-fold cross-validation) three ways and proves they agree bit for bit:

* **baseline** — the original strictly sequential implementation
  (:func:`repro.engine.sweep.sequential_reference_sweep`): one
  classifier retrained from scratch per variant × fold, per-message
  scoring;
* **engine ×1** — :func:`repro.engine.sweep.run_attack_sweeps` with
  ``workers=1``: same results, but fold models are derived from one
  shared full-inbox classifier by snapshot/unlearn/restore and folds
  score through ``Classifier.score_many`` — the algorithmic win,
  measured without any parallelism;
* **engine ×N** — the same engine with ``--workers N``: the fold ×
  variant fan-out across processes, which multiplies the engine win by
  the core count.

Run it directly (it is a script, not a pytest benchmark)::

    PYTHONPATH=src python benchmarks/bench_parallel_sweep.py --workers 4
    PYTHONPATH=src python benchmarks/bench_parallel_sweep.py --scale smoke
    PYTHONPATH=src python benchmarks/bench_parallel_sweep.py --scale paper --workers 8

``--scale small`` (default) keeps the paper's sweep *geometry* — the
Table 1 fraction grid, 10-fold CV, all three attack variants — on the
1/10-scale corpus, finishing in minutes.  ``--scale paper`` is the full
10,000-message Table 1 configuration.  The K=10 geometry is what makes
clean-model reuse pay: the baseline retrains 9/10 of the inbox
V·K times, the engine unlearns 1/10 stripes instead.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.corpus.trec import TrecStyleCorpus
from repro.corpus.vocabulary import PAPER_PROFILE, SMALL_PROFILE, TINY_PROFILE
from repro.engine.sweep import (
    SweepSpec,
    run_attack_sweeps,
    sequential_reference_sweep,
)
from repro.experiments.dictionary_exp import build_attack_variants
from repro.rng import SeedSpawner

PAPER_FRACTIONS = (0.0, 0.001, 0.005, 0.01, 0.02, 0.05, 0.10)


@dataclass(frozen=True)
class Scale:
    profile: object
    corpus_ham: int
    corpus_spam: int
    inbox_size: int
    folds: int
    fractions: tuple[float, ...]
    variants: tuple[str, ...]


SCALES = {
    "smoke": Scale(TINY_PROFILE, 150, 150, 150, 3, (0.0, 0.01, 0.05), ("optimal", "usenet")),
    "small": Scale(SMALL_PROFILE, 700, 700, 1_000, 10, PAPER_FRACTIONS,
                   ("optimal", "usenet", "aspell")),
    "paper": Scale(PAPER_PROFILE, 6_000, 6_000, 10_000, 10, PAPER_FRACTIONS,
                   ("optimal", "usenet", "aspell")),
}


def _signature(points) -> list[tuple[float, int, dict[str, int]]]:
    return [(p.attack_fraction, p.attack_message_count, p.confusion.as_dict()) for p in points]


def _sweep_rngs(seed: int, variants):
    """The per-variant rngs exactly as the Figure 1 driver spawns them."""
    spawner = SeedSpawner(seed).spawn("dictionary-experiment")
    return {variant: spawner.rng(f"sweep:{variant}") for variant in variants}


def run(scale_name: str, workers: int, seed: int, json_out: Path | None) -> int:
    import os

    cpus = os.cpu_count() or 1
    scale = SCALES[scale_name]
    print(f"# parallel sweep benchmark — scale={scale_name}, workers={workers}, seed={seed}")
    print(
        f"# inbox={scale.inbox_size}, folds={scale.folds}, "
        f"variants={len(scale.variants)}, fractions={len(scale.fractions)}, "
        f"cpus={cpus}"
    )
    if workers > cpus:
        print(
            f"# NOTE: {workers} workers on {cpus} CPU(s) — the parallel arm can only\n"
            f"# measure process overhead here; the fold fan-out needs real cores to pay."
        )
    spawner = SeedSpawner(seed).spawn("dictionary-experiment")
    corpus = TrecStyleCorpus.generate(
        n_ham=scale.corpus_ham,
        n_spam=scale.corpus_spam,
        profile=scale.profile,
        seed=spawner.child_seed("corpus"),
    )
    inbox = corpus.dataset.sample_inbox(scale.inbox_size, 0.5, spawner.rng("inbox"))
    inbox.tokenize_all()
    attacks = build_attack_variants(corpus, scale.variants, seed=seed)

    def build_specs():
        rngs = _sweep_rngs(seed, scale.variants)
        return [
            (SweepSpec(key=v, attack=attacks[v], fractions=scale.fractions), rngs[v])
            for v in scale.variants
        ]

    timings: dict[str, float] = {}

    start = time.perf_counter()
    rngs = _sweep_rngs(seed, scale.variants)
    baseline = {
        v: sequential_reference_sweep(
            inbox, attacks[v], scale.fractions, scale.folds, rngs[v]
        )
        for v in scale.variants
    }
    timings["baseline (seed implementation)"] = time.perf_counter() - start

    start = time.perf_counter()
    engine_seq = run_attack_sweeps(inbox, build_specs(), scale.folds, workers=1)
    timings["engine, workers=1"] = time.perf_counter() - start

    if workers == 1:  # a second workers=1 run would only shadow the first
        engine_par = engine_seq
        parallel_key = "engine, workers=1"
    else:
        start = time.perf_counter()
        engine_par = run_attack_sweeps(inbox, build_specs(), scale.folds, workers=workers)
        parallel_key = f"engine, workers={workers}"
        timings[parallel_key] = time.perf_counter() - start

    # Equivalence: all three paths must agree exactly.
    ok = True
    for result_seq, result_par in zip(engine_seq, engine_par):
        base_sig = _signature(baseline[result_seq.key])
        if not (_signature(result_seq.points) == _signature(result_par.points) == base_sig):
            print(f"!! MISMATCH in variant {result_seq.key}")
            ok = False
    print()
    base_time = timings["baseline (seed implementation)"]
    width = max(len(name) for name in timings)
    for name, elapsed in timings.items():
        print(f"{name:<{width}}  {elapsed:8.2f}s  speedup x{base_time / elapsed:5.2f}")
    print()
    print("results identical across all paths:", "yes" if ok else "NO")
    print(
        "# engine-vs-baseline at workers=1 is the pure algorithmic win (shared\n"
        "# clean model + bulk scoring); with >= 2 free cores the fold fan-out\n"
        "# multiplies it by nearly the worker count."
    )
    if json_out is not None:
        json_out.write_text(
            json.dumps(
                {
                    "scale": scale_name,
                    "workers": workers,
                    "seed": seed,
                    "timings_seconds": timings,
                    "speedup_engine_sequential": base_time / timings["engine, workers=1"],
                    "speedup_engine_parallel": base_time / timings[parallel_key],
                    "results_identical": ok,
                },
                indent=2,
            )
            + "\n",
            encoding="utf-8",
        )
        print(f"wrote {json_out}")
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--json", type=Path, default=None, help="write a JSON timing record")
    args = parser.parse_args(argv)
    return run(args.scale, args.workers, args.seed, args.json)


if __name__ == "__main__":
    sys.exit(main())
