#!/usr/bin/env python3
"""Replication-engine benchmark: flattened pool vs naive seed loop.

A multi-seed replication can be scheduled two ways:

* **naive sequential seed loop** — run the scenario once per seed, one
  after the other, each run fanning its own folds out over a private
  process pool.  Every seed pays pool startup, and all workers idle
  while the parent prepares the next seed's corpus and trains its full
  model;
* **flattened (seed × spec × fold) pool** — what
  :func:`repro.engine.replicate.replicate_scenario` does: ONE shared
  :class:`~repro.engine.runner.WorkerPool`, replicas on concurrent
  parent threads, every replica's fold tasks interleaving in the same
  worker set with no per-seed barrier.

This benchmark runs both at the same worker count, asserts the pooled
records are **identical** (same dict, byte for byte once serialized),
and measures the wall-clock difference.  At ``workers >= 2`` the
flattened pool should win — that is the engine's reason to exist — and
the emitted record says by how much.

Run directly (it is a script, not a pytest benchmark)::

    PYTHONPATH=src python benchmarks/bench_replication.py --workers 4
    PYTHONPATH=src python benchmarks/bench_replication.py --scale smoke

Records **append** to ``benchmarks/results/BENCH_replication.json``
(``BENCH_replication.smoke.json`` for the smoke scale): each run adds
one entry, so the file accumulates the replication engine's speedup
trajectory across revisions.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine.replicate import replica_seeds, replicate_scenario
from repro.experiments.results import ReplicatedRecord
from repro.scenarios import get_scenario, run_scenario

_RESULTS_DIR = Path(__file__).resolve().parent / "results"

_SCALES = {
    # (seeds, scenario overrides) per scale.  Many seeds of a moderate
    # run is the replication engine's home turf: the naive loop pays
    # pool startup per seed and idles its workers through every seed's
    # parent-side preparation (corpus + full model), and both costs
    # scale with the seed count.  Small enough for CI either way.
    "smoke": (
        4,
        dict(
            inbox_size=200,
            folds=3,
            corpus_ham=150,
            corpus_spam=150,
            attack_fractions=(0.0, 0.02, 0.05),
        ),
    ),
    "small": (
        16,
        dict(
            inbox_size=240,
            folds=3,
            corpus_ham=180,
            corpus_spam=180,
            attack_fractions=(0.0, 0.01, 0.05),
        ),
    ),
    # Enough replica work that the pooled path's fixed costs (pool
    # startup, shared-memory publish, task pickling) amortize to noise;
    # the shared-corpus transport ships each replica's inbox once.
    "large": (
        24,
        dict(
            inbox_size=320,
            folds=3,
            corpus_ham=240,
            corpus_spam=240,
            attack_fractions=(0.0, 0.01, 0.02, 0.05),
        ),
    ),
}


def _default_json(scale_name: str) -> Path:
    if scale_name == "small":
        return _RESULTS_DIR / "BENCH_replication.json"
    return _RESULTS_DIR / f"BENCH_replication.{scale_name}.json"


def _naive_seed_loop(
    scenario: str, seeds: list[int], overrides: dict, workers: int
) -> ReplicatedRecord:
    """The baseline: one full scenario run per seed, strictly in order.

    Each run uses the stock per-experiment fan-out (its own process
    pool at ``workers``), exactly as N manual ``repro run-scenario``
    invocations would.
    """
    spec = get_scenario(scenario)
    records = []
    for seed in seeds:
        config = spec.build_config(**overrides, seed=seed, workers=workers)
        records.append(run_scenario(spec, config=config).record)
    return ReplicatedRecord.pool(
        records,
        config={
            "scenario": spec.name,
            "n_seeds": len(seeds),
            "base_seed": None,
            "replica_seeds": list(seeds),
            "overrides": {},
        },
    )


def run(
    scale_name: str,
    base_seed: int,
    workers: int,
    scenario: str,
    rounds: int,
    json_out: Path,
) -> int:
    n_seeds, overrides = _SCALES[scale_name]
    seeds = replica_seeds(base_seed, n_seeds)
    print(
        f"# replication benchmark — scale={scale_name}, scenario={scenario}, "
        f"seeds={n_seeds}, workers={workers}, best-of-{rounds}"
    )

    def _best_of(fn):
        best = None
        result = None
        for _ in range(rounds):
            start = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
        return best, result

    naive_seconds, naive = _best_of(
        lambda: _naive_seed_loop(scenario, seeds, overrides, workers)
    )
    flattened_seconds, flattened = _best_of(
        lambda: replicate_scenario(
            scenario,
            seeds=seeds,
            overrides=overrides or None,
            workers=workers,
        )
    )

    # The flattened pool must change scheduling only.  Compare on the
    # stats + replicas (the naive baseline does not reconstruct the
    # derived-seed config block).
    identical = (
        [s.as_dict() for s in naive.stats] == [s.as_dict() for s in flattened.stats]
        and [r.as_dict() for r in naive.replicas]
        == [r.as_dict() for r in flattened.replicas]
    )
    speedup = naive_seconds / flattened_seconds if flattened_seconds else 0.0
    print(
        f"naive seed loop   {naive_seconds:7.2f}s\n"
        f"flattened pool    {flattened_seconds:7.2f}s\n"
        f"speedup           {speedup:7.2f}x   identical: {'yes' if identical else 'NO'}"
    )
    if workers >= 2 and speedup <= 1.0:
        print("NOTE: flattened pool did not win at this scale/machine")

    record = {
        "benchmark": "replication",
        "scale": scale_name,
        "scenario": scenario,
        "n_seeds": n_seeds,
        "workers": workers,
        "base_seed": base_seed,
        "naive_seconds": naive_seconds,
        "flattened_seconds": flattened_seconds,
        "speedup": speedup,
        "identical": identical,
    }
    json_out.parent.mkdir(parents=True, exist_ok=True)
    history: list = []
    if json_out.exists():
        try:
            existing = json.loads(json_out.read_text(encoding="utf-8"))
            history = existing if isinstance(existing, list) else [existing]
        except json.JSONDecodeError:
            history = []
    history.append(record)
    json_out.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
    print(f"appended to {json_out} ({len(history)} record(s))")
    return 0 if identical else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=tuple(_SCALES), default="small")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--scenario", default="dictionary-vs-none")
    parser.add_argument("--rounds", type=int, default=2,
                        help="best-of-N rounds per arm (default 2)")
    parser.add_argument("--json", type=Path, default=None,
                        help="record path (default: benchmarks/results/"
                             "BENCH_replication[.<scale>].json, appended)")
    args = parser.parse_args(argv)
    return run(
        args.scale, args.seed, args.workers, args.scenario, args.rounds,
        args.json or _default_json(args.scale),
    )


if __name__ == "__main__":
    sys.exit(main())
