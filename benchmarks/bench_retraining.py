"""E-A6 — ablation: the weekly retraining loop (Section 2.1 dynamics).

Plays the organization's weekly retrain over two months with a
dictionary attacker arriving mid-way, with and without a RONI gate.
The figure experiments show the end state; this shows the trajectory —
how fast the filter collapses, and that the defense holds week after
week with a weekly-recalibrated gate.
"""

from __future__ import annotations

from repro.analysis.plots import ascii_line_chart
from repro.experiments.reporting import format_table
from repro.experiments.retraining import RetrainingConfig, run_retraining_simulation


def _config(scale: str, defense: str) -> RetrainingConfig:
    if scale == "paper":
        return RetrainingConfig(
            weeks=12,
            ham_per_week=400,
            spam_per_week=400,
            attack_start_week=5,
            attack_per_week=80,
            defense=defense,
            test_size=600,
            seed=16,
        )
    return RetrainingConfig(
        weeks=8,
        ham_per_week=60,
        spam_per_week=60,
        attack_start_week=4,
        attack_per_week=12,
        defense=defense,
        test_size=160,
        seed=16,
    )


def bench_retraining_dynamics(benchmark, artifacts, scale):
    def run_both():
        return (
            run_retraining_simulation(_config(scale, "none")),
            run_retraining_simulation(_config(scale, "roni")),
        )

    undefended, defended = benchmark.pedantic(run_both, rounds=1, iterations=1)

    attack_start = _config(scale, "none").attack_start_week
    # Before the attack both filters are healthy.
    assert undefended.week(attack_start - 1).confusion.ham_misclassified_rate < 0.1
    # After it, the undefended filter collapses and stays collapsed...
    assert undefended.final_ham_misclassification() > 0.8
    # ...while the RONI-gated one rejects the attack mail and stays healthy.
    assert defended.final_ham_misclassification() < 0.1
    for outcome in defended.weeks:
        if outcome.attack_sent:
            assert outcome.attack_rejected == outcome.attack_sent

    rows = [
        [
            u.week,
            u.attack_sent,
            f"{u.confusion.ham_misclassified_rate:.0%}",
            f"{d.confusion.ham_misclassified_rate:.0%}",
            f"{d.attack_rejected}/{d.attack_sent}",
        ]
        for u, d in zip(undefended.weeks, defended.weeks)
    ]
    table = format_table(
        ["week", "attack sent", "ham lost (none)", "ham lost (roni)", "attack rejected"],
        rows,
    )
    chart = ascii_line_chart(
        {
            "no defense": [
                (w.week, w.confusion.ham_misclassified_rate) for w in undefended.weeks
            ],
            "roni gate": [
                (w.week, w.confusion.ham_misclassified_rate) for w in defended.weeks
            ],
        },
        title="Weekly retraining: held-out ham misclassification over time",
        x_label="week (attack starts week "
        f"{attack_start})",
    )
    artifacts.add(
        "retraining-dynamics",
        f"E-A6 weekly retraining dynamics (scale={scale})\n\n{table}\n\n{chart}"
        + "\n\nreading: contamination compounds across retrains — one poisoned"
        + "\nweek is enough to collapse the filter, and it never recovers without"
        + "\na gate, because the attack emails stay in the training history.",
    )
