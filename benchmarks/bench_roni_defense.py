"""E-R1 — Section 5.1: the RONI defense numbers.

Paper: RONI identifies 100% of dictionary attack emails with zero
false positives; every attack email costs >= 6.8 ham-as-ham messages
on the 50-message validation set, every non-attack spam <= 4.4.
"""

from __future__ import annotations

from repro.experiments.paper_targets import RONI_CLAIMS
from repro.experiments.reporting import render_roni_result
from repro.experiments.roni_exp import RoniExperimentConfig, run_roni_experiment

_SMALL = RoniExperimentConfig(
    pool_size=400,
    n_nonattack_spam=60,
    repetitions_per_variant=6,
    corpus_ham=400,
    corpus_spam=400,
    seed=6,
)

_PAPER = RoniExperimentConfig(
    pool_size=1_000,
    n_nonattack_spam=120,
    repetitions_per_variant=15,
    corpus_ham=1_200,
    corpus_spam=1_200,
    seed=6,
)


def bench_roni_defense(benchmark, artifacts, scale):
    config = _PAPER if scale == "paper" else _SMALL
    result = benchmark.pedantic(run_roni_experiment, args=(config,), rounds=1, iterations=1)

    threshold = config.roni.ham_as_ham_threshold
    assert result.separable, "attack/non-attack impact distributions separable"
    assert result.detection_rate(threshold) == 1.0, "100% detection"
    assert result.false_positive_rate(threshold) == 0.0, "0% false positives"

    claims = "\n".join(f"  [{c.artifact}] {c.claim} (paper: {c.paper_value})" for c in RONI_CLAIMS)
    artifacts.add(
        "roni-defense",
        f"Section 5.1 RONI (scale={scale}: pool={config.pool_size}, "
        f"{config.repetitions_per_variant} reps x {len(config.variants)} variants, "
        f"{config.n_nonattack_spam} non-attack spam)\n\n"
        + render_roni_result(result)
        + "\n\npaper claims checked:\n"
        + claims,
    )
