#!/usr/bin/env python3
"""Scenario-executor overhead benchmark.

PR 3 collapsed the five experiment drivers into registered scenario
definitions executed by the generic :func:`repro.scenarios.run_scenario`.
This benchmark proves that indirection is free:

* **equivalence** — for every paper scenario, the executor's output
  record is asserted *identical* (``==`` on the full record dict) to
  calling the retained protocol function directly with the same
  config — i.e. the PR-2 driver bodies, which are exactly what the
  protocol functions are;
* **dispatch overhead** — wall-clock of the executor path vs the
  direct protocol call per scenario, plus a microbenchmark of the pure
  dispatch machinery (registry lookup + config build + outcome
  wrapping around a no-op protocol), reported in microseconds per run.

Run it directly (it is a script, not a pytest benchmark)::

    PYTHONPATH=src python benchmarks/bench_scenario_overhead.py
    PYTHONPATH=src python benchmarks/bench_scenario_overhead.py --scale smoke

Records **append** to ``benchmarks/results/BENCH_scenario.json``
(``BENCH_scenario.smoke.json`` for the smoke scale): each run adds one
entry, so the file accumulates the executor's overhead trajectory
across revisions.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.corpus.vocabulary import TINY_PROFILE, SMALL_PROFILE
from repro.defenses.roni import RoniConfig
from repro.scenarios import PROTOCOLS, ScenarioSpec, get_scenario, run_scenario

_RESULTS_DIR = Path(__file__).resolve().parent / "results"


def _default_json(scale_name: str) -> Path:
    if scale_name == "small":
        return _RESULTS_DIR / "BENCH_scenario.json"
    return _RESULTS_DIR / f"BENCH_scenario.{scale_name}.json"


def _scenario_overrides(scale_name: str) -> dict[str, dict]:
    """Per-scenario config overrides at each scale.

    Covers all five paper scenarios — every PR-2 driver — so the
    equivalence assertion spans the whole registry surface the drivers
    route through.
    """
    if scale_name == "smoke":
        corpus = dict(profile=TINY_PROFILE, corpus_ham=120, corpus_spam=120)
        return {
            "figure1-dictionary": dict(
                inbox_size=120, folds=2, attack_fractions=(0.0, 0.05),
                variants=("optimal", "usenet"), **corpus,
            ),
            "figure2-focused-knowledge": dict(
                inbox_size=100, n_targets=3, repetitions=1, attack_count=10,
                guess_probabilities=(0.3, 0.9), **corpus,
            ),
            "figure3-focused-size": dict(
                inbox_size=100, n_targets=3, repetitions=1, attack_count=10,
                size_sweep_fractions=(0.0, 0.05), **corpus,
            ),
            "roni-defense": dict(
                pool_size=80, n_nonattack_spam=6, repetitions_per_variant=2,
                variants=("optimal", "usenet"),
                roni=RoniConfig(train_size=10, validation_size=20, trials=2),
                **corpus,
            ),
            "figure5-threshold": dict(
                inbox_size=120, folds=2, attack_fractions=(0.0, 0.05),
                quantiles=(0.10,), **corpus,
            ),
        }
    corpus = dict(profile=SMALL_PROFILE, corpus_ham=450, corpus_spam=450)
    return {
        "figure1-dictionary": dict(
            inbox_size=600, folds=3, attack_fractions=(0.0, 0.01, 0.05), **corpus,
        ),
        "figure2-focused-knowledge": dict(
            inbox_size=400, n_targets=6, repetitions=2, attack_count=24, **corpus,
        ),
        "figure3-focused-size": dict(
            inbox_size=400, n_targets=6, repetitions=2, attack_count=24,
            size_sweep_fractions=(0.0, 0.02, 0.06), **corpus,
        ),
        "roni-defense": dict(
            pool_size=200, n_nonattack_spam=20, repetitions_per_variant=3, **corpus,
        ),
        "figure5-threshold": dict(
            inbox_size=400, folds=3, attack_fractions=(0.0, 0.01, 0.05), **corpus,
        ),
    }


def _best_of(fn, rounds: int):
    best = None
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


class _NullResult:
    """Result stand-in for the dispatch microbenchmark."""

    def to_record(self):  # pragma: no cover - trivial
        return None


def _dispatch_microbench(iterations: int = 2_000) -> float:
    """Microseconds per executor dispatch around a no-op protocol.

    Times exactly the machinery ``run_scenario`` adds over a direct
    function call: spec resolution, config materialization from
    defaults, protocol lookup and outcome wrapping.
    """
    from repro.experiments.dictionary_exp import DictionaryExperimentConfig

    PROTOCOLS["bench-noop"] = lambda config: _NullResult()
    try:
        spec = ScenarioSpec(
            name="bench-noop",
            title="dispatch microbenchmark",
            protocol="bench-noop",
            config_type=DictionaryExperimentConfig,
        )
        start = time.perf_counter()
        for _ in range(iterations):
            run_scenario(spec, overrides={"folds": 2})
        elapsed = time.perf_counter() - start
    finally:
        del PROTOCOLS["bench-noop"]
    return elapsed / iterations * 1e6


def run(scale_name: str, seed: int, rounds: int, json_out: Path) -> int:
    print(f"# scenario-executor benchmark — scale={scale_name}, seed={seed}")
    entries = {}
    all_identical = True
    for name, overrides in _scenario_overrides(scale_name).items():
        spec = get_scenario(name)
        config = spec.build_config(seed=seed, **overrides)
        protocol = PROTOCOLS[spec.protocol]

        driver_time, driver_result = _best_of(lambda: protocol(config), rounds)
        executor_time, outcome = _best_of(
            lambda: run_scenario(spec, config=config), rounds
        )
        identical = outcome.record_dict() == driver_result.to_record().as_dict()
        all_identical = all_identical and identical
        overhead_pct = (
            (executor_time - driver_time) / driver_time * 100 if driver_time else 0.0
        )
        entries[name] = {
            "driver_seconds": driver_time,
            "executor_seconds": executor_time,
            "overhead_percent": overhead_pct,
            "identical": identical,
        }
        print(
            f"{name:<26} driver {driver_time:7.3f}s   executor {executor_time:7.3f}s   "
            f"overhead {overhead_pct:+6.2f}%   identical: {'yes' if identical else 'NO'}"
        )

    dispatch_us = _dispatch_microbench()
    print(f"\npure dispatch (registry + config + wrapping): {dispatch_us:.1f} us/run")
    print("executor outputs identical to drivers:", "yes" if all_identical else "NO")

    record = {
        "benchmark": "scenario_overhead",
        "scale": scale_name,
        "seed": seed,
        "scenarios": entries,
        "dispatch_microseconds": dispatch_us,
        "all_identical": all_identical,
    }
    json_out.parent.mkdir(parents=True, exist_ok=True)
    history: list = []
    if json_out.exists():
        try:
            existing = json.loads(json_out.read_text(encoding="utf-8"))
            history = existing if isinstance(existing, list) else [existing]
        except json.JSONDecodeError:
            history = []
    history.append(record)
    json_out.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
    print(f"appended to {json_out} ({len(history)} record(s))")
    return 0 if all_identical else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=("smoke", "small"), default="small")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--rounds", type=int, default=2,
                        help="best-of-N rounds per measurement")
    parser.add_argument("--json", type=Path, default=None,
                        help="record path (default: benchmarks/results/"
                             "BENCH_scenario[.<scale>].json, appended)")
    args = parser.parse_args(argv)
    return run(args.scale, args.seed, args.rounds, args.json or _default_json(args.scale))


if __name__ == "__main__":
    sys.exit(main())
