"""E-A5 — ablation: does ranking survive the attack?

The dynamic threshold defense's premise (Section 5.2) is that
score-shifting attacks ruin absolute scores but largely preserve the
ham/spam *ranking*.  This bench measures exactly that: held-out
ham/spam ROC-AUC of the same classifier before and after dictionary
contamination.  A large AUC drop would falsify the defense's premise;
a small one explains why re-fitted thresholds keep working.
"""

from __future__ import annotations

from repro.analysis.score_distributions import auc, score_histogram
from repro.attacks.dictionary import UsenetDictionaryAttack
from repro.corpus.trec import TrecStyleCorpus
from repro.corpus.vocabulary import PAPER_PROFILE, SMALL_PROFILE
from repro.experiments.crossval import attack_message_count, train_grouped
from repro.experiments.reporting import format_table
from repro.rng import SeedSpawner
from repro.spambayes.classifier import Classifier


def _run(scale: str):
    if scale == "paper":
        corpus = TrecStyleCorpus.generate(
            n_ham=6_000, n_spam=6_000, profile=PAPER_PROFILE, seed=15
        )
        inbox_size = 10_000
    else:
        corpus = TrecStyleCorpus.generate(
            n_ham=700, n_spam=700, profile=SMALL_PROFILE, seed=15
        )
        inbox_size = 1_000
    spawner = SeedSpawner(15).spawn("score-rankings")
    inbox = corpus.dataset.sample_inbox(inbox_size, 0.5, spawner.rng("inbox"))
    inbox.tokenize_all()
    inbox_ids = {m.msgid for m in inbox}
    held_out = [m for m in corpus.dataset if m.msgid not in inbox_ids][:400]
    ham = [m for m in held_out if not m.is_spam]
    spam = [m for m in held_out if m.is_spam]

    classifier = Classifier()
    train_grouped(classifier, inbox)
    attack = UsenetDictionaryAttack.from_vocabulary(corpus.vocabulary)

    rows = []
    details = {}
    for fraction in (0.0, 0.01, 0.05, 0.10):
        count = attack_message_count(inbox_size, fraction)
        working = classifier.copy()
        if count:
            attack.generate(count, spawner.rng(f"a{fraction}")).train_into(working)
        ham_scores = [working.score(m.tokens()) for m in ham]
        spam_scores = [working.score(m.tokens()) for m in spam]
        area = auc(ham_scores, spam_scores)
        mean_ham = sum(ham_scores) / len(ham_scores)
        mean_spam = sum(spam_scores) / len(spam_scores)
        rows.append(
            [f"{fraction:.1%}", f"{mean_ham:.3f}", f"{mean_spam:.3f}", f"{area:.3f}"]
        )
        details[fraction] = (area, score_histogram(ham_scores, 10), score_histogram(spam_scores, 10))
    return rows, details


def bench_score_ranking_survival(benchmark, artifacts, scale):
    rows, details = benchmark.pedantic(_run, args=(scale,), rounds=1, iterations=1)

    clean_auc = details[0.0][0]
    attacked_auc = details[0.10][0]
    # Absolute ham scores explode, yet the ranking largely survives —
    # the dynamic threshold defense's premise.
    assert clean_auc > 0.95
    assert attacked_auc > 0.75
    assert float(rows[-1][1]) > float(rows[0][1]) + 0.3, "ham scores shifted up"

    table = format_table(
        ["attack fraction", "mean ham score", "mean spam score", "ham/spam ROC-AUC"],
        rows,
    )
    histogram_lines = []
    for fraction, (area, ham_hist, spam_hist) in details.items():
        histogram_lines.append(
            f"  f={fraction:.1%}: ham {ham_hist}  spam {spam_hist}"
        )
    artifacts.add(
        "score-ranking-survival",
        f"E-A5 ranking survival under dictionary attack (scale={scale})\n\n{table}\n\n"
        "held-out score histograms (10 bins over [0,1]):\n"
        + "\n".join(histogram_lines)
        + "\n\nreading: mean ham score is destroyed by the attack, but the ROC-AUC"
        + "\ndecays slowly — rankings survive shifts, which is the premise that"
        + "\nmakes the Section 5.2 dynamic threshold defense workable at all.",
    )
