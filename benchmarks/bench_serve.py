#!/usr/bin/env python3
"""The serving layer under load: batched vs unbatched scoring SLOs.

A load generator drives C concurrent clients — each its own socket,
each keeping a small pipeline of score requests in flight, all
multiplexed through one ``selectors`` event loop so the generator
itself stays off the measurement's critical path — against a ``repro
serve`` daemon running as a real subprocess, twice:

* **unbatched** — ``--batch-window 0``: every request is its own bulk
  call of size one, the per-call kernel overhead paid per message;
* **batched** — the default window: concurrent requests coalesce into
  multi-message bulk calls that amortize that overhead.

Both arms record p50/p99 request latency and msgs/sec, and every
served score is asserted **byte-identical** to a library
``Classifier`` trained by the same call sequence — speed numbers for a
daemon that returned different floats would be meaningless.  At the
``small`` scale and above (8+ clients), batched throughput must be at
least 2x unbatched, which is the acceptance floor for the serving
layer's existence.

Run directly (it is a script, not a pytest benchmark)::

    PYTHONPATH=src python benchmarks/bench_serve.py --scale smoke
    PYTHONPATH=src python benchmarks/bench_serve.py --scale small

Records **append** to ``benchmarks/results/BENCH_serve.json``
(``BENCH_serve.<scale>.json`` for non-default scales).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import selectors
import socket
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.corpus.trec import TrecStyleCorpus
from repro.serve import ServeClient, protocol
from repro.spambayes import ndkernel

_RESULTS_DIR = Path(__file__).resolve().parent / "results"
_SRC = str(Path(__file__).resolve().parent.parent / "src")

_SCALES = {
    # clients x requests-per-client, pipeline depth per client, and the
    # size of the wire-trained model the probes score against.
    "smoke": dict(clients=8, requests=40, pipeline=4, train=60, n_ham=120, repeats=2),
    "small": dict(clients=8, requests=200, pipeline=8, train=200, n_ham=300, repeats=3),
    "large": dict(clients=16, requests=400, pipeline=8, train=400, n_ham=600, repeats=3),
}

BATCHED_WINDOW_MS = 2.0
MAX_BATCH = 32  # flush-when-full size; see MicroBatcher's early flush
THROUGHPUT_FLOOR = 2.0  # batched >= 2x unbatched at >= 8 clients


def _default_json(scale_name: str) -> Path:
    if scale_name == "small":
        return _RESULTS_DIR / "BENCH_serve.json"
    return _RESULTS_DIR / f"BENCH_serve.{scale_name}.json"


def _append_record(json_out: Path, record: dict) -> int:
    json_out.parent.mkdir(parents=True, exist_ok=True)
    history: list = []
    if json_out.exists():
        try:
            existing = json.loads(json_out.read_text(encoding="utf-8"))
            history = existing if isinstance(existing, list) else [existing]
        except json.JSONDecodeError:
            history = []
    history.append(record)
    json_out.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
    return len(history)


def _quantile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1 - fraction) + sorted_values[high] * fraction


def _start_daemon(batch_window_ms: float) -> tuple[subprocess.Popen, tuple[str, int]]:
    env = os.environ.copy()
    env["PYTHONPATH"] = _SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    daemon = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--batch-window",
            str(batch_window_ms),
            "--max-batch",
            str(MAX_BATCH),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = daemon.stdout.readline()
    match = re.match(r"serving on (.+):(\d+)", line)
    if not match:
        daemon.kill()
        raise RuntimeError(
            f"daemon failed to announce its port: {line!r} "
            f"(stderr: {daemon.stderr.read()})"
        )
    return daemon, (match.group(1), int(match.group(2)))


class _LoadClient:
    """One connection of the load generator: a closed pipeline of
    ``depth`` in-flight score requests over a non-blocking socket."""

    def __init__(self, selector, address, probes, depth):
        self.selector = selector
        self.probes = probes
        self.depth = depth
        self.sock = socket.create_connection(address, timeout=120.0)
        self.sock.setblocking(False)
        self.outbuf = b""
        self.inbuf = bytearray()
        self.pending: dict[int, tuple[int, float]] = {}
        self.next_index = 0
        self.completed = 0
        self.latencies: list[float] = []
        self.scores: list = [None] * len(probes)
        self.events = selectors.EVENT_READ
        selector.register(self.sock, self.events, self)
        for _ in range(min(depth, len(probes))):
            self._queue_next()

    @property
    def done(self) -> bool:
        return self.completed >= len(self.probes)

    def _queue_next(self) -> None:
        index = self.next_index
        self.next_index += 1
        request_id = index + 1
        self.outbuf += protocol.encode_frame(
            {"id": request_id, "verb": "score", "tokens": self.probes[index]}
        )
        self.pending[request_id] = (index, time.perf_counter())
        self._want_write(True)

    def _want_write(self, wanted: bool) -> None:
        events = selectors.EVENT_READ | (selectors.EVENT_WRITE if wanted else 0)
        if events != self.events:
            self.events = events
            self.selector.modify(self.sock, events, self)

    def on_writable(self) -> None:
        if self.outbuf:
            sent = self.sock.send(self.outbuf)
            self.outbuf = self.outbuf[sent:]
        if not self.outbuf:
            self._want_write(False)

    def on_readable(self) -> None:
        chunk = self.sock.recv(1 << 16)
        if not chunk:
            raise RuntimeError("daemon closed the connection mid-benchmark")
        self.inbuf += chunk
        header = protocol.HEADER.size
        while len(self.inbuf) >= header:
            (length,) = protocol.HEADER.unpack(self.inbuf[:header])
            if len(self.inbuf) < header + length:
                break
            response = json.loads(bytes(self.inbuf[header : header + length]))
            del self.inbuf[: header + length]
            if not response.get("ok"):
                raise RuntimeError(f"score request failed: {response}")
            index, sent_at = self.pending.pop(response["id"])
            self.latencies.append(time.perf_counter() - sent_at)
            self.scores[index] = response["score"]
            self.completed += 1
            if self.next_index < len(self.probes):
                self._queue_next()

    def close(self) -> None:
        self.selector.unregister(self.sock)
        self.sock.close()


def _measure_pass(address, per_client_probes, depth):
    """One measured pass: all C connections through one selector loop.

    On small hosts a process- or thread-per-client generator spends
    more time context-switching than talking, throttling the very
    concurrency the daemon is supposed to be coalescing.
    """
    selector = selectors.DefaultSelector()
    clients = [
        _LoadClient(selector, address, probes, depth)
        for probes in per_client_probes
    ]
    started = time.perf_counter()
    remaining = len(clients)
    while remaining:
        for key, mask in selector.select(timeout=120.0):
            load_client = key.data
            if mask & selectors.EVENT_WRITE:
                load_client.on_writable()
            if mask & selectors.EVENT_READ:
                was_done = load_client.done
                load_client.on_readable()
                if load_client.done and not was_done:
                    remaining -= 1
    elapsed = time.perf_counter() - started
    for load_client in clients:
        load_client.close()
    return (
        elapsed,
        [load_client.latencies for load_client in clients],
        [load_client.scores for load_client in clients],
    )


def _drive_arm(address, train, per_client_probes, depth, repeats) -> dict:
    # Train the daemon's model over the wire, then warm both sides.
    with ServeClient(address, timeout=120.0) as client:
        for tokens, is_spam in train:
            client.train(tokens, is_spam)
        for tokens in per_client_probes[0][:5]:
            client.score(tokens)

    # Best of ``repeats`` passes: throughput here characterizes the
    # serving code, and min-time-of-N is the standard way to keep a
    # noisy scheduler out of that number.  Every pass must return the
    # same floats — the model does not move between passes.
    passes = [
        _measure_pass(address, per_client_probes, depth) for _ in range(repeats)
    ]
    for _, _, scores in passes[1:]:
        if scores != passes[0][2]:
            raise RuntimeError("served scores changed between identical passes")
    elapsed, latencies_per_client, scores_per_client = min(
        passes, key=lambda outcome: outcome[0]
    )

    with ServeClient(address, timeout=120.0) as client:
        batching = client.stats()["batching"]

    latencies = sorted(value for chunk in latencies_per_client for value in chunk)
    total = len(latencies)
    return {
        "requests": total,
        "seconds": elapsed,
        "msgs_per_sec": total / elapsed if elapsed else 0.0,
        "p50_ms": _quantile(latencies, 0.50) * 1000.0,
        "p99_ms": _quantile(latencies, 0.99) * 1000.0,
        "max_batch": batching["max_batch"],
        "mean_batch": batching["mean_batch"],
        "scores": scores_per_client,
    }


def run(scale_name: str, seed: int, json_out: Path) -> int:
    params = _SCALES[scale_name]
    clients, requests = params["clients"], params["requests"]
    depth, n_train = params["pipeline"], params["train"]
    repeats = params["repeats"]
    print(
        f"# serve benchmark — scale={scale_name}, kernel={ndkernel.kernel_name()}, "
        f"clients={clients}, requests/client={requests}, pipeline={depth}, "
        f"seed={seed}"
    )

    corpus = TrecStyleCorpus.generate(n_ham=params["n_ham"], seed=seed)
    messages = corpus.dataset.messages
    train = [(sorted(m.tokens()), m.is_spam) for m in messages[:n_train]]
    probe_pool = [sorted(m.tokens()) for m in messages[n_train:]]
    if not probe_pool:
        raise RuntimeError("corpus too small for the requested training size")
    per_client_probes = [
        [probe_pool[(client * requests + i) % len(probe_pool)] for i in range(requests)]
        for client in range(clients)
    ]

    # The library reference the wire must reproduce byte for byte.
    reference = ndkernel.create_classifier()
    for tokens, is_spam in train:
        reference.learn(tokens, is_spam)
    expected = [reference.score_many(probes) for probes in per_client_probes]

    arms: dict[str, dict] = {}
    identical = True
    for arm_name, window in (("unbatched", 0.0), ("batched", BATCHED_WINDOW_MS)):
        daemon, address = _start_daemon(window)
        try:
            arm = _drive_arm(address, train, per_client_probes, depth, repeats)
            with ServeClient(address, timeout=120.0) as client:
                client.shutdown()
            daemon.wait(timeout=30.0)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()
        arm_identical = arm.pop("scores") == expected
        identical = identical and arm_identical
        arms[arm_name] = arm
        print(
            f"{arm_name:9s} {arm['msgs_per_sec']:8.0f} msgs/s  "
            f"p50 {arm['p50_ms']:6.2f}ms  p99 {arm['p99_ms']:6.2f}ms  "
            f"max batch {arm['max_batch']:3d}  "
            f"identical scores: {'yes' if arm_identical else 'NO'}"
        )

    ratio = (
        arms["batched"]["msgs_per_sec"] / arms["unbatched"]["msgs_per_sec"]
        if arms["unbatched"]["msgs_per_sec"]
        else 0.0
    )
    floor_applies = scale_name != "smoke" and clients >= 8
    floor_met = ratio >= THROUGHPUT_FLOOR
    print(
        f"batched/unbatched throughput: {ratio:.2f}x "
        f"(floor {THROUGHPUT_FLOOR:.0f}x "
        f"{'enforced' if floor_applies else 'advisory at this scale'})"
    )

    record = {
        "benchmark": "serve",
        "scale": scale_name,
        "seed": seed,
        "kernel": ndkernel.kernel_name(),
        "clients": clients,
        "requests_per_client": requests,
        "pipeline_depth": depth,
        "repeats": repeats,
        "trained_messages": len(train),
        "batch_window_ms": BATCHED_WINDOW_MS,
        "unbatched": arms["unbatched"],
        "batched": arms["batched"],
        "batched_over_unbatched_throughput": ratio,
        "identical_scores": identical,
    }
    count = _append_record(json_out, record)
    print(f"appended to {json_out} ({count} record(s))")
    if not identical:
        return 1
    if floor_applies and not floor_met:
        print(
            f"error: batched throughput {ratio:.2f}x is below the "
            f"{THROUGHPUT_FLOOR:.0f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=tuple(_SCALES), default="small")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--json", type=Path, default=None,
                        help="record path (default: benchmarks/results/"
                             "BENCH_serve[.<scale>].json, appended)")
    args = parser.parse_args(argv)
    return run(args.scale, args.seed, args.json or _default_json(args.scale))


if __name__ == "__main__":
    sys.exit(main())
