#!/usr/bin/env python3
"""Storage backends head-to-head: memory vs the mmap+SQLite store.

Three measurements, every one a *differential* (the backends must
agree on the science before their speed difference means anything):

* **ingest** — :meth:`TrecStyleCorpus.generate` wall time under
  ``REPRO_STORE=memory`` (messages held as Python objects) and
  ``REPRO_STORE=disk`` (each message tokenized, encoded and streamed
  into the backend's SQLite message store as it is generated),
  reported as messages/sec;
* **cold-open** — the latency of opening the disk corpus's existing
  token table from its file (fresh :class:`DiskTokenTable`, no warm
  caches) through ``len``, ``text_order_ranks`` and a probe decode —
  the "resume a run against yesterday's store" cost that has no
  memory-backend equivalent;
* **fold scoring** — train an 80% fold and score the held-out 20%
  through each backend's native classifier (memory arrays vs mmap
  count columns + stored token-ID rows), with the held-out score
  vectors asserted **identical** — the storage layer's determinism
  contract, priced.

Run directly (it is a script, not a pytest benchmark)::

    PYTHONPATH=src python benchmarks/bench_storage.py --scale smoke
    PYTHONPATH=src python benchmarks/bench_storage.py --scale large

Records **append** to ``benchmarks/results/BENCH_storage.json``
(``BENCH_storage.<scale>.json`` for non-default scales): each run adds
one entry, so the file accumulates the storage layer's cost trajectory
across revisions.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.corpus.trec import TrecStyleCorpus
from repro.spambayes.ndkernel import backend_columns, create_classifier
from repro.storage import STORE_ENV
from repro.storage.disk import DiskTokenTable

_RESULTS_DIR = Path(__file__).resolve().parent / "results"

_SCALES = {
    # n_ham per corpus (n_spam follows TREC prevalence, so total is
    # roughly 2.3x) and the training fraction for the fold arm.
    "smoke": dict(n_ham=120, train_fraction=0.8),
    "small": dict(n_ham=500, train_fraction=0.8),
    "large": dict(n_ham=2_000, train_fraction=0.8),
}


def _default_json(scale_name: str) -> Path:
    if scale_name == "small":
        return _RESULTS_DIR / "BENCH_storage.json"
    return _RESULTS_DIR / f"BENCH_storage.{scale_name}.json"


def _append_record(json_out: Path, record: dict) -> int:
    json_out.parent.mkdir(parents=True, exist_ok=True)
    history: list = []
    if json_out.exists():
        try:
            existing = json.loads(json_out.read_text(encoding="utf-8"))
            history = existing if isinstance(existing, list) else [existing]
        except json.JSONDecodeError:
            history = []
    history.append(record)
    json_out.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
    return len(history)


def _under_store(name: str, fn):
    """Run ``fn`` with ``REPRO_STORE`` pinned to ``name``.

    ``active_backend`` caches per (pid, name), so flipping the variable
    back and forth reuses one backend instance per arm — exactly what
    a real run under that setting would see.
    """
    previous = os.environ.get(STORE_ENV)
    os.environ[STORE_ENV] = name
    try:
        return fn()
    finally:
        if previous is None:
            del os.environ[STORE_ENV]
        else:
            os.environ[STORE_ENV] = previous


def _fold_scores(corpus: TrecStyleCorpus, train_fraction: float):
    """Train the leading fold, score the rest; returns (scores, secs).

    Mirrors the stream runner's construction: a corpus with an ingest
    table gets a root classifier sharing that table plus
    backend-provided count columns, so stored token-ID rows index
    straight into the columns; an in-RAM corpus gets the default
    (memory) classifier and encodes on the fly.
    """
    messages = corpus.dataset.messages
    split = int(len(messages) * train_fraction)
    start = time.perf_counter()
    if corpus.table is None:
        classifier = create_classifier()
    else:
        classifier = create_classifier(
            table=corpus.table, columns=backend_columns()
        )
    table = classifier.table
    for message in messages[:split]:
        classifier.learn_ids(message.token_ids(table), message.is_spam)
    scores = classifier.score_many_ids(
        [message.token_ids(table) for message in messages[split:]]
    )
    return scores, time.perf_counter() - start


def run(scale_name: str, seed: int, json_out: Path) -> int:
    params = _SCALES[scale_name]
    n_ham, train_fraction = params["n_ham"], params["train_fraction"]
    print(f"# storage benchmark — scale={scale_name}, n_ham={n_ham}, seed={seed}")

    arms: dict[str, dict] = {}
    for store in ("memory", "disk"):
        start = time.perf_counter()
        corpus = _under_store(
            store, lambda: TrecStyleCorpus.generate(n_ham=n_ham, seed=seed)
        )
        ingest_seconds = time.perf_counter() - start
        messages = len(corpus.dataset)
        scores, score_seconds = _under_store(
            store, lambda: _fold_scores(corpus, train_fraction)
        )
        arms[store] = {
            "messages": messages,
            "ingest_seconds": ingest_seconds,
            "ingest_msgs_per_sec": messages / ingest_seconds if ingest_seconds else 0.0,
            "score_seconds": score_seconds,
            "scores": scores,
            "corpus": corpus,
        }
        print(
            f"{store:6s} ingest {ingest_seconds:6.2f}s "
            f"({arms[store]['ingest_msgs_per_sec']:8.0f} msgs/s)  "
            f"fold-score {score_seconds:6.2f}s"
        )

    identical = arms["memory"]["scores"] == arms["disk"]["scores"]

    # Cold-open: a fresh table object over the disk corpus's existing
    # SQLite file — no shared caches with the ingest-time table — must
    # come up knowing its size, its seed-stable text ranks, and its
    # rows.  This is the resume-against-an-existing-store path.
    db_path = arms["disk"]["corpus"].table.db_path
    start = time.perf_counter()
    reopened = DiskTokenTable(db_path)
    n_tokens = len(reopened)
    ranks = reopened.text_order_ranks()
    probe = reopened.token(0)
    cold_open_seconds = time.perf_counter() - start
    reopened.close()
    assert len(ranks) == n_tokens and isinstance(probe, str)

    score_ratio = (
        arms["disk"]["score_seconds"] / arms["memory"]["score_seconds"]
        if arms["memory"]["score_seconds"]
        else 0.0
    )
    print(
        f"cold-open    {cold_open_seconds * 1000:7.1f}ms  ({n_tokens} tokens)\n"
        f"disk/memory  {score_ratio:7.2f}x fold-scoring   "
        f"identical scores: {'yes' if identical else 'NO'}"
    )

    record = {
        "benchmark": "storage",
        "scale": scale_name,
        "seed": seed,
        "messages": arms["memory"]["messages"],
        "tokens": n_tokens,
        "memory_ingest_seconds": arms["memory"]["ingest_seconds"],
        "disk_ingest_seconds": arms["disk"]["ingest_seconds"],
        "memory_ingest_msgs_per_sec": arms["memory"]["ingest_msgs_per_sec"],
        "disk_ingest_msgs_per_sec": arms["disk"]["ingest_msgs_per_sec"],
        "cold_open_seconds": cold_open_seconds,
        "memory_score_seconds": arms["memory"]["score_seconds"],
        "disk_score_seconds": arms["disk"]["score_seconds"],
        "disk_over_memory_score_ratio": score_ratio,
        "identical_scores": identical,
    }
    count = _append_record(json_out, record)
    print(f"appended to {json_out} ({count} record(s))")
    return 0 if identical else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=tuple(_SCALES), default="small")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--json", type=Path, default=None,
                        help="record path (default: benchmarks/results/"
                             "BENCH_storage[.<scale>].json, appended)")
    args = parser.parse_args(argv)
    return run(args.scale, args.seed, args.json or _default_json(args.scale))


if __name__ == "__main__":
    sys.exit(main())
