#!/usr/bin/env python3
"""Stream-engine throughput: messages/sec, sequential vs pooled.

A stream is inherently sequential — tick ``t+1`` trains on the state
tick ``t`` left behind — so the streaming engine's parallelism lever
is *across* streams: under ``replicate_scenario`` each replica's
whole stream becomes one task in the shared
:class:`~repro.engine.runner.WorkerPool` (single-task maps route into
an active pool since the stream engine landed), so N seeds play N
streams concurrently instead of queueing behind one parent thread.

This benchmark replays the same multi-seed stream replication two
ways — ``workers=1`` (strictly sequential) and ``workers>=2`` (the
shared pool) — asserts the pooled records **identical**, and reports
throughput as messages/sec, where the message count is everything the
engine ingests or scores: every arrival the per-tick gate saw (ham,
spam and attack mail, trained or rejected) plus every held-out
evaluation (clean-counterfactual re-evaluations included).

Run directly (it is a script, not a pytest benchmark)::

    PYTHONPATH=src python benchmarks/bench_stream_throughput.py --workers 4
    PYTHONPATH=src python benchmarks/bench_stream_throughput.py --scale smoke

Records **append** to ``benchmarks/results/BENCH_stream.json``
(``BENCH_stream.smoke.json`` for the smoke scale): each run adds one
entry, so the file accumulates the stream engine's throughput
trajectory across revisions.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine.replicate import replicate_scenario
from repro.scenarios import get_scenario

_RESULTS_DIR = Path(__file__).resolve().parent / "results"

_SCALES = {
    # (seeds, scenario overrides).  The ramp scenario keeps the
    # per-tick defense trivial, so the measured work is the engine
    # itself: arrival generation, incremental training, the bulk
    # scoring kernel and the snapshot/restore counterfactual.
    "smoke": (
        4,
        dict(ticks=4, ham_per_tick=30, spam_per_tick=30, test_size=80),
    ),
    "small": (
        8,
        dict(ticks=6, ham_per_tick=40, spam_per_tick=40, test_size=120),
    ),
    # Long streams with big per-tick evaluations: the bulk scoring
    # kernel does most of the work, and each whole-stream replica is a
    # single engine task riding the tiny-map direct path.
    "large": (
        12,
        dict(ticks=10, ham_per_tick=60, spam_per_tick=60, test_size=200),
    ),
}


def _default_json(scale_name: str) -> Path:
    if scale_name == "small":
        return _RESULTS_DIR / "BENCH_stream.json"
    return _RESULTS_DIR / f"BENCH_stream.{scale_name}.json"


def _stream_messages(scenario: str, overrides: dict) -> int:
    """Messages one replica ingests + scores, from the spec alone.

    Mirrors :meth:`StreamResult.messages_processed` for undefended
    streams (the benchmark's scenarios): the clean-counterfactual
    re-score only happens from the first tick with attack mail
    trained — earlier ticks copy the actual confusion.
    """
    spec = get_scenario(scenario).build_config(**overrides)
    test_messages = 2 * (spec.test_size // 2)
    evaluations = 0
    attack_so_far = 0
    for count in spec.tick_attack_counts():
        evaluations += 1
        attack_so_far += count
        if spec.measure_clean and attack_so_far > 0:
            evaluations += 1
    return spec.total_arrivals() + evaluations * test_messages


def run(
    scale_name: str,
    base_seed: int,
    workers: int,
    scenario: str,
    rounds: int,
    json_out: Path,
) -> int:
    n_seeds, overrides = _SCALES[scale_name]
    messages = _stream_messages(scenario, overrides) * n_seeds
    print(
        f"# stream throughput benchmark — scale={scale_name}, "
        f"scenario={scenario}, seeds={n_seeds}, workers={workers}, "
        f"messages={messages}, best-of-{rounds}"
    )

    def _best_of(fn):
        best = None
        result = None
        for _ in range(rounds):
            start = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
        return best, result

    def _replicate(replicate_workers: int):
        return replicate_scenario(
            scenario,
            seeds=n_seeds,
            base_seed=base_seed,
            overrides=overrides,
            workers=replicate_workers,
        )

    sequential_seconds, sequential = _best_of(lambda: _replicate(1))
    pooled_seconds, pooled = _best_of(lambda: _replicate(workers))

    identical = json.dumps(sequential.as_dict()) == json.dumps(pooled.as_dict())
    sequential_rate = messages / sequential_seconds if sequential_seconds else 0.0
    pooled_rate = messages / pooled_seconds if pooled_seconds else 0.0
    speedup = sequential_seconds / pooled_seconds if pooled_seconds else 0.0
    print(
        f"sequential   {sequential_seconds:7.2f}s  {sequential_rate:10.0f} msgs/s\n"
        f"pooled       {pooled_seconds:7.2f}s  {pooled_rate:10.0f} msgs/s\n"
        f"speedup      {speedup:7.2f}x   identical: {'yes' if identical else 'NO'}"
    )
    if workers >= 2 and speedup <= 1.0:
        print("NOTE: pooled streams did not win at this scale/machine")

    record = {
        "benchmark": "stream-throughput",
        "scale": scale_name,
        "scenario": scenario,
        "n_seeds": n_seeds,
        "workers": workers,
        "base_seed": base_seed,
        "messages": messages,
        "sequential_seconds": sequential_seconds,
        "pooled_seconds": pooled_seconds,
        "sequential_msgs_per_sec": sequential_rate,
        "pooled_msgs_per_sec": pooled_rate,
        "speedup": speedup,
        "identical": identical,
    }
    json_out.parent.mkdir(parents=True, exist_ok=True)
    history: list = []
    if json_out.exists():
        try:
            existing = json.loads(json_out.read_text(encoding="utf-8"))
            history = existing if isinstance(existing, list) else [existing]
        except json.JSONDecodeError:
            history = []
    history.append(record)
    json_out.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
    print(f"appended to {json_out} ({len(history)} record(s))")
    return 0 if identical else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=tuple(_SCALES), default="small")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--scenario", default="stream-dictionary-ramp")
    parser.add_argument("--rounds", type=int, default=2,
                        help="best-of-N rounds per arm (default 2)")
    parser.add_argument("--json", type=Path, default=None,
                        help="record path (default: benchmarks/results/"
                             "BENCH_stream[.<scale>].json, appended)")
    args = parser.parse_args(argv)
    return run(
        args.scale, args.seed, args.workers, args.scenario, args.rounds,
        args.json or _default_json(args.scale),
    )


if __name__ == "__main__":
    sys.exit(main())
