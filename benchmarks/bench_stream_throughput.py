#!/usr/bin/env python3
"""Stream-engine throughput: messages/sec, sequential vs pooled.

A stream is inherently sequential — tick ``t+1`` trains on the state
tick ``t`` left behind — so the streaming engine's parallelism lever
is *across* streams: under ``replicate_scenario`` each replica's
whole stream becomes one task in the shared
:class:`~repro.engine.runner.WorkerPool` (single-task maps route into
an active pool since the stream engine landed), so N seeds play N
streams concurrently instead of queueing behind one parent thread.

This benchmark replays the same multi-seed stream replication two
ways — ``workers=1`` (strictly sequential) and ``workers>=2`` (the
shared pool) — asserts the pooled records **identical**, and reports
throughput as messages/sec, where the message count is everything the
engine ingests or scores: every arrival the per-tick gate saw (ham,
spam and attack mail, trained or rejected) plus every held-out
evaluation (clean-counterfactual re-evaluations included).

A second, ``--ticks``-scaled **long-horizon mode** measures the clean
counterfactual itself: one stream, played twice — the default
clean-twin counterfactual against the retained snapshot/unlearn-all/
restore reference — with per-tick phase profiling on.  It asserts the
two records identical, that each arm's profiled phases sum to within
tolerance of its wall time, and reports the per-tick counterfactual
cost series (flat under the twin, growing with the attack history
under unlearn), the twin's flatness ratio, and the twin-vs-unlearn
speedup.  Phase timings land in
``benchmarks/results/BENCH_stream_phases[.<scale>].json``.

Run directly (it is a script, not a pytest benchmark)::

    PYTHONPATH=src python benchmarks/bench_stream_throughput.py --workers 4
    PYTHONPATH=src python benchmarks/bench_stream_throughput.py --scale smoke
    PYTHONPATH=src python benchmarks/bench_stream_throughput.py --scale large --ticks 40

Records **append** to ``benchmarks/results/BENCH_stream.json``
(``BENCH_stream.smoke.json`` for the smoke scale): each run adds one
entry, so the file accumulates the stream engine's throughput
trajectory across revisions.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine.replicate import replicate_scenario
from repro.scenarios import get_scenario
from repro.stream.runner import StreamRunner
from repro.stream.spec import StreamSpec

_RESULTS_DIR = Path(__file__).resolve().parent / "results"

_SCALES = {
    # (seeds, scenario overrides).  The ramp scenario keeps the
    # per-tick defense trivial, so the measured work is the engine
    # itself: arrival generation, incremental training, the bulk
    # scoring kernel and the snapshot/restore counterfactual.
    "smoke": (
        4,
        dict(ticks=4, ham_per_tick=30, spam_per_tick=30, test_size=80),
    ),
    "small": (
        8,
        dict(ticks=6, ham_per_tick=40, spam_per_tick=40, test_size=120),
    ),
    # Long streams with big per-tick evaluations: the bulk scoring
    # kernel does most of the work, and each whole-stream replica is a
    # single engine task riding the tiny-map direct path.
    "large": (
        12,
        dict(ticks=10, ham_per_tick=60, spam_per_tick=60, test_size=200),
    ),
}


_CF_SCALES = {
    # Long-horizon counterfactual arms: per-tick sizes and the default
    # tick count when --ticks is given without a value.  The focused
    # variant draws a distinct token set per attack message, so the
    # unlearn reference's per-tick cost genuinely grows with the
    # trained attack history — the shape the twin is flat against.
    "smoke": dict(ticks=8, ham_per_tick=10, spam_per_tick=10,
                  attack_per_tick=24, test_size=60),
    "small": dict(ticks=20, ham_per_tick=12, spam_per_tick=12,
                  attack_per_tick=40, test_size=100),
    "large": dict(ticks=100, ham_per_tick=10, spam_per_tick=10,
                  attack_per_tick=80, test_size=120),
}

# Profiled phases must explain at least this share of each arm's wall
# time, or the phase accounting is lying and the run fails.
_ACCOUNTED_FLOOR = 0.7


def _default_json(scale_name: str) -> Path:
    if scale_name == "small":
        return _RESULTS_DIR / "BENCH_stream.json"
    return _RESULTS_DIR / f"BENCH_stream.{scale_name}.json"


def _phases_json(scale_name: str) -> Path:
    if scale_name == "small":
        return _RESULTS_DIR / "BENCH_stream_phases.json"
    return _RESULTS_DIR / f"BENCH_stream_phases.{scale_name}.json"


def _append_record(json_out: Path, record: dict) -> int:
    json_out.parent.mkdir(parents=True, exist_ok=True)
    history: list = []
    if json_out.exists():
        try:
            existing = json.loads(json_out.read_text(encoding="utf-8"))
            history = existing if isinstance(existing, list) else [existing]
        except json.JSONDecodeError:
            history = []
    history.append(record)
    json_out.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
    return len(history)


def _stream_messages(scenario: str, overrides: dict) -> int:
    """Messages one replica ingests + scores, from the spec alone.

    Mirrors :meth:`StreamResult.messages_processed` for undefended
    streams (the benchmark's scenarios): the clean-counterfactual
    re-score only happens from the first tick with attack mail
    trained — earlier ticks copy the actual confusion.
    """
    spec = get_scenario(scenario).build_config(**overrides)
    test_messages = 2 * (spec.test_size // 2)
    evaluations = 0
    attack_so_far = 0
    for count in spec.tick_attack_counts():
        evaluations += 1
        attack_so_far += count
        if spec.measure_clean and attack_so_far > 0:
            evaluations += 1
    return spec.total_arrivals() + evaluations * test_messages


def run(
    scale_name: str,
    base_seed: int,
    workers: int,
    scenario: str,
    rounds: int,
    json_out: Path,
) -> int:
    n_seeds, overrides = _SCALES[scale_name]
    messages = _stream_messages(scenario, overrides) * n_seeds
    print(
        f"# stream throughput benchmark — scale={scale_name}, "
        f"scenario={scenario}, seeds={n_seeds}, workers={workers}, "
        f"messages={messages}, best-of-{rounds}"
    )

    def _best_of(fn):
        best = None
        result = None
        for _ in range(rounds):
            start = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
        return best, result

    def _replicate(replicate_workers: int):
        return replicate_scenario(
            scenario,
            seeds=n_seeds,
            base_seed=base_seed,
            overrides=overrides,
            workers=replicate_workers,
        )

    sequential_seconds, sequential = _best_of(lambda: _replicate(1))
    pooled_seconds, pooled = _best_of(lambda: _replicate(workers))

    identical = json.dumps(sequential.as_dict()) == json.dumps(pooled.as_dict())
    sequential_rate = messages / sequential_seconds if sequential_seconds else 0.0
    pooled_rate = messages / pooled_seconds if pooled_seconds else 0.0
    speedup = sequential_seconds / pooled_seconds if pooled_seconds else 0.0
    print(
        f"sequential   {sequential_seconds:7.2f}s  {sequential_rate:10.0f} msgs/s\n"
        f"pooled       {pooled_seconds:7.2f}s  {pooled_rate:10.0f} msgs/s\n"
        f"speedup      {speedup:7.2f}x   identical: {'yes' if identical else 'NO'}"
    )
    if workers >= 2 and speedup <= 1.0:
        print("NOTE: pooled streams did not win at this scale/machine")

    record = {
        "benchmark": "stream-throughput",
        "scale": scale_name,
        "scenario": scenario,
        "n_seeds": n_seeds,
        "workers": workers,
        "base_seed": base_seed,
        "messages": messages,
        "sequential_seconds": sequential_seconds,
        "pooled_seconds": pooled_seconds,
        "sequential_msgs_per_sec": sequential_rate,
        "pooled_msgs_per_sec": pooled_rate,
        "speedup": speedup,
        "identical": identical,
    }
    count = _append_record(json_out, record)
    print(f"appended to {json_out} ({count} record(s))")
    return 0 if identical else 1


def run_counterfactual(
    scale_name: str,
    ticks: int,
    base_seed: int,
    json_out: Path,
    phases_out: Path,
) -> int:
    """The long-horizon arm race: clean twin vs the unlearn reference."""
    params = dict(_CF_SCALES[scale_name])
    params["ticks"] = ticks or params["ticks"]
    spec = StreamSpec(
        ticks=params["ticks"],
        ham_per_tick=params["ham_per_tick"],
        spam_per_tick=params["spam_per_tick"],
        attack_start_tick=2,
        attack_per_tick=params["attack_per_tick"],
        attack_variant="focused",
        test_size=params["test_size"],
        measure_clean=True,
        profile_phases=True,
        seed=base_seed,
    )
    print(
        f"# stream counterfactual benchmark — scale={scale_name}, "
        f"ticks={spec.ticks}, attack/tick={spec.attack_per_tick} "
        f"({spec.attack_variant}), test={spec.test_size}"
    )

    arms: dict[str, dict] = {}
    for mode in ("twin", "unlearn"):
        start = time.perf_counter()
        result = StreamRunner(spec, counterfactual=mode).run()
        wall = time.perf_counter() - start
        profile = result.phase_profile
        arms[mode] = {
            "record": json.dumps(result.to_record().as_dict(), sort_keys=True),
            "wall_seconds": wall,
            "profile": profile,
            "cf_series": profile.phase_series("counterfactual"),
            "accounted": profile.accounted_fraction(),
        }

    identical = arms["twin"]["record"] == arms["unlearn"]["record"]
    accounted_ok = all(arm["accounted"] >= _ACCOUNTED_FLOOR for arm in arms.values())

    # Per-tick counterfactual cost, measured only where a real
    # counterfactual evaluation happens (from the attack's first tick;
    # earlier ticks copy the actual confusion for free).
    active = slice(spec.attack_start_tick - 1, None)
    twin_series = arms["twin"]["cf_series"][active]
    unlearn_series = arms["unlearn"]["cf_series"][active]
    quarter = max(1, len(twin_series) // 4)

    def _mean(values):
        return sum(values) / len(values) if values else 0.0

    # Flatness: last-quarter mean over first-quarter mean.  ~1.0 for
    # the twin (per-tick cost independent of history), and growing
    # with the horizon for the unlearn reference.
    twin_flatness = (
        _mean(twin_series[-quarter:]) / _mean(twin_series[:quarter])
        if _mean(twin_series[:quarter]) > 0.0
        else 0.0
    )
    unlearn_flatness = (
        _mean(unlearn_series[-quarter:]) / _mean(unlearn_series[:quarter])
        if _mean(unlearn_series[:quarter]) > 0.0
        else 0.0
    )
    cf_speedup = (
        sum(unlearn_series) / sum(twin_series) if sum(twin_series) > 0.0 else 0.0
    )
    total_speedup = (
        arms["unlearn"]["wall_seconds"] / arms["twin"]["wall_seconds"]
        if arms["twin"]["wall_seconds"] > 0.0
        else 0.0
    )

    print(
        f"twin         {arms['twin']['wall_seconds']:7.2f}s  "
        f"counterfactual {sum(twin_series):6.2f}s  "
        f"flatness {twin_flatness:5.2f}  "
        f"accounted {arms['twin']['accounted'] * 100:5.1f}%\n"
        f"unlearn      {arms['unlearn']['wall_seconds']:7.2f}s  "
        f"counterfactual {sum(unlearn_series):6.2f}s  "
        f"flatness {unlearn_flatness:5.2f}  "
        f"accounted {arms['unlearn']['accounted'] * 100:5.1f}%\n"
        f"speedup      {total_speedup:7.2f}x total, {cf_speedup:.2f}x "
        f"counterfactual   identical: {'yes' if identical else 'NO'}"
    )
    if not accounted_ok:
        print(
            f"ERROR: profiled phases explain < {_ACCOUNTED_FLOOR:.0%} of wall time"
        )

    record = {
        "benchmark": "stream-counterfactual",
        "scale": scale_name,
        "ticks": spec.ticks,
        "attack_variant": spec.attack_variant,
        "attack_per_tick": spec.attack_per_tick,
        "test_size": spec.test_size,
        "base_seed": base_seed,
        "twin_seconds": arms["twin"]["wall_seconds"],
        "unlearn_seconds": arms["unlearn"]["wall_seconds"],
        "twin_counterfactual_per_tick": twin_series,
        "unlearn_counterfactual_per_tick": unlearn_series,
        "twin_flatness": twin_flatness,
        "unlearn_flatness": unlearn_flatness,
        "counterfactual_speedup": cf_speedup,
        "total_speedup": total_speedup,
        "identical": identical,
        "accounted_ok": accounted_ok,
    }
    count = _append_record(json_out, record)
    print(f"appended to {json_out} ({count} record(s))")
    phases_record = {
        "benchmark": "stream-phases",
        "scale": scale_name,
        "ticks": spec.ticks,
        "base_seed": base_seed,
        "accounted_floor": _ACCOUNTED_FLOOR,
        "twin": arms["twin"]["profile"].as_dict(),
        "unlearn": arms["unlearn"]["profile"].as_dict(),
    }
    count = _append_record(phases_out, phases_record)
    print(f"appended to {phases_out} ({count} record(s))")
    return 0 if identical and accounted_ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=tuple(_SCALES), default="small")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--scenario", default="stream-dictionary-ramp")
    parser.add_argument("--rounds", type=int, default=2,
                        help="best-of-N rounds per arm (default 2)")
    parser.add_argument("--json", type=Path, default=None,
                        help="record path (default: benchmarks/results/"
                             "BENCH_stream[.<scale>].json, appended)")
    parser.add_argument("--ticks", type=int, nargs="?", const=0, default=None,
                        metavar="N",
                        help="long-horizon counterfactual mode: play one "
                             "N-tick stream twice (clean twin vs the "
                             "snapshot/unlearn reference), assert the "
                             "records identical, and record per-tick "
                             "counterfactual cost (bare --ticks uses the "
                             "scale's default horizon)")
    parser.add_argument("--phases-json", type=Path, default=None,
                        help="phase-timing record path for --ticks mode "
                             "(default: benchmarks/results/"
                             "BENCH_stream_phases[.<scale>].json, appended)")
    args = parser.parse_args(argv)
    if args.ticks is not None:
        return run_counterfactual(
            args.scale, args.ticks, args.seed,
            args.json or _default_json(args.scale),
            args.phases_json or _phases_json(args.scale),
        )
    return run(
        args.scale, args.seed, args.workers, args.scenario, args.rounds,
        args.json or _default_json(args.scale),
    )


if __name__ == "__main__":
    sys.exit(main())
