"""E-T1 — Table 1: experimental parameters.

Regenerates the paper's parameter table from the structured constants
and asserts the harness's paper-scale configurations actually use
those values, so the table printed here is the table the code runs.
"""

from __future__ import annotations

from repro.experiments.dictionary_exp import DictionaryExperimentConfig, PAPER_FRACTIONS
from repro.experiments.focused_exp import FocusedExperimentConfig
from repro.experiments.params import (
    DICTIONARY_PARAMS,
    FOCUSED_PARAMS,
    RONI_PARAMS,
    THRESHOLD_PARAMS,
)
from repro.experiments.reporting import render_table1
from repro.experiments.threshold_exp import ThresholdExperimentConfig
from repro.defenses.roni import RoniConfig


def bench_table1(benchmark, artifacts):
    table = benchmark.pedantic(render_table1, rounds=1, iterations=1)

    # Paper-scale configs must agree with the Table 1 constants.
    dictionary = DictionaryExperimentConfig.paper_scale()
    assert dictionary.inbox_size == DICTIONARY_PARAMS.training_set_sizes[1]
    assert dictionary.folds == int(DICTIONARY_PARAMS.validation)
    assert tuple(dictionary.attack_fractions) == (0.0,) + DICTIONARY_PARAMS.attack_fractions
    assert PAPER_FRACTIONS[1:] == DICTIONARY_PARAMS.attack_fractions

    focused = FocusedExperimentConfig.paper_scale()
    assert focused.inbox_size == FOCUSED_PARAMS.training_set_sizes[0]
    assert focused.n_targets == FOCUSED_PARAMS.target_emails
    assert focused.repetitions == 5

    roni = RoniConfig()
    assert roni.train_size == RONI_PARAMS.training_set_sizes[0]
    assert roni.validation_size == RONI_PARAMS.test_set_sizes[0]
    assert roni.trials == 5

    threshold = ThresholdExperimentConfig.paper_scale()
    assert threshold.inbox_size == THRESHOLD_PARAMS.training_set_sizes[1]
    assert threshold.folds == int(THRESHOLD_PARAMS.validation)
    assert tuple(threshold.attack_fractions) == (0.0,) + THRESHOLD_PARAMS.attack_fractions

    artifacts.add("table1-parameters", "Table 1 (parameters used in our experiments)\n\n" + table)
