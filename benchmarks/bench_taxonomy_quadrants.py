"""E-A3 — ablation: the other quadrants of the Section 3.1 taxonomy.

The paper's attacks are Causative Availability.  Its taxonomy and
related-work sections describe the neighbours; this bench runs our
implementations of them against the same trained filter so the four
quadrants can be compared on one table:

* Exploratory Integrity — good-word padding (Lowd & Meek / Wittel &
  Wu): spam slips through, training untouched;
* Causative Integrity — ham-labeled contamination (the paper's §2.2
  extension): future spam slips through;
* Causative Availability — the paper's usenet dictionary attack, for
  reference.
"""

from __future__ import annotations

from repro.attacks.dictionary import UsenetDictionaryAttack
from repro.attacks.goodword import OracleGoodWordAttack
from repro.attacks.hamlabeled import HamLabeledAttack
from repro.corpus.trec import TrecStyleCorpus
from repro.corpus.vocabulary import PAPER_PROFILE, SMALL_PROFILE
from repro.experiments.crossval import evaluate_dataset, train_grouped
from repro.experiments.reporting import format_table
from repro.rng import SeedSpawner
from repro.spambayes.classifier import Classifier
from repro.spambayes.filter import Label
from repro.spambayes.tokenizer import DEFAULT_TOKENIZER


def _run(scale: str):
    if scale == "paper":
        corpus = TrecStyleCorpus.generate(
            n_ham=6_000, n_spam=6_000, profile=PAPER_PROFILE, seed=12
        )
        inbox_size, contamination = 10_000, 0.05
    else:
        corpus = TrecStyleCorpus.generate(
            n_ham=700, n_spam=700, profile=SMALL_PROFILE, seed=12
        )
        inbox_size, contamination = 1_000, 0.05
    spawner = SeedSpawner(12).spawn("taxonomy-quadrants")
    inbox = corpus.dataset.sample_inbox(inbox_size, 0.5, spawner.rng("inbox"))
    inbox.tokenize_all()
    inbox_ids = {m.msgid for m in inbox}
    held_out = [m for m in corpus.dataset if m.msgid not in inbox_ids][:400]
    test_spam = [m for m in held_out if m.is_spam][:100]

    classifier = Classifier()
    train_grouped(classifier, inbox)
    clean = evaluate_dataset(classifier, held_out)
    attack_count = round(inbox_size * contamination / (1 - contamination))

    rows = [[
        "(clean baseline)", "-",
        f"{clean.ham_misclassified_rate:.1%}", f"{clean.spam_as_spam_rate:.1%}",
    ]]

    # Causative Availability: the paper's usenet dictionary attack.
    dictionary = UsenetDictionaryAttack.from_vocabulary(corpus.vocabulary)
    batch = dictionary.generate(attack_count, spawner.rng("dict"))
    batch.train_into(classifier)
    poisoned = evaluate_dataset(classifier, held_out)
    rows.append([
        "dictionary (paper)", dictionary.taxonomy.describe(),
        f"{poisoned.ham_misclassified_rate:.1%}", f"{poisoned.spam_as_spam_rate:.1%}",
    ])
    batch.untrain_from(classifier)

    # Causative Integrity: ham-labeled contamination (§2.2 extension).
    whitewash = HamLabeledAttack.from_vocabulary(corpus.vocabulary)
    ham_batch = whitewash.generate(attack_count, spawner.rng("white"))
    ham_batch.train_into(classifier)
    whitewashed = evaluate_dataset(classifier, held_out)
    rows.append([
        "ham-labeled (§2.2 ext.)", whitewash.taxonomy.describe(),
        f"{whitewashed.ham_misclassified_rate:.1%}", f"{whitewashed.spam_as_spam_rate:.1%}",
    ])
    ham_batch.untrain_from(classifier)

    # Exploratory Integrity: good-word padding against the clean filter.
    oracle = OracleGoodWordAttack(
        classifier, corpus.vocabulary.core[:2_000] + corpus.vocabulary.ham_topic
    )
    budget = 100
    evaded = 0
    for message in test_spam:
        padded = oracle.pad(message.email, budget).padded
        score = classifier.score(DEFAULT_TOKENIZER.tokenize(padded))
        if score <= classifier.options.spam_cutoff:
            evaded += 1
    rows.append([
        f"good-word x{budget} (L&M)", oracle.taxonomy.describe(),
        f"{clean.ham_misclassified_rate:.1%}",
        f"{(len(test_spam) - evaded) / len(test_spam):.1%}",
    ])
    return rows, clean, poisoned, whitewashed, evaded, len(test_spam)


def bench_taxonomy_quadrants(benchmark, artifacts, scale):
    rows, clean, poisoned, whitewashed, evaded, n_spam = benchmark.pedantic(
        _run, args=(scale,), rounds=1, iterations=1
    )

    # Quadrant signatures: Availability hurts ham, Integrity hurts spam
    # detection, Exploratory leaves training untouched by construction.
    assert poisoned.ham_misclassified_rate > clean.ham_misclassified_rate + 0.3
    assert whitewashed.spam_as_spam_rate < clean.spam_as_spam_rate
    assert whitewashed.ham_misclassified_rate <= clean.ham_misclassified_rate + 0.02
    assert evaded > 0, "good words must slip some spam through"

    table = format_table(
        ["attack", "taxonomy (Sec 3.1)", "ham lost (availability)", "spam caught (integrity)"],
        rows,
    )
    artifacts.add(
        "taxonomy-quadrants",
        f"E-A3 taxonomy quadrants (scale={scale}; 5% contamination where causative; "
        f"good words evaded {evaded}/{n_spam} spam)\n\n{table}"
        + "\n\nreading: each quadrant of the Section 3.1 taxonomy damages a different"
        + "\nmetric — Availability attacks destroy ham delivery, Integrity attacks"
        + "\n(whether Causative ham-labeled training or Exploratory good-word padding)"
        + "\nerode spam catching, confirming the paper's §2.2 conjecture in code.",
    )
