"""Benchmark harness plumbing.

Every figure/table benchmark renders its result (data table + ASCII
figure + paper comparison) through the ``artifacts`` fixture.  Rendered
artifacts are written to ``benchmarks/results/<name>.txt`` and echoed
into the terminal summary — which pytest does *not* capture — so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
produces a self-contained reproduction record.

Scale is selected with the ``REPRO_SCALE`` environment variable:

* ``small`` (default) — 1/10-scale corpora, minutes for the whole run;
* ``paper`` — Table 1 sizes (10,000-message inboxes, 10-fold CV);
  expect a multi-hour run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

_collected: list[tuple[str, str]] = []


def repro_scale() -> str:
    scale = os.environ.get("REPRO_SCALE", "small").lower()
    if scale not in ("small", "paper"):
        raise ValueError(f"REPRO_SCALE must be 'small' or 'paper', got {scale!r}")
    return scale


@pytest.fixture(scope="session")
def scale() -> str:
    return repro_scale()


class ArtifactSink:
    """Records rendered experiment artifacts for the terminal summary."""

    def add(self, name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        _collected.append((name, text))


@pytest.fixture(scope="session")
def artifacts() -> ArtifactSink:
    return ArtifactSink()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _collected:
        return
    terminalreporter.write_sep("=", "reproduction artifacts")
    for name, text in _collected:
        terminalreporter.write_sep("-", name)
        terminalreporter.write_line(text)
