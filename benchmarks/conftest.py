"""Benchmark harness plumbing.

Every figure/table benchmark renders its result (data table + ASCII
figure + paper comparison) through the ``artifacts`` fixture.  Rendered
artifacts are written to ``benchmarks/results/<name>.txt`` and echoed
into the terminal summary — which pytest does *not* capture — so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
produces a self-contained reproduction record.

Scale is selected with the ``REPRO_SCALE`` environment variable:

* ``small`` (default) — 1/10-scale corpora, minutes for the whole run;
* ``paper`` — Table 1 sizes (10,000-message inboxes, 10-fold CV);
  expect a multi-hour run.

Two more knobs, resolved through the engine's shared seeding helpers
(:mod:`repro.engine.seeding`) and exposed as the ``root_seed`` /
``workers`` fixtures:

* ``REPRO_SEED`` — root seed (default 1, the historical benchmark
  seed; ``default`` selects :data:`repro.rng.DEFAULT_SEED`).
  Currently consumed by the sweep benchmark configs that take the
  ``root_seed`` fixture (``bench_figure1_dictionary``); the other
  benchmarks keep their historical hardcoded seeds;
* ``REPRO_WORKERS`` — worker processes for the experiment engine
  (default 1; 0 = one per CPU), consumed by the engine-routed sweeps
  (``bench_figure1_dictionary``, ``bench_figure5_threshold``).
  Changing it changes wall-clock time only: the emitted artifacts and
  JSON records are identical, because per-task seeds derive from the
  root seed, never from scheduling.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.engine.runner import resolve_workers
from repro.engine.seeding import resolve_root_seed

RESULTS_DIR = Path(__file__).parent / "results"

BENCH_ROOT_SEED = 1
"""Historical root seed of the benchmark suite."""

_collected: list[tuple[str, str]] = []


def repro_scale() -> str:
    scale = os.environ.get("REPRO_SCALE", "small").lower()
    if scale not in ("small", "paper"):
        raise ValueError(f"REPRO_SCALE must be 'small' or 'paper', got {scale!r}")
    return scale


def repro_seed() -> int:
    """Root seed for benchmark configs, via the engine's shared parser."""
    return resolve_root_seed(os.environ.get("REPRO_SEED"), default=BENCH_ROOT_SEED)


def repro_workers() -> int:
    """Engine worker count for benchmark configs (never affects results).

    Tolerant like :func:`repro_seed`: unset or blank means the default
    of 1; anything else must parse as an integer.
    """
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if not raw:
        return 1
    try:
        return resolve_workers(int(raw))
    except ValueError as exc:
        raise ValueError(f"REPRO_WORKERS must be an integer, got {raw!r}") from exc


@pytest.fixture(scope="session")
def scale() -> str:
    return repro_scale()


@pytest.fixture(scope="session")
def root_seed() -> int:
    return repro_seed()


@pytest.fixture(scope="session")
def workers() -> int:
    return repro_workers()


class ArtifactSink:
    """Records rendered experiment artifacts for the terminal summary."""

    def add(self, name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        _collected.append((name, text))


@pytest.fixture(scope="session")
def artifacts() -> ArtifactSink:
    return ArtifactSink()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _collected:
        return
    terminalreporter.write_sep("=", "reproduction artifacts")
    for name, text in _collected:
        terminalreporter.write_sep("-", name)
        terminalreporter.write_line(text)
