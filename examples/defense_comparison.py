#!/usr/bin/env python3
"""Comparing the paper's two defenses against the same attack.

Both defenses face a usenet-dictionary attack at 5% control of the
training set:

* RONI (Section 5.1) gates what enters training — it removes the
  attack entirely but needs per-message measurement at retrain time;
* the dynamic threshold defense (Section 5.2) trains on everything and
  moves the decision boundaries — cheap, saves the ham, but floods the
  unsure folder with spam.

Run:  python examples/defense_comparison.py
"""

from __future__ import annotations

import os

from repro import SpamFilter, TrecStyleCorpus
from repro.attacks import UsenetDictionaryAttack
from repro.corpus.dataset import Dataset
from repro.defenses import train_with_dynamic_threshold, train_with_roni
from repro.defenses.threshold import DynamicThresholdConfig
from repro.experiments.crossval import attack_message_count, evaluate_dataset, train_grouped
from repro.experiments.reporting import format_table
from repro.experiments.threshold_exp import attack_messages_as_dataset
from repro.rng import SeedSpawner


# REPRO_EXAMPLE_SCALE=tiny shrinks the demo for the smoke tests in
# tests/test_examples.py; the output has the same shape either way.
TINY = os.environ.get("REPRO_EXAMPLE_SCALE", "").lower() == "tiny"
CORPUS_SIZE, INBOX_SIZE, TEST_SIZE = (250, 300, 100) if TINY else (700, 1_000, 300)


def main() -> None:
    spawner = SeedSpawner(2024).spawn("defense-comparison")
    corpus = TrecStyleCorpus.generate(n_ham=CORPUS_SIZE, n_spam=CORPUS_SIZE, seed=2024)
    inbox = corpus.dataset.sample_inbox(INBOX_SIZE, 0.5, spawner.rng("inbox"))
    inbox.tokenize_all()
    inbox_ids = {m.msgid for m in inbox}
    test = [m for m in corpus.dataset if m.msgid not in inbox_ids][:TEST_SIZE]

    attack = UsenetDictionaryAttack.from_vocabulary(corpus.vocabulary)
    count = attack_message_count(len(inbox), 0.05)
    batch = attack.generate(count, spawner.rng("attack"))
    attack_messages = attack_messages_as_dataset(batch)
    print(f"attack: {count} usenet-dictionary emails (5% control, "
          f"{attack.dictionary_size} words each)\n")

    rows = []

    # Arm 0: no attack (reference).
    clean = SpamFilter()
    train_grouped(clean.classifier, inbox)
    rows.append(["clean filter (no attack)"] + _rates(clean.classifier, test))

    # Arm 1: undefended, poisoned.
    poisoned = clean.classifier.copy()
    batch.train_into(poisoned)
    rows.append(["no defense"] + _rates(poisoned, test))

    # Arm 2: RONI gates the retraining batch.
    roni_filter, report = train_with_roni(
        inbox, attack_messages, spawner.rng("roni")
    )
    rows.append(
        [f"RONI (rejected {len(report.rejected)}/{len(attack_messages)} attack msgs)"]
        + _rates(roni_filter.classifier, test)
    )

    # Arm 3: dynamic thresholds fitted on the poisoned training set.
    poisoned_dataset = Dataset(inbox.messages + attack_messages, name="poisoned")
    for quantile in (0.05, 0.10):
        defended, fit = train_with_dynamic_threshold(
            poisoned_dataset,
            spawner.rng(f"threshold-{quantile}"),
            config=DynamicThresholdConfig(quantile=quantile),
        )
        rows.append(
            [f"dynamic threshold q={quantile:.2f} (θ=({fit.ham_cutoff:.2f},{fit.spam_cutoff:.2f}))"]
            + _rates(defended.classifier, test)
        )

    print(
        format_table(
            ["configuration", "ham-as-spam", "ham-as-spam|unsure", "spam-as-spam", "spam-as-unsure"],
            rows,
        )
    )
    print(
        "\nreading (matches Section 5): RONI removes the attack outright;"
        "\nthe dynamic threshold saves ham from the spam folder but pushes"
        "\nmost spam into unsure — trading one nuisance for another."
    )


def _rates(classifier, test) -> list[str]:
    counts = evaluate_dataset(classifier, test)
    return [
        f"{counts.ham_as_spam_rate:.1%}",
        f"{counts.ham_misclassified_rate:.1%}",
        f"{counts.spam_as_spam_rate:.1%}",
        f"{counts.spam_as_unsure_rate:.1%}",
    ]


if __name__ == "__main__":
    main()
