#!/usr/bin/env python3
"""The Section 3.2 dictionary attack, end to end.

Scenario: a spammer wants the victim to abandon their spam filter, so
they mail word-soup messages (an entire dictionary per email).  The
organization's weekly retrain ingests them as spam — the contamination
assumption — and afterwards ordinary business mail starts landing in
the spam folder.

The demo trains a clean filter, poisons it at 1% control (the paper's
headline number), shows the damage, and then shows RONI (Section 5.1)
catching every attack message.

Run:  python examples/dictionary_attack_demo.py
"""

from __future__ import annotations

import os

from repro import SpamFilter, TrecStyleCorpus
from repro.attacks import AspellDictionaryAttack, UsenetDictionaryAttack
from repro.corpus.stats import coverage_report
from repro.defenses import RoniDefense
from repro.experiments.crossval import attack_message_count, evaluate_dataset, train_grouped
from repro.rng import SeedSpawner


# REPRO_EXAMPLE_SCALE=tiny shrinks the demo for the smoke tests in
# tests/test_examples.py; the output has the same shape either way.
TINY = os.environ.get("REPRO_EXAMPLE_SCALE", "").lower() == "tiny"
CORPUS_SIZE, INBOX_SIZE, TEST_SIZE = (250, 300, 100) if TINY else (700, 1_000, 300)


def ham_rates(classifier, messages) -> str:
    counts = evaluate_dataset(classifier, messages, ham_only=True)
    return (
        f"ham-as-spam {counts.ham_as_spam_rate:5.1%}   "
        f"ham-as-(spam|unsure) {counts.ham_misclassified_rate:5.1%}"
    )


def main() -> None:
    spawner = SeedSpawner(42).spawn("dictionary-demo")
    corpus = TrecStyleCorpus.generate(n_ham=CORPUS_SIZE, n_spam=CORPUS_SIZE, seed=42)
    inbox = corpus.dataset.sample_inbox(INBOX_SIZE, 0.5, spawner.rng("inbox"))
    inbox.tokenize_all()
    inbox_ids = {m.msgid for m in inbox}
    test = [m for m in corpus.dataset if m.msgid not in inbox_ids][:TEST_SIZE]

    # --- the attacker's word sources -----------------------------------
    aspell = AspellDictionaryAttack.from_vocabulary(corpus.vocabulary)
    usenet = UsenetDictionaryAttack.from_vocabulary(corpus.vocabulary)
    print("attacker's word sources vs the victim's ham vocabulary:")
    for attack in (aspell, usenet):
        report = coverage_report(inbox, attack.name, attack.tokens)
        print(f"  {report.describe()}")

    # --- clean filter ---------------------------------------------------
    spam_filter = SpamFilter()
    train_grouped(spam_filter.classifier, inbox)
    print(f"\nclean filter on {len(test)} held-out messages:")
    print(f"  {ham_rates(spam_filter.classifier, test)}")

    # --- poison at 1% control -------------------------------------------
    count = attack_message_count(len(inbox), 0.01)
    print(f"\ninjecting {count} usenet-dictionary attack emails (1% control)...")
    batch = usenet.generate(count, spawner.rng("attack"))
    poisoned = spam_filter.classifier.copy()
    batch.train_into(poisoned)
    print(f"  {ham_rates(poisoned, test)}")
    print("  -> the filter is unusable: nearly all ham is flagged.")

    # --- what one victim email sees --------------------------------------
    victim_ham = next(m for m in test if not m.is_spam)
    before = spam_filter.classifier.score(victim_ham.tokens())
    after = poisoned.score(victim_ham.tokens())
    print(f"\nexample ham {victim_ham.msgid!r}: score {before:.3f} -> {after:.3f}")

    # --- RONI to the rescue ----------------------------------------------
    print("\ncalibrating RONI on the trusted pool (T=20, V=50, 5 resamples)...")
    defense = RoniDefense(inbox, spawner.rng("roni"))
    attack_tokens = batch.groups[0].training_tokens
    attack_verdict = defense.judge_tokens(attack_tokens, is_spam=True)
    normal_spam = next(m for m in test if m.is_spam)
    normal_verdict = defense.judge(normal_spam)
    print(
        f"  attack email:  ham-as-ham impact "
        f"{attack_verdict.measurement.ham_as_ham_decrease:+6.2f}  -> "
        f"{'REJECTED' if attack_verdict.rejected else 'accepted'}"
    )
    print(
        f"  normal spam:   ham-as-ham impact "
        f"{normal_verdict.measurement.ham_as_ham_decrease:+6.2f}  -> "
        f"{'REJECTED' if normal_verdict.rejected else 'accepted'}"
    )
    print("\nwith RONI gating the retrain, the attack emails never enter training.")


if __name__ == "__main__":
    main()
