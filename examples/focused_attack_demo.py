#!/usr/bin/env python3
"""The Section 3.3 focused attack: sabotaging a competitor's bid.

Scenario (from the paper's introduction): a malicious contractor wants
to stop the victim from *receiving* a competitor's bid email.  The
attacker knows the bid's likely vocabulary — company names, product
terms, the usual bid template — and mails spam containing those words.
After the victim's filter retrains, the real bid arrives... and is
filed as spam.

The demo shows the attack at several knowledge levels and renders the
paper's Figure 4 panel (per-token score shifts) for the target.

Run:  python examples/focused_attack_demo.py
"""

from __future__ import annotations

import os

from repro import SpamFilter, TrecStyleCorpus
from repro.analysis.token_shift import token_shift_analysis
from repro.attacks import FocusedAttack
from repro.experiments.crossval import train_grouped
from repro.rng import SeedSpawner


# REPRO_EXAMPLE_SCALE=tiny shrinks the demo for the smoke tests in
# tests/test_examples.py; the output has the same shape either way.
TINY = os.environ.get("REPRO_EXAMPLE_SCALE", "").lower() == "tiny"
CORPUS_SIZE, INBOX_SIZE, ATTACK_COUNT = (250, 300, 18) if TINY else (700, 1_000, 60)


def main() -> None:
    spawner = SeedSpawner(1337).spawn("focused-demo")
    corpus = TrecStyleCorpus.generate(n_ham=CORPUS_SIZE, n_spam=CORPUS_SIZE, seed=1337)
    inbox = corpus.dataset.sample_inbox(INBOX_SIZE, 0.5, spawner.rng("inbox"))
    inbox.tokenize_all()

    # The bid email the attacker wants buried: a ham message the victim
    # has NOT yet received (it is outside the training inbox).
    inbox_ids = {m.msgid for m in inbox}
    bid = next(m for m in corpus.dataset.ham if m.msgid not in inbox_ids)
    print(f"target bid email: {bid.msgid}")
    print(f"  subject: {bid.email.subject}")
    print(f"  body tokens: {len(bid.tokens())}")

    spam_filter = SpamFilter()
    train_grouped(spam_filter.classifier, inbox)
    clean = spam_filter.classify_tokens(bid.tokens())
    print(f"\nbefore the attack the bid is delivered: score={clean.score:.4f} "
          f"label={clean.label}")

    header_pool = [m.email for m in inbox.spam]
    attack_count = ATTACK_COUNT  # 6% of the inbox — the paper's 300-of-5,000 ratio

    print(f"\nattacker sends {attack_count} attack emails (headers stolen from real spam):")
    for guess_probability in (0.1, 0.3, 0.5, 0.9):
        attack = FocusedAttack(
            bid.email,
            guess_probability=guess_probability,
            header_pool=header_pool,
        )
        batch = attack.generate(attack_count, spawner.rng(f"attack-p{guess_probability}"))
        batch.train_into(spam_filter.classifier)
        verdict = spam_filter.classify_tokens(bid.tokens())
        batch.untrain_from(spam_filter.classifier)
        knowledge = attack.draw_knowledge(spawner.rng(f"attack-p{guess_probability}"))
        print(
            f"  knows {guess_probability:3.0%} of tokens "
            f"(guessed {len(knowledge.guessed_tokens):3d}): "
            f"bid scores {verdict.score:.4f} -> {verdict.label}"
        )

    # Figure 4 panel for the p=0.5 attack.
    attack = FocusedAttack(bid.email, guess_probability=0.5, header_pool=header_pool)
    batch = attack.generate(attack_count, spawner.rng("figure4"))
    report = token_shift_analysis(spam_filter.classifier, bid.email, batch)
    print(f"\nper-token shifts under the p=0.5 attack "
          f"(mean included delta {report.mean_delta(True):+.3f}, "
          f"excluded {report.mean_delta(False):+.3f}):\n")
    print(report.render())
    print(
        "\nOther mail is barely disturbed: the attack only trains tokens the"
        "\nbid uses, so this is a surgical denial of service on one message."
    )


if __name__ == "__main__":
    main()
