#!/usr/bin/env python3
"""Quickstart: train a SpamBayes filter on a synthetic corpus,
classify mail, and save/restore the trained state.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from repro import SpamFilter, TrecStyleCorpus
from repro.rng import SeedSpawner
from repro.spambayes.persistence import load_classifier, save_classifier


# REPRO_EXAMPLE_SCALE=tiny shrinks the demo for the smoke tests in
# tests/test_examples.py; the output has the same shape either way.
TINY = os.environ.get("REPRO_EXAMPLE_SCALE", "").lower() == "tiny"
CORPUS_SIZE, INBOX_SIZE, HELD_OUT = (200, 240, 80) if TINY else (600, 800, 200)


def main() -> None:
    # 1. A deterministic TREC-2005-style corpus: ham is Enron-like
    #    business mail, spam is promotional text, over a shared Zipfian
    #    vocabulary (see repro.corpus for the construction).
    corpus = TrecStyleCorpus.generate(n_ham=CORPUS_SIZE, n_spam=CORPUS_SIZE, seed=7)
    print(f"corpus: {corpus.dataset}")

    # 2. Sample the victim's inbox (50% spam, like the paper) and hold
    #    out the rest for testing.
    rng = SeedSpawner(7).rng("quickstart-inbox")
    inbox = corpus.dataset.sample_inbox(INBOX_SIZE, spam_fraction=0.5, rng=rng)
    inbox_ids = {message.msgid for message in inbox}
    held_out = [m for m in corpus.dataset if m.msgid not in inbox_ids][:HELD_OUT]

    # 3. Train the three-way filter (θ0 = 0.15, θ1 = 0.9 by default).
    spam_filter = SpamFilter()
    for message in inbox:
        spam_filter.train(message.email, message.is_spam)
    print(f"trained: {spam_filter.classifier}")

    # 4. Classify held-out mail and tally a confusion summary.
    outcomes: dict[tuple[str, str], int] = {}
    for message in held_out:
        result = spam_filter.classify(message.email)
        truth = "spam" if message.is_spam else "ham"
        outcomes[(truth, result.label.value)] = outcomes.get((truth, result.label.value), 0) + 1
    print("\nheld-out classification (truth -> label):")
    for (truth, label), count in sorted(outcomes.items()):
        print(f"  {truth:4s} -> {label:6s}: {count}")

    # 5. Inspect the evidence for one decision.
    sample = held_out[0]
    verdict = spam_filter.classify(sample.email, with_evidence=True)
    print(f"\n{sample.msgid}: score={verdict.score:.4f} label={verdict.label}")
    print("  strongest tokens:")
    for token_score in verdict.evidence[:5]:
        print(f"    {token_score.token:24s} f(w)={token_score.spam_prob:.3f}")

    # 6. Persist and restore the trained state.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "filter.json.gz"
        save_classifier(spam_filter.classifier, path)
        restored = load_classifier(path)
        assert restored.score(spam_filter.tokenizer.tokenize(sample.email)) == verdict.score
        print(f"\nsaved and restored classifier from {path.name}: scores identical")


if __name__ == "__main__":
    main()
