#!/usr/bin/env python3
"""The Section 2.1 deployment loop, played out over eight weeks.

An organization retrains its filter weekly on all received mail.  In
week 4 a spammer starts mailing a dozen dictionary-attack emails per
week.  We run the loop twice — undefended, then with a RONI gate that
is recalibrated each week on previously accepted mail — and print the
filter's held-out accuracy week by week.

Run:  python examples/retraining_simulation.py
"""

from __future__ import annotations

import os

from repro.experiments.reporting import format_table
from repro.experiments.retraining import RetrainingConfig, run_retraining_simulation


# REPRO_EXAMPLE_SCALE=tiny shrinks the demo for the smoke tests in
# tests/test_examples.py; the output has the same shape either way.
TINY = os.environ.get("REPRO_EXAMPLE_SCALE", "").lower() == "tiny"


def run(defense: str):
    config = RetrainingConfig(
        weeks=4 if TINY else 8,
        ham_per_week=25 if TINY else 60,
        spam_per_week=25 if TINY else 60,
        attack_start_week=2 if TINY else 4,
        attack_per_week=8 if TINY else 12,
        test_size=80 if TINY else 200,
        defense=defense,
        seed=99,
    )
    return run_retraining_simulation(config)


def main() -> None:
    undefended = run("none")
    defended = run("roni")

    rows = []
    for u_week, d_week in zip(undefended.weeks, defended.weeks):
        rows.append(
            [
                u_week.week,
                u_week.attack_sent,
                f"{u_week.confusion.ham_misclassified_rate:.0%}",
                f"{d_week.confusion.ham_misclassified_rate:.0%}",
                f"{d_week.attack_rejected}/{d_week.attack_sent}",
                d_week.legitimate_rejected,
            ]
        )
    start = undefended.config.attack_start_week
    print(f"weekly retraining under a dictionary attack (attack starts week {start}):\n")
    print(
        format_table(
            [
                "week",
                "attack emails sent",
                "ham lost (no defense)",
                "ham lost (RONI)",
                "attack rejected (RONI)",
                "legit rejected (RONI)",
            ],
            rows,
        )
    )
    print(
        f"\nafter week 8: undefended filter loses "
        f"{undefended.final_ham_misclassification():.0%} of ham; "
        f"RONI-gated filter loses {defended.final_ham_misclassification():.0%}."
        "\nThe attack compounds across retrains unless each batch is screened —"
        "\nexactly why the paper frames RONI as a training-pipeline defense."
    )


if __name__ == "__main__":
    main()
