#!/usr/bin/env python3
"""The scenario registry: run any attack × defense study by name.

Every experiment in this reproduction — the five paper artifacts and
the composed cross-products — is a registered *scenario*: a frozen
declarative spec (protocol, config, attack grid, defense stack) that
one generic executor runs.  This demo lists the catalogue, runs the
``focused-vs-roni`` cross-product at demo scale, and shows why it
exists: the RONI gate that separates dictionary attacks perfectly
barely notices a focused attack (the paper's Section 5.1 caveat).

Equivalent shell commands::

    python -m repro list-scenarios
    python -m repro run-scenario focused-vs-roni --set pool_size=120

Run:  python examples/scenario_registry_demo.py
"""

from __future__ import annotations

import os

from repro.corpus.vocabulary import TINY_PROFILE
from repro.defenses.roni import RoniConfig
from repro.scenarios import list_scenarios, run_scenario

# REPRO_EXAMPLE_SCALE=tiny shrinks the demo for the smoke tests in
# tests/test_examples.py; the output has the same shape either way.
TINY = os.environ.get("REPRO_EXAMPLE_SCALE", "").lower() == "tiny"


def main() -> None:
    print("registered scenarios:\n")
    for spec in list_scenarios():
        artifact = f" [{spec.paper_artifact}]" if spec.paper_artifact else ""
        print(f"  {spec.name:<26} {spec.title}{artifact}")

    overrides = {
        "pool_size": 100 if TINY else 160,
        "n_nonattack_spam": 8 if TINY else 20,
        "repetitions_per_variant": 2 if TINY else 4,
        "roni": RoniConfig(train_size=10, validation_size=20, trials=2),
        "profile": TINY_PROFILE,
        "corpus_ham": 150 if TINY else 250,
        "corpus_spam": 150 if TINY else 250,
    }
    print("\nrunning 'focused-vs-roni' (demo scale)...\n")
    result = run_scenario("focused-vs-roni", overrides=overrides, seed=7).result

    for variant, impacts in result.attack_impacts.items():
        mean = sum(impacts) / len(impacts)
        print(f"  {variant:<10} mean ham-as-ham impact {mean:5.2f}  "
              f"(per email: {', '.join(f'{v:.1f}' for v in impacts)})")
    print(f"  non-attack spam: max impact {result.max_nonattack_impact:.2f}")
    print(f"\n  separable by one threshold? {result.separable}")
    print(
        "\nreading: the usenet dictionary attack damages broad validation ham"
        "\nand towers over non-attack spam, but the focused attack hurts only"
        "\none future message — RONI's incremental-impact test barely sees it."
        "\nThat asymmetry is exactly the paper's Section 5.1 closing caveat."
    )


if __name__ == "__main__":
    main()
