"""Setup shim for environments without the ``wheel`` package.

The canonical metadata lives in ``pyproject.toml``; this file only
enables ``pip install -e . --no-build-isolation --no-use-pep517`` in
offline environments where PEP-517 editable installs cannot build a
wheel.
"""

from setuptools import setup

setup()
