"""repro — reproduction of "Exploiting Machine Learning to Subvert Your
Spam Filter" (Nelson et al., 2008).

The library provides four layers, each usable on its own:

* :mod:`repro.spambayes` — a clean-room SpamBayes learner (tokenizer,
  Robinson/Fisher classifier, three-way filter),
* :mod:`repro.corpus` — a deterministic TREC-2005-style synthetic email
  corpus plus the Aspell/Usenet attack word sources,
* :mod:`repro.attacks` — Causative Availability attacks: the optimal,
  Aspell-dictionary and Usenet-dictionary attacks and the focused
  attack,
* :mod:`repro.defenses` — the RONI and dynamic-threshold defenses,
* :mod:`repro.experiments` / :mod:`repro.analysis` — the paper's
  experimental protocol (cross-validated attack sweeps) and reporting.

Quickstart::

    from repro import SpamFilter, TrecStyleCorpus

    corpus = TrecStyleCorpus.generate(n_ham=500, n_spam=500, seed=7)
    filt = SpamFilter()
    for message in corpus.messages:
        filt.train(message.email, message.is_spam)
    print(filt.classify(corpus.messages[0].email))
"""

from repro.errors import (
    AttackError,
    ConfigurationError,
    CorpusError,
    DefenseError,
    ExperimentError,
    MessageParseError,
    PersistenceError,
    ReproError,
    TrainingError,
)
from repro.rng import DEFAULT_SEED, SeedSpawner
from repro.spambayes import (
    Classifier,
    ClassifierOptions,
    ClassifiedMessage,
    DEFAULT_OPTIONS,
    Email,
    Label,
    SpamFilter,
    Tokenizer,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "CorpusError",
    "MessageParseError",
    "TrainingError",
    "AttackError",
    "DefenseError",
    "ExperimentError",
    "PersistenceError",
    # rng
    "DEFAULT_SEED",
    "SeedSpawner",
    # spambayes
    "Classifier",
    "ClassifierOptions",
    "ClassifiedMessage",
    "DEFAULT_OPTIONS",
    "Email",
    "Label",
    "SpamFilter",
    "Tokenizer",
]


def _extend_public_api() -> None:
    """Re-export corpus-layer names once that package exists.

    Kept in a function so the core engine stays importable while the
    higher layers are being developed or stripped down.
    """
    from repro.corpus import TrecStyleCorpus as _TrecStyleCorpus

    globals()["TrecStyleCorpus"] = _TrecStyleCorpus
    __all__.append("TrecStyleCorpus")


try:  # pragma: no cover - exercised implicitly on import
    _extend_public_api()
except ImportError:  # corpus layer not built yet
    pass
