"""Analysis and visualization helpers.

* :mod:`repro.analysis.token_shift` — the Figure 4 analysis: per-token
  spam scores before vs after a focused attack;
* :mod:`repro.analysis.plots` — ASCII line/bar/scatter rendering used
  by benchmarks and examples (no plotting library required).
"""

from repro.analysis.plots import ascii_bar_chart, ascii_line_chart, ascii_scatter
from repro.analysis.token_shift import TokenShift, TokenShiftReport, token_shift_analysis

__all__ = [
    "ascii_bar_chart",
    "ascii_line_chart",
    "ascii_scatter",
    "TokenShift",
    "TokenShiftReport",
    "token_shift_analysis",
]
