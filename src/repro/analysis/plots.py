"""ASCII chart rendering.

No plotting stack is available offline, and the figures only need to
be *recognizable* next to the paper: monotone curves, orderings and
saturation points.  These renderers draw into a character grid and
return a string; benchmarks print them so a bench run's stdout is a
self-contained reproduction artifact.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["ascii_line_chart", "ascii_bar_chart", "ascii_scatter"]

_MARKS = "o*x+#@%&"


def _scale(value: float, low: float, high: float, cells: int) -> int:
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(cells - 1, max(0, round(position * (cells - 1))))


def ascii_line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    y_range: tuple[float, float] | None = (0.0, 1.0),
) -> str:
    """Render named (x, y) series as an ASCII chart.

    Each series gets a marker character; points are plotted on a
    ``width``x``height`` grid with linear interpolation between
    consecutive points so curves read as lines, not dots.
    """
    all_points = [point for points in series.values() for point in points]
    if not all_points:
        return "(no data)"
    xs = [x for x, _ in all_points]
    x_low, x_high = min(xs), max(xs)
    if y_range is None:
        ys = [y for _, y in all_points]
        y_low, y_high = min(ys), max(ys)
        if y_low == y_high:
            y_low, y_high = y_low - 0.5, y_high + 0.5
    else:
        y_low, y_high = y_range
    grid = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(series.items()):
        mark = _MARKS[index % len(_MARKS)]
        ordered = sorted(points)
        previous = None
        for x, y in ordered:
            column = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            if previous is not None:
                prev_column, prev_row = previous
                steps = max(abs(column - prev_column), abs(row - prev_row))
                for step in range(1, steps):
                    interp_col = prev_column + round((column - prev_column) * step / steps)
                    interp_row = prev_row + round((row - prev_row) * step / steps)
                    if grid[interp_row][interp_col] == " ":
                        grid[interp_row][interp_col] = "."
            grid[row][column] = mark
            previous = (column, row)
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_high:7.2f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append("        │" + "".join(row))
    lines.append(f"{y_low:7.2f} ┤" + "".join(grid[-1]))
    lines.append("        └" + "─" * width)
    lines.append(f"         {x_low:<10.3g}{x_label:^{max(1, width - 20)}}{x_high:>10.3g}")
    legend = "  legend: " + "  ".join(
        f"{_MARKS[i % len(_MARKS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def ascii_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    width: int = 40,
    title: str = "",
) -> str:
    """Render grouped fractions as horizontal stacked-ish bars.

    ``groups`` maps a group label (e.g. "p=0.3") to segment fractions
    (e.g. {"ham": 0.4, "unsure": 0.25, "spam": 0.35}).  Fractions
    should sum to ~1 per group.
    """
    if not groups:
        return "(no data)"
    segment_chars = {"ham": "h", "unsure": "?", "spam": "S"}
    lines = []
    if title:
        lines.append(title)
    for label, segments in groups.items():
        bar = ""
        for segment, fraction in segments.items():
            char = segment_chars.get(segment, segment[:1] or "#")
            bar += char * round(fraction * width)
        bar = bar[:width].ljust(width, " ")
        detail = " ".join(f"{name}={value:.0%}" for name, value in segments.items())
        lines.append(f"{label:>10} |{bar}| {detail}")
    lines.append("  legend: " + ", ".join(f"{c}={n}" for n, c in segment_chars.items()))
    return "\n".join(lines)


def ascii_scatter(
    points: Sequence[tuple[float, float, bool]],
    width: int = 48,
    height: int = 24,
    title: str = "",
    x_label: str = "before",
    y_label: str = "after",
) -> str:
    """Render Figure-4-style before/after scatter.

    ``points`` are (x, y, included) triples; included tokens render as
    ``x`` (the paper's red crosses), excluded as ``o`` (blue circles).
    Both axes span [0, 1]; the identity diagonal is drawn so shifts
    above/below it are visible.
    """
    grid = [[" "] * width for _ in range(height)]
    for i in range(min(width, height * 2)):
        row = height - 1 - _scale(i / (width - 1), 0.0, 1.0, height)
        column = _scale(i / (width - 1), 0.0, 1.0, width)
        if grid[row][column] == " ":
            grid[row][column] = "\\" if False else "`"
    for x, y, included in points:
        column = _scale(x, 0.0, 1.0, width)
        row = height - 1 - _scale(y, 0.0, 1.0, height)
        grid[row][column] = "x" if included else "o"
    lines = []
    if title:
        lines.append(title)
    lines.append("   1.00 ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append("        │" + "".join(row))
    lines.append("   0.00 ┤" + "".join(grid[-1]))
    lines.append("        └" + "─" * width)
    lines.append(f"         0.00{x_label:^{max(1, width - 10)}}1.00")
    lines.append(f"  y={y_label}; x=token in attack, o=token not in attack, `=identity")
    return "\n".join(lines)
