"""Score-distribution analysis: histograms, ROC curves, AUC.

The dynamic threshold defense (Section 5.2) rests on one claim:
*rankings survive score-shifting attacks* even when the absolute
scores are ruined.  Ranking quality is exactly what a ROC curve
measures, so this module provides the tooling to check the claim
directly: compute the ROC of ham-vs-spam scores before and after an
attack and compare the areas.  Used by the score-distribution
benchmark and available for ad-hoc analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ExperimentError

__all__ = ["RocCurve", "score_histogram", "roc_curve", "auc"]


def score_histogram(scores: Sequence[float], bins: int = 20) -> list[int]:
    """Histogram of scores over [0, 1] with ``bins`` equal buckets."""
    if bins < 1:
        raise ExperimentError(f"bins must be >= 1, got {bins}")
    counts = [0] * bins
    for score in scores:
        if not 0.0 <= score <= 1.0:
            raise ExperimentError(f"score {score} outside [0, 1]")
        counts[min(bins - 1, int(score * bins))] += 1
    return counts


@dataclass(frozen=True)
class RocCurve:
    """A ROC curve for "spam score separates spam from ham".

    ``points`` are (false-positive-rate, true-positive-rate) pairs,
    ordered by increasing threshold leniency; "positive" = spam.
    """

    points: tuple[tuple[float, float], ...]

    @property
    def auc(self) -> float:
        """Area under the curve by trapezoidal rule (0.5 = useless,
        1.0 = perfect ranking)."""
        area = 0.0
        for (x0, y0), (x1, y1) in zip(self.points, self.points[1:]):
            area += (x1 - x0) * (y0 + y1) / 2.0
        return area


def roc_curve(ham_scores: Sequence[float], spam_scores: Sequence[float]) -> RocCurve:
    """ROC of classifying spam by thresholding the message score.

    Sweeps the threshold over every distinct observed score; a message
    is called spam when its score exceeds the threshold.
    """
    if not ham_scores or not spam_scores:
        raise ExperimentError("roc_curve needs both ham and spam scores")
    ham_sorted = sorted(ham_scores)
    spam_sorted = sorted(spam_scores)
    thresholds = sorted(set(ham_sorted) | set(spam_sorted))
    points: list[tuple[float, float]] = [(0.0, 0.0)]
    n_ham, n_spam = len(ham_sorted), len(spam_sorted)
    # Descending threshold: start strict (nothing called spam), loosen.
    for threshold in reversed(thresholds):
        false_positives = sum(1 for s in ham_sorted if s >= threshold)
        true_positives = sum(1 for s in spam_sorted if s >= threshold)
        points.append((false_positives / n_ham, true_positives / n_spam))
    points.append((1.0, 1.0))
    # De-duplicate while preserving order.
    deduped: list[tuple[float, float]] = []
    for point in points:
        if not deduped or point != deduped[-1]:
            deduped.append(point)
    return RocCurve(tuple(deduped))


def auc(ham_scores: Sequence[float], spam_scores: Sequence[float]) -> float:
    """Convenience: AUC of :func:`roc_curve` (equals the probability a
    random spam outscores a random ham, ties at half weight)."""
    return roc_curve(ham_scores, spam_scores).auc
