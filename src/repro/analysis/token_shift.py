"""Figure 4: per-token score movement under a focused attack.

For one target email, compare every token's smoothed spam score f(w)
(Equation 2) before and after training on the attack batch.  The
paper's reading of the three panels: tokens *included* in the attack
jump far up (many to ~1.0); tokens *not included* drift slightly down
(the attack grows NS, diluting their spam ratio); whether the target
ends up spam/unsure/ham depends on how much of it the attacker
guessed.

The analysis trains the batch into the supplied classifier, snapshots
scores, and untrains it — the classifier comes back bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.analysis.plots import ascii_scatter
from repro.attacks.base import AttackBatch
from repro.spambayes.classifier import Classifier
from repro.spambayes.filter import Label
from repro.spambayes.message import Email
from repro.spambayes.tokenizer import Tokenizer, DEFAULT_TOKENIZER

__all__ = ["TokenShift", "TokenShiftReport", "token_shift_analysis"]


@dataclass(frozen=True, slots=True)
class TokenShift:
    """One token's before/after smoothed spam score."""

    token: str
    before: float
    after: float
    included: bool
    """Whether the token was part of the attack payload."""

    @property
    def delta(self) -> float:
        return self.after - self.before


@dataclass
class TokenShiftReport:
    """All token shifts for one target, plus message-level outcomes."""

    target_msgid: str
    shifts: list[TokenShift]
    score_before: float
    score_after: float
    label_before: Label
    label_after: Label

    @property
    def included_shifts(self) -> list[TokenShift]:
        return [shift for shift in self.shifts if shift.included]

    @property
    def excluded_shifts(self) -> list[TokenShift]:
        return [shift for shift in self.shifts if not shift.included]

    def mean_delta(self, included: bool) -> float:
        shifts = self.included_shifts if included else self.excluded_shifts
        if not shifts:
            return 0.0
        return sum(shift.delta for shift in shifts) / len(shifts)

    def histogram(self, after: bool, bins: int = 10) -> list[int]:
        """Score histogram before or after the attack (Figure 4 margins)."""
        counts = [0] * bins
        for shift in self.shifts:
            value = shift.after if after else shift.before
            index = min(bins - 1, int(value * bins))
            counts[index] += 1
        return counts

    def render(self, width: int = 48, height: int = 24) -> str:
        """ASCII rendition of this target's Figure 4 panel."""
        chart = ascii_scatter(
            [(shift.before, shift.after, shift.included) for shift in self.shifts],
            width=width,
            height=height,
            title=(
                f"target {self.target_msgid}: {self.label_before.value} -> "
                f"{self.label_after.value} "
                f"(score {self.score_before:.3f} -> {self.score_after:.3f})"
            ),
            x_label="token score before attack",
            y_label="token score after attack",
        )
        before_hist = " ".join(f"{count:3d}" for count in self.histogram(after=False))
        after_hist = " ".join(f"{count:3d}" for count in self.histogram(after=True))
        return f"{chart}\n  score hist before: {before_hist}\n  score hist after : {after_hist}"


def token_shift_analysis(
    classifier: Classifier,
    target: Email,
    batch: AttackBatch,
    tokenizer: Tokenizer = DEFAULT_TOKENIZER,
) -> TokenShiftReport:
    """Measure per-token score shifts of ``target`` under ``batch``.

    ``classifier`` must hold the clean (pre-attack) training state; it
    is restored exactly before returning.
    """
    target_tokens = sorted(frozenset(tokenizer.tokenize(target)))
    attack_tokens = batch.distinct_tokens
    before = {token: classifier.spam_prob(token) for token in target_tokens}
    score_before = classifier.score(target_tokens)
    label_before = _label(classifier, score_before)
    batch.train_into(classifier)
    try:
        shifts = [
            TokenShift(
                token=token,
                before=before[token],
                after=classifier.spam_prob(token),
                included=token in attack_tokens,
            )
            for token in target_tokens
        ]
        score_after = classifier.score(target_tokens)
        label_after = _label(classifier, score_after)
    finally:
        batch.untrain_from(classifier)
    return TokenShiftReport(
        target_msgid=target.msgid,
        shifts=shifts,
        score_before=score_before,
        score_after=score_after,
        label_before=label_before,
        label_after=label_after,
    )


def _label(classifier: Classifier, score: float) -> Label:
    if score <= classifier.options.ham_cutoff:
        return Label.HAM
    if score <= classifier.options.spam_cutoff:
        return Label.UNSURE
    return Label.SPAM
