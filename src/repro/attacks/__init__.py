"""Causative attacks against the SpamBayes learner.

Implements the attacks of Section 3 of the paper:

* :mod:`repro.attacks.taxonomy` — the Influence × Security-violation ×
  Specificity attack taxonomy of Section 3.1,
* :mod:`repro.attacks.dictionary` — Indiscriminate dictionary attacks:
  optimal (every token), Aspell and Usenet variants (Section 3.2),
* :mod:`repro.attacks.focused` — the Targeted focused attack with
  per-token guess probability (Section 3.3),
* :mod:`repro.attacks.knowledge` — the common optimal-attack framework
  of Section 3.4, where the attacker's knowledge is a distribution over
  the victim's next email,
* :mod:`repro.attacks.payload` — rendering attack token payloads into
  actual emails under the contamination assumption's header rules.

All attacks emit :class:`~repro.attacks.base.AttackBatch` objects,
which group identical payloads so the experiment harness can train
thousands of identical dictionary-attack messages in one pass.
"""

from repro.attacks.base import Attack, AttackBatch, AttackMessageGroup
from repro.attacks.goodword import (
    CommonWordGoodWordAttack,
    GoodWordResult,
    OracleGoodWordAttack,
)
from repro.attacks.hamlabeled import HamLabeledAttack, HamLabeledBatch
from repro.attacks.dictionary import (
    AspellDictionaryAttack,
    DictionaryAttack,
    OptimalDictionaryAttack,
    UsenetDictionaryAttack,
)
from repro.attacks.focused import FocusedAttack, TargetKnowledge
from repro.attacks.knowledge import (
    EmpiricalHamDistribution,
    TokenDistribution,
    optimal_attack_tokens,
)
from repro.attacks.payload import HeaderPolicy, render_attack_email
from repro.attacks.taxonomy import AttackTaxonomy, Influence, SecurityViolation, Specificity

__all__ = [
    "Attack",
    "AttackBatch",
    "AttackMessageGroup",
    "DictionaryAttack",
    "OptimalDictionaryAttack",
    "AspellDictionaryAttack",
    "UsenetDictionaryAttack",
    "FocusedAttack",
    "TargetKnowledge",
    "CommonWordGoodWordAttack",
    "OracleGoodWordAttack",
    "GoodWordResult",
    "HamLabeledAttack",
    "HamLabeledBatch",
    "TokenDistribution",
    "EmpiricalHamDistribution",
    "optimal_attack_tokens",
    "HeaderPolicy",
    "render_attack_email",
    "AttackTaxonomy",
    "Influence",
    "SecurityViolation",
    "Specificity",
]
