"""Attack interfaces and the batched payload representation.

The experiment harness trains attacks by *token set*, not by rendered
email text: a 10% dictionary attack at paper scale is ~1,100 identical
messages of ~90,000 tokens each, and materializing megabyte bodies for
them would dominate every run.  :class:`AttackBatch` therefore groups
identical payloads — ``(tokens, count)`` pairs — which both
``Classifier.learn_repeated`` and the defenses consume directly.
Rendered :class:`Email` objects remain available through
:meth:`AttackBatch.iter_emails` for demos, mbox export and the RONI
experiments, which need real messages.

Payloads are **ID-native** on the hot paths: :meth:`AttackBatch.encode`
interns every group's training token set into a shared
:class:`~repro.spambayes.token_table.TokenTable` exactly once per
(batch, table) pair, yielding sorted token-ID arrays that the sweep
engine's :class:`~repro.engine.sweep.IncrementalAttackTrainer`, the
:meth:`train_into_ids` fast path and the RONI gate consume directly —
no string is hashed inside a contamination loop.  The string-facing
:attr:`AttackMessageGroup.training_tokens` path remains, both as the
API for dict-keyed classifiers (``repro.spambayes.reference``) and as
the differential baseline the ID path is tested against.
"""

from __future__ import annotations

import abc
import random
from array import array
from dataclasses import dataclass
from typing import Iterator, Sequence, TYPE_CHECKING

from repro.attacks.payload import HeaderPolicy, render_attack_email
from repro.attacks.taxonomy import AttackTaxonomy
from repro.errors import AttackError
from repro.spambayes.message import Email

if TYPE_CHECKING:  # imported for annotations only — keeps this module light
    from repro.spambayes.token_table import TokenTable

__all__ = ["AttackMessageGroup", "AttackBatch", "Attack"]


@dataclass(frozen=True)
class AttackMessageGroup:
    """``count`` identical attack messages sharing one token payload.

    ``header_tokens`` are trained alongside the body payload (the
    focused attack reuses real spam headers); they are kept separate so
    analysis can distinguish attacker-chosen words from header noise.
    """

    tokens: frozenset[str]
    count: int
    header_tokens: frozenset[str] = frozenset()
    header_source: Email | None = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise AttackError(f"attack message group needs count >= 1, got {self.count}")

    @property
    def training_tokens(self) -> frozenset[str]:
        """The full token set one trained attack message contributes."""
        if not self.header_tokens:
            return self.tokens
        return self.tokens | self.header_tokens

    def encode(self, table: "TokenTable") -> array:
        """This group's training token set as a sorted token-ID array.

        Interns new tokens into ``table`` — call on the classifier's
        (or corpus') shared table.  Prefer :meth:`AttackBatch.encode`,
        which caches the whole batch per table.
        """
        return table.encode_unique(self.training_tokens)


class AttackBatch:
    """An ordered collection of attack message groups.

    The batch for ``count`` dictionary-attack emails is a single group;
    the batch for a focused attack is ``count`` groups of one (each
    email carries a different stolen spam header).
    """

    trained_as_spam: bool = True
    """Label the batch trains under (Section 2.2's contamination
    assumption); :class:`~repro.attacks.hamlabeled.HamLabeledBatch`
    flips it."""

    def __init__(self, attack_name: str, groups: Sequence[AttackMessageGroup]) -> None:
        self.attack_name = attack_name
        self.groups = list(groups)
        # encode() cache: the encoded groups plus the table they were
        # interned into (identity-keyed, like LabeledMessage.token_ids).
        self._encoded: tuple[tuple[array, int], ...] | None = None
        self._encoded_table: "TokenTable | None" = None

    @property
    def message_count(self) -> int:
        return sum(group.count for group in self.groups)

    @property
    def distinct_tokens(self) -> frozenset[str]:
        """Union of all body-payload tokens across the batch."""
        tokens: set[str] = set()
        for group in self.groups:
            tokens |= group.tokens
        return frozenset(tokens)

    def token_occurrences(self) -> int:
        """Total trained token occurrences (the paper's "6.4x as many
        tokens as the original dataset" accounting in Section 4.2)."""
        return sum(len(group.training_tokens) * group.count for group in self.groups)

    def encode(self, table: "TokenTable") -> tuple[tuple[array, int], ...]:
        """The batch as ``(sorted token-ID array, count)`` pairs.

        Every group's training token set is interned into ``table``
        exactly once per (batch, table) pair — repeat calls against the
        same table return the cached arrays, so a batch that is trained,
        measured and untrained (RONI, the focused cells) never re-hashes
        a payload string.  The cache never goes stale: tables are
        append-only, so assigned IDs cannot shift.  Encoding against a
        *different* table re-encodes (one batch normally lives its whole
        life against one corpus table).
        """
        if self._encoded is None or self._encoded_table is not table:
            self._encoded = tuple(
                (group.encode(table), group.count) for group in self.groups
            )
            self._encoded_table = table
        return self._encoded

    def train_into(self, classifier) -> None:
        """Train every message of the batch into ``classifier``.

        ``classifier`` is anything with ``learn_repeated(tokens,
        is_spam, count)`` — the contamination assumption trains attack
        email as spam, never ham (Section 2.2; ham-labeled batches
        override :attr:`trained_as_spam`).  This is the string-payload
        path; hot loops use :meth:`train_into_ids`.
        """
        for group in self.groups:
            classifier.learn_repeated(group.training_tokens, self.trained_as_spam, group.count)

    def untrain_from(self, classifier) -> None:
        """Reverse :meth:`train_into` on the same classifier."""
        for group in self.groups:
            classifier.unlearn_repeated(group.training_tokens, self.trained_as_spam, group.count)

    def train_into_ids(self, classifier) -> None:
        """:meth:`train_into` through the interned-ID fast path.

        Encodes the batch against ``classifier.table`` (cached) and
        trains via ``learn_ids_repeated`` — bit-identical counts to
        :meth:`train_into`, with no per-token string hashing after the
        first encode.
        """
        is_spam = self.trained_as_spam
        for ids, count in self.encode(classifier.table):
            classifier.learn_ids_repeated(ids, is_spam, count)

    def untrain_from_ids(self, classifier) -> None:
        """Reverse :meth:`train_into_ids` on the same classifier."""
        is_spam = self.trained_as_spam
        for ids, count in self.encode(classifier.table):
            classifier.unlearn_ids_repeated(ids, is_spam, count)

    def iter_emails(self, start_index: int = 0) -> Iterator[Email]:
        """Render every message in the batch as a real :class:`Email`."""
        index = start_index
        for group in self.groups:
            for _ in range(group.count):
                yield render_attack_email(
                    sorted(group.tokens),
                    msgid=f"attack-{self.attack_name}-{index:06d}",
                    header_source=group.header_source,
                )
                index += 1

    def __len__(self) -> int:
        return self.message_count

    def __getstate__(self) -> dict:
        # The encode cache stays process-local: shipping it would
        # duplicate the arrays next to their table in the pickle, and a
        # receiver encoding against a different table must re-intern.
        state = self.__dict__.copy()
        state["_encoded"] = None
        state["_encoded_table"] = None
        return state

    def __repr__(self) -> str:
        return (
            f"AttackBatch({self.attack_name!r}, messages={self.message_count}, "
            f"groups={len(self.groups)}, distinct_tokens={len(self.distinct_tokens)})"
        )


class Attack(abc.ABC):
    """Interface all attacks implement.

    An attack is a *message factory*: given a count and an RNG it emits
    the spam-labeled messages the adversary would send.  Attacks carry
    their Section 3.1 taxonomy coordinates for reporting.
    """

    name: str = "attack"

    @property
    @abc.abstractmethod
    def taxonomy(self) -> AttackTaxonomy:
        """Where this attack sits in the Section 3.1 taxonomy."""

    @property
    @abc.abstractmethod
    def header_policy(self) -> HeaderPolicy:
        """How attack emails obtain headers (Section 4.1 restriction)."""

    @abc.abstractmethod
    def generate(self, count: int, rng: random.Random) -> AttackBatch:
        """Produce ``count`` attack messages.

        Contract every implementation honours (and
        ``tests/test_attacks_base.py`` pins for each attack class):
        ``count == 0`` yields an **empty batch** — zero groups, zero
        messages, nothing drawn from ``rng`` beyond what batch
        construction needs — because a contamination sweep whose
        fractions include ``0.0`` (the clean-baseline point) computes
        an attack count of zero for it, and the
        :class:`AttackMessageGroup` invariant (``count >= 1``) forbids
        padding with zero-count groups.  Negative counts raise
        :class:`AttackError`.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
