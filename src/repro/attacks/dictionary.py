"""Indiscriminate dictionary attacks (Section 3.2).

All three variants inject spam-labeled emails whose body is a fixed,
huge word list; training on them raises the spam score of every listed
word, dragging future ham toward the unsure/spam bands.  They differ
only in the attacker's knowledge of the victim's word distribution:

* :class:`OptimalDictionaryAttack` — the Section 3.4 optimum under
  total ignorance modeled as "include every possible token".  In
  practice we instantiate it with the full vocabulary universe of the
  synthetic corpus (or any token set the caller supplies).
* :class:`AspellDictionaryAttack` — an English dictionary: formal
  words only, 98,568 entries at paper scale.
* :class:`UsenetDictionaryAttack` — the top-k words of a Usenet
  corpus: smaller, but covering colloquialisms real ham uses, hence
  stronger per Figure 1.

Every variant produces one :class:`AttackMessageGroup` with all
messages identical — which is what lets the harness train a 10%
contamination run in a single pass.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.attacks.base import Attack, AttackBatch, AttackMessageGroup
from repro.attacks.payload import HeaderPolicy
from repro.attacks.taxonomy import AttackTaxonomy
from repro.corpus.vocabulary import Vocabulary
from repro.corpus.wordlists import AttackWordlist, build_aspell_dictionary, build_usenet_wordlist
from repro.errors import AttackError

__all__ = [
    "DictionaryAttack",
    "OptimalDictionaryAttack",
    "AspellDictionaryAttack",
    "UsenetDictionaryAttack",
]


class DictionaryAttack(Attack):
    """Base class: inject identical emails containing ``words``."""

    def __init__(self, words: Iterable[str], name: str = "dictionary") -> None:
        self.tokens = frozenset(words)
        if not self.tokens:
            raise AttackError(f"dictionary attack {name!r} has no words")
        self.name = name

    @property
    def taxonomy(self) -> AttackTaxonomy:
        return AttackTaxonomy.dictionary()

    @property
    def header_policy(self) -> HeaderPolicy:
        return HeaderPolicy.EMPTY

    @property
    def dictionary_size(self) -> int:
        return len(self.tokens)

    def generate(self, count: int, rng: random.Random) -> AttackBatch:
        """``count`` identical attack messages as one group.

        ``rng`` is unused — dictionary attacks are deterministic — but
        stays in the signature so all attacks are interchangeable.
        """
        if count < 0:
            raise AttackError(f"attack count must be >= 0, got {count}")
        if count == 0:
            return AttackBatch(self.name, [])
        return AttackBatch(self.name, [AttackMessageGroup(tokens=self.tokens, count=count)])


class OptimalDictionaryAttack(DictionaryAttack):
    """The optimal Indiscriminate attack of Section 3.4.

    Under a uniform prior over future email, the expected-spam-score
    maximizer includes *all possible words*.  That ideal is infeasible
    over real text but simulable here: the synthetic universe is finite
    and known, so "all possible words" is exactly
    ``vocabulary.all_words()``.
    """

    def __init__(self, words: Iterable[str], name: str = "optimal") -> None:
        super().__init__(words, name)

    @classmethod
    def from_vocabulary(cls, vocabulary: Vocabulary) -> "OptimalDictionaryAttack":
        return cls(vocabulary.all_words())


class AspellDictionaryAttack(DictionaryAttack):
    """Dictionary attack from the (synthetic) GNU Aspell word list."""

    def __init__(self, wordlist: AttackWordlist) -> None:
        if wordlist.name.split("-")[0] != "aspell":
            raise AttackError(
                f"AspellDictionaryAttack expects an aspell wordlist, got {wordlist.name!r}"
            )
        super().__init__(wordlist.words, name="aspell")
        self.wordlist = wordlist

    @classmethod
    def from_vocabulary(cls, vocabulary: Vocabulary) -> "AspellDictionaryAttack":
        return cls(build_aspell_dictionary(vocabulary))


class UsenetDictionaryAttack(DictionaryAttack):
    """Dictionary attack from the top-k Usenet corpus words.

    ``top_k`` trades email size against coverage (Section 3.2's
    "smaller emails without losing much effectiveness"); benchmark
    E-A1 sweeps it.
    """

    def __init__(self, wordlist: AttackWordlist, top_k: int | None = None) -> None:
        if wordlist.name.split("-")[0] != "usenet":
            raise AttackError(
                f"UsenetDictionaryAttack expects a usenet wordlist, got {wordlist.name!r}"
            )
        if top_k is not None:
            wordlist = wordlist.truncated(top_k)
        super().__init__(wordlist.words, name=wordlist.name)
        self.wordlist = wordlist

    @classmethod
    def from_vocabulary(
        cls, vocabulary: Vocabulary, top_k: int | None = None, seed: int = 0
    ) -> "UsenetDictionaryAttack":
        return cls(build_usenet_wordlist(vocabulary, seed=seed), top_k=top_k)
