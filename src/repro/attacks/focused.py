"""The focused attack (Section 3.3): Causative Targeted Availability.

The attacker knows (part of) a specific future ham email — say, a
competitor's bid — and sends spam-labeled attack emails containing the
words they believe it will contain.  Training on those emails inflates
the spam score of exactly the target's tokens, so the target lands in
the spam or unsure folder while the rest of the victim's mail is
barely disturbed.

Knowledge is modeled per the paper's experiments: the attacker guesses
each token of the target independently with probability ``p``
(Figure 2 sweeps p ∈ {0.1, 0.3, 0.5, 0.9}).  The guess is made *once*
per attack — it represents what the attacker knows, so all attack
emails share the same guessed word set — while each email wears the
header block of a different randomly chosen real spam (Section 4.1).

Only *body* tokens are guessable: the attacker knows the message text,
not the header path it will take.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.attacks.base import Attack, AttackBatch, AttackMessageGroup
from repro.attacks.payload import HeaderPolicy, choose_header_source
from repro.attacks.taxonomy import AttackTaxonomy
from repro.errors import AttackError
from repro.spambayes.message import Email
from repro.spambayes.tokenizer import Tokenizer, DEFAULT_TOKENIZER

__all__ = ["TargetKnowledge", "FocusedAttack"]


@dataclass(frozen=True)
class TargetKnowledge:
    """What the attacker ended up knowing about the target email."""

    target_tokens: frozenset[str]
    guessed_tokens: frozenset[str]
    guess_probability: float

    @property
    def guessed_fraction(self) -> float:
        """Fraction of target tokens actually guessed (≈ p in the mean)."""
        if not self.target_tokens:
            return 0.0
        return len(self.guessed_tokens) / len(self.target_tokens)


class FocusedAttack(Attack):
    """Inject spam containing guessed tokens of one target ham email."""

    def __init__(
        self,
        target: Email,
        guess_probability: float = 0.5,
        header_pool: Sequence[Email] = (),
        extra_words: Sequence[str] = (),
        tokenizer: Tokenizer = DEFAULT_TOKENIZER,
    ) -> None:
        """
        Parameters
        ----------
        target:
            The ham email the attacker wants filtered.
        guess_probability:
            Independent probability of knowing each target body token
            (1.0 = the paper's "knows the exact content" extreme).
        header_pool:
            Real spam messages whose headers attack emails will wear.
            Empty pool falls back to headerless attack emails.
        extra_words:
            Additional words the attacker mixes in ("the attack email
            may include additional words as well", Section 3.3).
        """
        if not 0.0 <= guess_probability <= 1.0:
            raise AttackError(
                f"guess_probability must be in [0, 1], got {guess_probability}"
            )
        self.name = "focused"
        self.target = target
        self.guess_probability = guess_probability
        self.header_pool = list(header_pool)
        self.extra_words = tuple(extra_words)
        self.tokenizer = tokenizer
        self._target_body_tokens = frozenset(tokenizer.tokenize_body(target.body))
        if not self._target_body_tokens:
            raise AttackError("focused attack target has no body tokens")

    @property
    def taxonomy(self) -> AttackTaxonomy:
        return AttackTaxonomy.focused()

    @property
    def header_policy(self) -> HeaderPolicy:
        return HeaderPolicy.RANDOM_SPAM if self.header_pool else HeaderPolicy.EMPTY

    @property
    def target_tokens(self) -> frozenset[str]:
        """The target's body token set (what the attacker tries to guess)."""
        return self._target_body_tokens

    def draw_knowledge(self, rng: random.Random) -> TargetKnowledge:
        """Sample the attacker's guess of the target's tokens."""
        p = self.guess_probability
        if p >= 1.0:
            guessed = self._target_body_tokens
        else:
            guessed = frozenset(
                token for token in sorted(self._target_body_tokens) if rng.random() < p
            )
        return TargetKnowledge(
            target_tokens=self._target_body_tokens,
            guessed_tokens=guessed,
            guess_probability=p,
        )

    def generate(self, count: int, rng: random.Random) -> AttackBatch:
        """``count`` attack emails sharing one guess, varying headers.

        With a header pool, each email becomes its own group (distinct
        stolen header tokens); without one, all emails are identical
        and collapse into a single group.
        """
        if count < 0:
            raise AttackError(f"attack count must be >= 0, got {count}")
        if count == 0:
            return AttackBatch(self.name, [])
        knowledge = self.draw_knowledge(rng)
        payload = frozenset(knowledge.guessed_tokens | set(self.extra_words))
        if not payload:
            # The attacker guessed nothing; attack emails still exist
            # (headers only) but carry no body payload.
            payload = frozenset()
        if not self.header_pool:
            groups = [AttackMessageGroup(tokens=payload, count=count)] if payload else []
            return AttackBatch(self.name, groups)
        groups = []
        for _ in range(count):
            source = choose_header_source(self.header_pool, rng)
            header_tokens = frozenset(self.tokenizer.tokenize_headers(source))
            groups.append(
                AttackMessageGroup(
                    tokens=payload,
                    count=1,
                    header_tokens=header_tokens,
                    header_source=source,
                )
            )
        return AttackBatch(self.name, groups)
