"""Good-word attacks: the Exploratory/Integrity quadrant.

The paper's taxonomy (Section 3.1) spans more than its own two
attacks.  Its related work (Section 6) contrasts them with the classic
*Exploratory Integrity* attacks — Lowd & Meek's "good word attacks"
and Wittel & Wu's common-word padding — where the adversary does NOT
touch training, but pads spam with hammy words so it slips past the
trained filter as a false negative.

Implementing that quadrant here serves two purposes: it completes the
taxonomy as runnable code, and it gives the defenses benchmarks an
Integrity-attack baseline to contrast with the paper's Availability
attacks (RONI, for instance, is a *training-time* gate and has no
purchase on an attack that never trains).

Two knowledge models are provided, mirroring Lowd & Meek:

* :class:`CommonWordGoodWordAttack` — *blind*: pad with words the
  attacker guesses are common in legitimate mail (e.g. a frequency-
  ranked word source), no filter access needed (Wittel & Wu).
* :class:`OracleGoodWordAttack` — *query access*: the attacker can ask
  the deployed filter for token scores (or infer them through
  classification queries) and picks the hammiest known tokens first
  (Lowd & Meek's setting, idealized to direct score queries).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.attacks.taxonomy import AttackTaxonomy, Influence, SecurityViolation, Specificity
from repro.errors import AttackError
from repro.spambayes.classifier import Classifier
from repro.spambayes.message import Email
from repro.spambayes.tokenizer import Tokenizer, DEFAULT_TOKENIZER

__all__ = [
    "GoodWordResult",
    "CommonWordGoodWordAttack",
    "OracleGoodWordAttack",
    "GOODWORD_TAXONOMY",
]

GOODWORD_TAXONOMY = AttackTaxonomy(
    Influence.EXPLORATORY, SecurityViolation.INTEGRITY, Specificity.TARGETED
)
"""Good-word attacks probe a fixed filter to sneak specific spam in."""


@dataclass(frozen=True)
class GoodWordResult:
    """One padded spam message and its bookkeeping."""

    original: Email
    padded: Email
    added_words: tuple[str, ...]

    @property
    def word_cost(self) -> int:
        """How many words the attacker had to add."""
        return len(self.added_words)


def _pad_email(original: Email, words: Sequence[str]) -> Email:
    """Append the good words as an extra paragraph of the body."""
    if not words:
        return original
    padding = " ".join(words)
    body = f"{original.body}\n\n{padding}" if original.body else padding
    return Email(body=body, headers=list(original.headers), msgid=original.msgid)


class CommonWordGoodWordAttack:
    """Pad spam with words presumed common in legitimate email.

    The attacker holds an ordered word source (most-promising first,
    e.g. a Usenet frequency list) and no access to the victim's filter.
    """

    name = "goodword-common"

    def __init__(self, word_source: Iterable[str]) -> None:
        self.words = tuple(word_source)
        if not self.words:
            raise AttackError("good-word attack needs a non-empty word source")

    @property
    def taxonomy(self) -> AttackTaxonomy:
        return GOODWORD_TAXONOMY

    def pad(self, spam: Email, word_count: int, rng: random.Random | None = None) -> GoodWordResult:
        """Pad ``spam`` with ``word_count`` words from the source head.

        ``rng`` (optional) samples from the head with some spread so
        repeated attack emails are not byte-identical; deterministic
        head-take when omitted.
        """
        if word_count < 0:
            raise AttackError(f"word_count must be >= 0, got {word_count}")
        if word_count == 0:
            return GoodWordResult(spam, spam, ())
        if rng is None:
            chosen = self.words[:word_count]
        else:
            head = self.words[: max(word_count * 4, word_count)]
            chosen = tuple(rng.sample(head, min(word_count, len(head))))
        return GoodWordResult(spam, _pad_email(spam, chosen), tuple(chosen))


class OracleGoodWordAttack:
    """Pad spam with the hammiest tokens the oracle reveals.

    Models a Lowd-&-Meek attacker who can learn token scores from the
    deployed filter.  ``candidate_words`` bounds the attacker's
    querying budget: only those words are scored and ranked.
    """

    name = "goodword-oracle"

    def __init__(
        self,
        classifier: Classifier,
        candidate_words: Iterable[str],
        tokenizer: Tokenizer = DEFAULT_TOKENIZER,
    ) -> None:
        self.classifier = classifier
        self.tokenizer = tokenizer
        candidates = set(candidate_words)
        if not candidates:
            raise AttackError("oracle good-word attack needs candidate words")
        # Rank by spam score ascending: the best good word is the one
        # the filter considers most hammy. Unknown words score 0.5 and
        # are useless (δ(E) drops them), so they sort to the middle.
        self._ranked = sorted(candidates, key=lambda w: (classifier.spam_prob(w), w))

    @property
    def taxonomy(self) -> AttackTaxonomy:
        return GOODWORD_TAXONOMY

    @property
    def ranked_words(self) -> list[str]:
        return list(self._ranked)

    def pad(self, spam: Email, word_count: int) -> GoodWordResult:
        """Pad ``spam`` with the ``word_count`` hammiest known words."""
        if word_count < 0:
            raise AttackError(f"word_count must be >= 0, got {word_count}")
        chosen = tuple(self._ranked[:word_count])
        return GoodWordResult(spam, _pad_email(spam, chosen), chosen)

    def words_to_evade(self, spam: Email, max_words: int = 1_000, step: int = 10) -> GoodWordResult | None:
        """Smallest padding (within ``max_words``) that flips the filter
        away from a spam verdict; None when the budget is insufficient.

        This is the Lowd-&-Meek cost metric: "how many good words does
        this spam need?".
        """
        spam_cutoff = self.classifier.options.spam_cutoff
        for count in range(0, max_words + 1, step):
            result = self.pad(spam, count)
            score = self.classifier.score(self.tokenizer.tokenize(result.padded))
            if score <= spam_cutoff:
                return result
        return None
