"""Ham-labeled contamination: the paper's Section 2.2 extension.

The paper restricts its attacks to spam-labeled training data and
notes that this is "a restriction and not a necessary condition ...
using ham-labeled attack emails could enable more powerful attacks
that place spam in a user's inbox."  This module implements that
extension as a *Causative Integrity* attack so the claim is testable:

the attacker arranges for messages full of spam vocabulary to be
trained as **ham** — e.g. by sending borderline messages a user
rescues from the spam folder, or abusing an organization's
train-on-everything pipeline with spoofed internal mail.  Every
spam-typical token's score is dragged down, and future spam slides
under the ham threshold as false negatives.

The mechanics mirror :class:`~repro.attacks.dictionary.DictionaryAttack`
with the label flipped, so the same batching machinery applies; the
batch's ``trained_as_spam = False`` keeps callers from accidentally
training it as spam.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.attacks.base import AttackBatch, AttackMessageGroup
from repro.attacks.payload import HeaderPolicy
from repro.attacks.taxonomy import AttackTaxonomy, Influence, SecurityViolation, Specificity
from repro.corpus.vocabulary import Vocabulary
from repro.errors import AttackError

__all__ = ["HamLabeledAttack", "HamLabeledBatch", "HAMLABELED_TAXONOMY"]

HAMLABELED_TAXONOMY = AttackTaxonomy(
    Influence.CAUSATIVE, SecurityViolation.INTEGRITY, Specificity.INDISCRIMINATE
)
"""Poisons training to create false negatives across all spam."""


class HamLabeledBatch(AttackBatch):
    """An attack batch whose messages are trained as *ham*.

    Flipping :attr:`~repro.attacks.base.AttackBatch.trained_as_spam`
    redirects every training path — ``train_into``/``untrain_from`` and
    their ``*_ids`` twins — to the ham label.
    """

    trained_as_spam = False


class HamLabeledAttack:
    """Inject ham-labeled messages carrying spam vocabulary.

    ``words`` is the vocabulary to whitewash — typically the spam-
    typical tokens the attacker wants the filter to forgive (their own
    product names, obfuscations, campaign wording).
    """

    name = "ham-labeled"

    def __init__(self, words: Iterable[str], name: str = "ham-labeled") -> None:
        self.tokens = frozenset(words)
        if not self.tokens:
            raise AttackError("ham-labeled attack needs a non-empty word set")
        self.name = name

    @property
    def taxonomy(self) -> AttackTaxonomy:
        return HAMLABELED_TAXONOMY

    @property
    def header_policy(self) -> HeaderPolicy:
        return HeaderPolicy.EMPTY

    @classmethod
    def from_vocabulary(cls, vocabulary: Vocabulary) -> "HamLabeledAttack":
        """Whitewash every spam-typical token of the universe."""
        return cls(
            list(vocabulary.spam_shared) + list(vocabulary.spam_unlisted),
            name="ham-labeled-spamvocab",
        )

    def generate(self, count: int, rng: random.Random) -> HamLabeledBatch:
        """``count`` identical ham-labeled messages as one group."""
        if count < 0:
            raise AttackError(f"attack count must be >= 0, got {count}")
        if count == 0:
            return HamLabeledBatch(self.name, [])
        return HamLabeledBatch(
            self.name, [AttackMessageGroup(tokens=self.tokens, count=count)]
        )
