"""The common optimal-attack framework of Section 3.4.

The dictionary and focused attacks are two points on a knowledge
spectrum.  Formally: the attacker holds a distribution ``p`` over the
victim's next email — ``p_w`` is the probability that word ``w``
appears in it — and wants the attack email ``a`` maximizing the
expected post-training spam score ``E_{m~p}[I_a(m)]``.

The paper's two observations make the optimum easy to characterize:

1. token scores don't interact — adding word ``w`` to the attack never
   changes ``f(u)`` for ``u != w`` (Equations 1-2 touch only ``w``'s
   own counts), and
2. ``I`` is monotonically non-decreasing in every ``f(w)``.

Hence more words never hurt, and under a *budget* of ``n`` attack
tokens the optimum is simply the ``n`` words with the largest ``p_w``.
The extremes recover the paper's attacks:

* ``p`` uniform over all emails → include everything → dictionary
  attack;
* ``p`` an indicator of one known target → include the target's words
  → focused attack.

:class:`EmpiricalHamDistribution` sits between the extremes: it
estimates ``p_w`` from a sample of ham the attacker has seen (the
"distribution of words in English text" refinement the paper leaves to
future work), and :func:`optimal_attack_tokens` turns any distribution
plus a budget into a concrete attack payload.  Benchmark E-A1 uses it
to show the knowledge/size trade-off.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping, Protocol

from repro.attacks.dictionary import DictionaryAttack
from repro.corpus.dataset import Dataset
from repro.errors import AttackError
from repro.spambayes.message import Email
from repro.spambayes.tokenizer import Tokenizer, DEFAULT_TOKENIZER

__all__ = [
    "TokenDistribution",
    "ExplicitTokenDistribution",
    "EmpiricalHamDistribution",
    "TargetIndicatorDistribution",
    "optimal_attack_tokens",
    "budgeted_attack",
]


class TokenDistribution(Protocol):
    """Attacker's belief: per-word appearance probability ``p_w``."""

    def probability(self, word: str) -> float:
        """P[word appears in the victim's next email]."""
        ...

    def ranked_words(self) -> list[tuple[str, float]]:
        """All known words, highest probability first."""
        ...


@dataclass(frozen=True)
class ExplicitTokenDistribution:
    """A distribution given directly as a mapping."""

    probabilities: Mapping[str, float]

    def probability(self, word: str) -> float:
        return self.probabilities.get(word, 0.0)

    def ranked_words(self) -> list[tuple[str, float]]:
        return sorted(self.probabilities.items(), key=lambda item: (-item[1], item[0]))


class EmpiricalHamDistribution:
    """``p_w`` estimated from ham the attacker managed to observe.

    ``p_w`` = fraction of observed ham messages containing ``w``.
    Header tokens are excluded — the attacker cannot inject them, so
    they are never useful payload.
    """

    def __init__(self, sample: Iterable[Email] | Dataset, tokenizer: Tokenizer = DEFAULT_TOKENIZER) -> None:
        document_frequency: Counter[str] = Counter()
        count = 0
        for item in sample:
            email = item.email if hasattr(item, "email") else item
            tokens = frozenset(tokenizer.tokenize_body(email.body))
            document_frequency.update(tokens)
            count += 1
        if count == 0:
            raise AttackError("EmpiricalHamDistribution needs at least one sample email")
        self._probabilities = {
            word: occurrences / count for word, occurrences in document_frequency.items()
        }
        self.sample_size = count

    def probability(self, word: str) -> float:
        return self._probabilities.get(word, 0.0)

    def ranked_words(self) -> list[tuple[str, float]]:
        return sorted(self._probabilities.items(), key=lambda item: (-item[1], item[0]))

    def __len__(self) -> int:
        return len(self._probabilities)


@dataclass(frozen=True)
class TargetIndicatorDistribution:
    """The focused-attack extreme: ``p_w = 1`` iff ``w`` is in the target."""

    target_tokens: frozenset[str]

    @classmethod
    def from_email(
        cls, target: Email, tokenizer: Tokenizer = DEFAULT_TOKENIZER
    ) -> "TargetIndicatorDistribution":
        return cls(frozenset(tokenizer.tokenize_body(target.body)))

    def probability(self, word: str) -> float:
        return 1.0 if word in self.target_tokens else 0.0

    def ranked_words(self) -> list[tuple[str, float]]:
        return [(word, 1.0) for word in sorted(self.target_tokens)]


def optimal_attack_tokens(distribution: TokenDistribution, budget: int | None = None) -> frozenset[str]:
    """The optimal attack payload under a token budget.

    By the Section 3.4 monotonicity argument the optimum keeps the
    ``budget`` highest-probability words (all words when unbudgeted).
    Words with ``p_w = 0`` are never included — they cannot raise the
    expected score of any email the attacker believes possible.
    """
    ranked = [(word, p) for word, p in distribution.ranked_words() if p > 0.0]
    if budget is not None:
        if budget < 1:
            raise AttackError(f"budget must be >= 1, got {budget}")
        ranked = ranked[:budget]
    if not ranked:
        raise AttackError("distribution assigns zero probability to every word")
    return frozenset(word for word, _ in ranked)


def budgeted_attack(
    distribution: TokenDistribution,
    budget: int | None = None,
    name: str = "informed",
) -> DictionaryAttack:
    """Package :func:`optimal_attack_tokens` as a runnable attack."""
    return DictionaryAttack(optimal_attack_tokens(distribution, budget), name=name)
