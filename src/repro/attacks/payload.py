"""Rendering attack payloads as real emails.

Section 4.1 restricts the attacker's header control: dictionary
attacks use an *empty header*, and the focused attack reuses *the
entire header of a randomly selected spam email*.  This module encodes
those two policies and turns a token payload into a deliverable
:class:`Email`.
"""

from __future__ import annotations

import enum
import random
from typing import Sequence

from repro.errors import AttackError
from repro.spambayes.message import Email

__all__ = ["HeaderPolicy", "render_attack_email", "choose_header_source"]

_LINE_WIDTH = 72


class HeaderPolicy(enum.Enum):
    """How an attack email's header block is produced."""

    EMPTY = "empty"
    """No headers at all — the dictionary-attack setting."""

    RANDOM_SPAM = "random-spam"
    """Copy the full header block of a randomly chosen real spam —
    the focused-attack setting."""


def choose_header_source(spam_pool: Sequence[Email], rng: random.Random) -> Email:
    """Pick the spam message whose headers an attack email will wear."""
    if not spam_pool:
        raise AttackError("header policy RANDOM_SPAM needs a non-empty spam pool")
    return rng.choice(spam_pool)


def render_attack_email(
    payload_words: Sequence[str],
    msgid: str,
    header_source: Email | None = None,
) -> Email:
    """Materialize an attack message from its payload words.

    The body is simply the payload words wrapped to 72 columns — the
    paper's attack emails are word soup by construction.  When
    ``header_source`` is given its header block is copied verbatim
    (RANDOM_SPAM policy); otherwise the email has no headers (EMPTY).
    """
    lines: list[str] = []
    current: list[str] = []
    width = 0
    for word in payload_words:
        if width + len(word) + 1 > _LINE_WIDTH and current:
            lines.append(" ".join(current))
            current, width = [], 0
        current.append(word)
        width += len(word) + 1
    if current:
        lines.append(" ".join(current))
    headers = list(header_source.iter_headers()) if header_source is not None else []
    return Email(body="\n".join(lines), headers=headers, msgid=msgid)
