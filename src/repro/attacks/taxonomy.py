"""The attack taxonomy of Section 3.1 (Barreno et al. 2006).

Attacks on machine learning systems are categorized along three axes:

Influence
    *Causative* attacks manipulate training data; *Exploratory* attacks
    only probe a fixed classifier.

Security violation
    *Integrity* attacks create false negatives (spam slips through);
    *Availability* attacks create false positives (ham is filtered).

Specificity
    *Targeted* attacks degrade the classifier on one particular kind of
    email; *Indiscriminate* attacks degrade it broadly.

The paper's two attacks are both Causative Availability attacks —
dictionary attacks are Indiscriminate, the focused attack is Targeted.
Keeping the taxonomy as data (rather than prose) lets tests assert
each attack's position and lets reports label results consistently.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Influence", "SecurityViolation", "Specificity", "AttackTaxonomy"]


class Influence(enum.Enum):
    CAUSATIVE = "causative"
    EXPLORATORY = "exploratory"


class SecurityViolation(enum.Enum):
    INTEGRITY = "integrity"
    AVAILABILITY = "availability"


class Specificity(enum.Enum):
    TARGETED = "targeted"
    INDISCRIMINATE = "indiscriminate"


@dataclass(frozen=True, slots=True)
class AttackTaxonomy:
    """One attack's coordinates along the three axes."""

    influence: Influence
    violation: SecurityViolation
    specificity: Specificity

    def describe(self) -> str:
        """Human-readable phrase, e.g. "Causative Availability attack
        (Indiscriminate)"."""
        return (
            f"{self.influence.value.capitalize()} "
            f"{self.violation.value.capitalize()} attack "
            f"({self.specificity.value.capitalize()})"
        )

    @classmethod
    def dictionary(cls) -> "AttackTaxonomy":
        """Coordinates of the Section 3.2 dictionary attacks."""
        return cls(Influence.CAUSATIVE, SecurityViolation.AVAILABILITY, Specificity.INDISCRIMINATE)

    @classmethod
    def focused(cls) -> "AttackTaxonomy":
        """Coordinates of the Section 3.3 focused attack."""
        return cls(Influence.CAUSATIVE, SecurityViolation.AVAILABILITY, Specificity.TARGETED)
