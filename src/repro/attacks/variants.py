"""The named attack-variant catalogue.

Every experiment that sweeps "a grid of attacks" used to hand-roll its
own variant builder — the Figure 1 driver knew three dictionary
attacks, the RONI driver knew seven, and adding a variant meant
editing every builder.  This module is the single catalogue: a variant
*name* (the string a scenario's attack grid declares) maps to a
constructor over the experiment's corpus context.

Variants
--------

``optimal``
    Every token of the vocabulary universe (Section 3.4's optimum).
``usenet`` / ``usenet-half`` / ``usenet-quarter`` / ``usenet-tenth``
    The frequency-ranked Usenet wordlist, optionally truncated to the
    top 1/2, 1/4 or 1/10 of its entries (the RONI evaluation's
    unnamed "variants of the dictionary attacks").
``aspell``
    The synthetic English dictionary.
``informed``
    A budgeted attack drawn from the empirical ham distribution
    (:func:`repro.attacks.knowledge.budgeted_attack`); needs
    ``informed_budget``.
``focused``
    A :class:`~repro.attacks.focused.FocusedAttack` against the first
    ham message outside the experiment's pool, wearing headers stolen
    from the pool's spam; needs ``pool``.  This is what lets gate- and
    threshold-style scenarios cross with the targeted attack.

Construction is deterministic given ``(corpus, seed)`` (plus the pool
for ``focused``), so builders can run in any order — or in any worker
process — and produce identical attacks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.attacks.base import Attack
from repro.attacks.dictionary import (
    AspellDictionaryAttack,
    OptimalDictionaryAttack,
    UsenetDictionaryAttack,
)
from repro.attacks.focused import FocusedAttack
from repro.attacks.knowledge import EmpiricalHamDistribution, budgeted_attack
from repro.errors import AttackError

if TYPE_CHECKING:
    from repro.corpus.dataset import Dataset
    from repro.corpus.trec import TrecStyleCorpus

__all__ = ["KNOWN_VARIANTS", "build_attack_variants"]

_USENET_TRUNCATIONS = {
    "usenet-half": 2,
    "usenet-quarter": 4,
    "usenet-tenth": 10,
}

KNOWN_VARIANTS: tuple[str, ...] = (
    "optimal",
    "usenet",
    "usenet-half",
    "usenet-quarter",
    "usenet-tenth",
    "aspell",
    "informed",
    "focused",
)
"""Every variant name :func:`build_attack_variants` accepts."""


def _focused_from_pool(corpus: "TrecStyleCorpus", pool: "Dataset") -> FocusedAttack:
    """The cross-product focused attack: target the first ham message
    the pool has *not* trained on, steal headers from the pool's spam."""
    pool_ids = {message.msgid for message in pool}
    target = next(
        (m for m in corpus.dataset.ham if m.msgid not in pool_ids), None
    )
    if target is None:
        raise AttackError("focused variant needs a ham message outside the pool")
    return FocusedAttack(
        target.email,
        guess_probability=0.5,
        header_pool=[message.email for message in pool.spam],
    )


def build_attack_variants(
    corpus: "TrecStyleCorpus",
    variants: Sequence[str],
    seed: int = 0,
    informed_budget: int = 1_000,
    pool: "Dataset | None" = None,
) -> dict[str, Attack]:
    """Instantiate the named attack variants for ``corpus``, in order.

    ``seed`` feeds the Usenet frequency ranking; ``informed_budget``
    sizes the ``informed`` variant; ``pool`` provides the trained-inbox
    context the ``focused`` variant needs.  Unknown names raise
    :class:`AttackError` listing the catalogue.
    """
    attacks: dict[str, Attack] = {}
    usenet: UsenetDictionaryAttack | None = None

    def _usenet() -> UsenetDictionaryAttack:
        nonlocal usenet
        if usenet is None:
            usenet = UsenetDictionaryAttack.from_vocabulary(corpus.vocabulary, seed=seed)
        return usenet

    for variant in variants:
        if variant in attacks:
            raise AttackError(f"attack variant {variant!r} requested twice")
        if variant == "optimal":
            attacks[variant] = OptimalDictionaryAttack.from_vocabulary(corpus.vocabulary)
        elif variant == "usenet":
            attacks[variant] = _usenet()
        elif variant in _USENET_TRUNCATIONS:
            full = _usenet().wordlist
            attacks[variant] = UsenetDictionaryAttack(
                full, top_k=len(full) // _USENET_TRUNCATIONS[variant]
            )
        elif variant == "aspell":
            attacks[variant] = AspellDictionaryAttack.from_vocabulary(corpus.vocabulary)
        elif variant == "informed":
            distribution = EmpiricalHamDistribution(
                (message.email for message in corpus.dataset.ham[:200])
            )
            attacks[variant] = budgeted_attack(distribution, budget=informed_budget)
        elif variant == "focused":
            if pool is None:
                raise AttackError("attack variant 'focused' needs the experiment pool")
            attacks[variant] = _focused_from_pool(corpus, pool)
        else:
            raise AttackError(
                f"unknown attack variant {variant!r}; known: {', '.join(KNOWN_VARIANTS)}"
            )
    return attacks
