"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro table1
    python -m repro figure1 --scale small --seed 3
    python -m repro figure2 figure3 roni
    python -m repro all --out results/

Each command runs the corresponding experiment driver, prints the
rendered artifact (data table + ASCII figure), and — with ``--out`` —
also writes the text and a machine-readable JSON record.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable

from repro.experiments.dictionary_exp import (
    DictionaryExperimentConfig,
    run_dictionary_experiment,
)
from repro.experiments.focused_exp import (
    FocusedExperimentConfig,
    run_focused_knowledge_experiment,
    run_focused_size_experiment,
)
from repro.experiments.reporting import (
    render_dictionary_result,
    render_focused_knowledge_result,
    render_focused_size_result,
    render_roni_result,
    render_table1,
    render_threshold_result,
)
from repro.experiments.results import save_record
from repro.experiments.roni_exp import RoniExperimentConfig, run_roni_experiment
from repro.experiments.threshold_exp import (
    ThresholdExperimentConfig,
    run_threshold_experiment,
)

__all__ = ["main", "ARTIFACTS"]


def _dictionary_config(scale: str, seed: int) -> DictionaryExperimentConfig:
    if scale == "paper":
        return DictionaryExperimentConfig.paper_scale(seed=seed)
    return DictionaryExperimentConfig(
        inbox_size=1_000, folds=3, corpus_ham=700, corpus_spam=700, seed=seed
    )


def _focused_config(scale: str, seed: int) -> FocusedExperimentConfig:
    if scale == "paper":
        return FocusedExperimentConfig.paper_scale(seed=seed)
    return FocusedExperimentConfig(
        inbox_size=1_000,
        n_targets=10,
        repetitions=2,
        attack_count=60,
        corpus_ham=700,
        corpus_spam=700,
        seed=seed,
    )


def _roni_config(scale: str, seed: int) -> RoniExperimentConfig:
    if scale == "paper":
        return RoniExperimentConfig(
            pool_size=1_000,
            n_nonattack_spam=120,
            repetitions_per_variant=15,
            corpus_ham=1_200,
            corpus_spam=1_200,
            seed=seed,
        )
    return RoniExperimentConfig(
        pool_size=400,
        n_nonattack_spam=60,
        repetitions_per_variant=6,
        corpus_ham=400,
        corpus_spam=400,
        seed=seed,
    )


def _threshold_config(scale: str, seed: int) -> ThresholdExperimentConfig:
    if scale == "paper":
        return ThresholdExperimentConfig.paper_scale(seed=seed)
    return ThresholdExperimentConfig(
        inbox_size=1_000, folds=3, corpus_ham=700, corpus_spam=700, seed=seed
    )


def _run_table1(scale: str, seed: int):
    return None, render_table1(), None


def _run_figure1(scale: str, seed: int):
    result = run_dictionary_experiment(_dictionary_config(scale, seed))
    return result, render_dictionary_result(result), result.to_record()


def _run_figure2(scale: str, seed: int):
    result = run_focused_knowledge_experiment(_focused_config(scale, seed))
    return result, render_focused_knowledge_result(result), result.to_record()


def _run_figure3(scale: str, seed: int):
    result = run_focused_size_experiment(_focused_config(scale, seed))
    return result, render_focused_size_result(result), result.to_record()


def _run_roni(scale: str, seed: int):
    result = run_roni_experiment(_roni_config(scale, seed))
    return result, render_roni_result(result), result.to_record()


def _run_figure5(scale: str, seed: int):
    result = run_threshold_experiment(_threshold_config(scale, seed))
    return result, render_threshold_result(result), result.to_record()


ARTIFACTS: dict[str, Callable] = {
    "table1": _run_table1,
    "figure1": _run_figure1,
    "figure2": _run_figure2,
    "figure3": _run_figure3,
    "roni": _run_roni,
    "figure5": _run_figure5,
}
"""Artifact name -> runner. ("figure4" panels are produced by
``benchmarks/bench_figure4_token_shift.py`` and the focused-attack
example; they need no sweep, only a rendered analysis.)"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts from 'Exploiting Machine Learning "
        "to Subvert Your Spam Filter' (Nelson et al., 2008).",
    )
    parser.add_argument(
        "artifacts",
        nargs="+",
        choices=sorted(ARTIFACTS) + ["all"],
        help="which paper artifacts to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=("small", "paper"),
        default="small",
        help="small = 1/10-scale (default, ~minutes); paper = Table 1 sizes",
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed")
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory for .txt artifacts and .json records",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    names = sorted(ARTIFACTS) if "all" in args.artifacts else list(dict.fromkeys(args.artifacts))
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    for name in names:
        runner = ARTIFACTS[name]
        print(f"=== {name} (scale={args.scale}, seed={args.seed}) ===")
        _, text, record = runner(args.scale, args.seed)
        print(text)
        print()
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
            if record is not None:
                save_record(record, args.out / f"{name}.json")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
