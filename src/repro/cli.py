"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro table1
    python -m repro figure1 --scale small --seed 3
    python -m repro figure2 figure3 roni
    python -m repro figure1 --workers 4
    python -m repro all --out results/

Each command runs the corresponding experiment driver, prints the
rendered artifact (data table + ASCII figure), and — with ``--out`` —
also writes the text and a machine-readable JSON record.

``--workers N`` fans the experiment's independent units (folds,
repetitions, targets) out over N processes through
:mod:`repro.engine`; ``0`` means one per CPU.  Results — text and
JSON — are identical at any worker count.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable

from repro.engine.runner import resolve_workers
from repro.errors import EngineError
from repro.experiments.dictionary_exp import (
    DictionaryExperimentConfig,
    run_dictionary_experiment,
)
from repro.experiments.focused_exp import (
    FocusedExperimentConfig,
    run_focused_knowledge_experiment,
    run_focused_size_experiment,
)
from repro.experiments.reporting import (
    render_dictionary_result,
    render_focused_knowledge_result,
    render_focused_size_result,
    render_roni_result,
    render_table1,
    render_threshold_result,
)
from repro.experiments.results import save_record
from repro.experiments.roni_exp import RoniExperimentConfig, run_roni_experiment
from repro.experiments.threshold_exp import (
    ThresholdExperimentConfig,
    run_threshold_experiment,
)

__all__ = ["main", "ARTIFACTS"]


def _dictionary_config(scale: str, seed: int, workers: int = 1) -> DictionaryExperimentConfig:
    factory = (
        DictionaryExperimentConfig.paper_scale
        if scale == "paper"
        else DictionaryExperimentConfig.small_scale
    )
    return factory(seed=seed, workers=workers)


def _focused_config(scale: str, seed: int, workers: int = 1) -> FocusedExperimentConfig:
    factory = (
        FocusedExperimentConfig.paper_scale
        if scale == "paper"
        else FocusedExperimentConfig.small_scale
    )
    return factory(seed=seed, workers=workers)


def _roni_config(scale: str, seed: int, workers: int = 1) -> RoniExperimentConfig:
    factory = (
        RoniExperimentConfig.paper_scale if scale == "paper" else RoniExperimentConfig.small_scale
    )
    return factory(seed=seed, workers=workers)


def _threshold_config(scale: str, seed: int, workers: int = 1) -> ThresholdExperimentConfig:
    factory = (
        ThresholdExperimentConfig.paper_scale
        if scale == "paper"
        else ThresholdExperimentConfig.small_scale
    )
    return factory(seed=seed, workers=workers)


def _run_table1(scale: str, seed: int, workers: int = 1):
    return None, render_table1(), None


def _run_figure1(scale: str, seed: int, workers: int = 1):
    result = run_dictionary_experiment(_dictionary_config(scale, seed, workers))
    return result, render_dictionary_result(result), result.to_record()


def _run_figure2(scale: str, seed: int, workers: int = 1):
    result = run_focused_knowledge_experiment(_focused_config(scale, seed, workers))
    return result, render_focused_knowledge_result(result), result.to_record()


def _run_figure3(scale: str, seed: int, workers: int = 1):
    result = run_focused_size_experiment(_focused_config(scale, seed, workers))
    return result, render_focused_size_result(result), result.to_record()


def _run_roni(scale: str, seed: int, workers: int = 1):
    result = run_roni_experiment(_roni_config(scale, seed, workers))
    return result, render_roni_result(result), result.to_record()


def _run_figure5(scale: str, seed: int, workers: int = 1):
    result = run_threshold_experiment(_threshold_config(scale, seed, workers))
    return result, render_threshold_result(result), result.to_record()


ARTIFACTS: dict[str, Callable] = {
    "table1": _run_table1,
    "figure1": _run_figure1,
    "figure2": _run_figure2,
    "figure3": _run_figure3,
    "roni": _run_roni,
    "figure5": _run_figure5,
}
"""Artifact name -> runner. ("figure4" panels are produced by
``benchmarks/bench_figure4_token_shift.py`` and the focused-attack
example; they need no sweep, only a rendered analysis.)"""


def _workers_arg(value: str) -> int:
    # Delegate to the engine's own validation so the CLI can't drift
    # from what ParallelRunner accepts; argparse needs its error type.
    try:
        resolve_workers(int(value))
    except EngineError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return int(value)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts from 'Exploiting Machine Learning "
        "to Subvert Your Spam Filter' (Nelson et al., 2008).",
    )
    parser.add_argument(
        "artifacts",
        nargs="+",
        choices=sorted(ARTIFACTS) + ["all"],
        help="which paper artifacts to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=("small", "paper"),
        default="small",
        help="small = 1/10-scale (default, ~minutes); paper = Table 1 sizes",
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed")
    parser.add_argument(
        "--workers",
        type=_workers_arg,
        default=1,
        help="worker processes for the experiment engine "
        "(default 1 = sequential, 0 = one per CPU; results are "
        "identical at any value)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory for .txt artifacts and .json records",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    names = sorted(ARTIFACTS) if "all" in args.artifacts else list(dict.fromkeys(args.artifacts))
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    for name in names:
        runner = ARTIFACTS[name]
        print(f"=== {name} (scale={args.scale}, seed={args.seed}) ===")
        _, text, record = runner(args.scale, args.seed, args.workers)
        print(text)
        print()
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
            if record is not None:
                save_record(record, args.out / f"{name}.json")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
