"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro table1
    python -m repro figure1 --scale small --seed 3
    python -m repro figure2 figure3 roni
    python -m repro figure1 --workers 4
    python -m repro all --out results/
    python -m repro list-scenarios
    python -m repro run-scenario focused-vs-roni --set pool_size=200
    python -m repro replicate dictionary-vs-none --seeds 8 --workers 4

Each artifact command runs the corresponding experiment driver, prints
the rendered artifact (data table + ASCII figure), and — with
``--out`` — also writes the text and a machine-readable JSON record.

``list-scenarios`` prints the declarative scenario registry
(:mod:`repro.scenarios`); ``run-scenario <name>`` executes any
registered scenario through the generic executor, with ``--set
key=value`` overriding individual config fields (values are parsed as
Python literals, e.g. ``--set "attack_fractions=(0.0, 0.05)"``, with a
plain-string fallback).

``replicate <name> --seeds N`` runs a scenario at N derived root seeds
through :func:`repro.scenarios.replicate_scenario` and prints the
pooled error-bar table (per-x mean, std and 95% CI over seeds for
every rate).  With ``--workers N`` the (seed × spec × fold) work
flattens into one shared worker pool; the output — and the ``--out``
JSON record — is byte-identical at any worker count and any
``PYTHONHASHSEED``.

``--workers N`` fans the experiment's independent units (folds,
repetitions, targets) out over N processes through
:mod:`repro.engine`; ``0`` means one per CPU.  Results — text and
JSON — are identical at any worker count.

``--timeout SECONDS`` / ``--retries N`` (on ``run-scenario`` and
``replicate``) activate the engine's supervision layer
(:mod:`repro.engine.supervise`): wedged workers are killed at the
deadline, crashed pools are respawned and unfinished chunks retried,
and after N rounds the run degrades to in-process execution rather
than dying — with identical results on every path.  ``replicate
--resume DIR`` checkpoints each replica record into ``DIR`` as it
completes and loads completed replicas on restart, so a killed
replication resumes where it stopped with byte-identical pooled
output.  ``gc`` reclaims every orphaned scratch resource left by
killed runs — shared-memory segments in ``/dev/shm`` plus on-disk
storage-backend directories (``repro_store_*``); ``gc-shm`` is the
segments-only subset.

Engine and experiment failures exit with a one-line ``error: ...``
diagnostic and status 2 — never a traceback.
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import json
import sys
from pathlib import Path
from typing import Any, Callable

from repro.engine.runner import resolve_workers
from repro.errors import EngineError, ReproError, ScenarioError
from repro.experiments.dictionary_exp import (
    DictionaryExperimentConfig,
    run_dictionary_experiment,
)
from repro.experiments.focused_exp import (
    FocusedExperimentConfig,
    run_focused_knowledge_experiment,
    run_focused_size_experiment,
)
from repro.experiments.reporting import (
    render_dictionary_result,
    render_focused_knowledge_result,
    render_focused_size_result,
    render_roni_result,
    render_stream_result,
    render_table1,
    render_threshold_result,
)
from repro.experiments.results import save_record
from repro.experiments.roni_exp import RoniExperimentConfig, run_roni_experiment
from repro.experiments.threshold_exp import (
    ThresholdExperimentConfig,
    run_threshold_experiment,
)

__all__ = ["main", "ARTIFACTS", "SCENARIO_COMMANDS"]


def _dictionary_config(scale: str, seed: int, workers: int = 1) -> DictionaryExperimentConfig:
    factory = (
        DictionaryExperimentConfig.paper_scale
        if scale == "paper"
        else DictionaryExperimentConfig.small_scale
    )
    return factory(seed=seed, workers=workers)


def _focused_config(scale: str, seed: int, workers: int = 1) -> FocusedExperimentConfig:
    factory = (
        FocusedExperimentConfig.paper_scale
        if scale == "paper"
        else FocusedExperimentConfig.small_scale
    )
    return factory(seed=seed, workers=workers)


def _roni_config(scale: str, seed: int, workers: int = 1) -> RoniExperimentConfig:
    factory = (
        RoniExperimentConfig.paper_scale if scale == "paper" else RoniExperimentConfig.small_scale
    )
    return factory(seed=seed, workers=workers)


def _threshold_config(scale: str, seed: int, workers: int = 1) -> ThresholdExperimentConfig:
    factory = (
        ThresholdExperimentConfig.paper_scale
        if scale == "paper"
        else ThresholdExperimentConfig.small_scale
    )
    return factory(seed=seed, workers=workers)


def _run_table1(scale: str, seed: int, workers: int = 1):
    return None, render_table1(), None


def _run_figure1(scale: str, seed: int, workers: int = 1):
    result = run_dictionary_experiment(_dictionary_config(scale, seed, workers))
    return result, render_dictionary_result(result), result.to_record()


def _run_figure2(scale: str, seed: int, workers: int = 1):
    result = run_focused_knowledge_experiment(_focused_config(scale, seed, workers))
    return result, render_focused_knowledge_result(result), result.to_record()


def _run_figure3(scale: str, seed: int, workers: int = 1):
    result = run_focused_size_experiment(_focused_config(scale, seed, workers))
    return result, render_focused_size_result(result), result.to_record()


def _run_roni(scale: str, seed: int, workers: int = 1):
    result = run_roni_experiment(_roni_config(scale, seed, workers))
    return result, render_roni_result(result), result.to_record()


def _run_figure5(scale: str, seed: int, workers: int = 1):
    result = run_threshold_experiment(_threshold_config(scale, seed, workers))
    return result, render_threshold_result(result), result.to_record()


ARTIFACTS: dict[str, Callable] = {
    "table1": _run_table1,
    "figure1": _run_figure1,
    "figure2": _run_figure2,
    "figure3": _run_figure3,
    "roni": _run_roni,
    "figure5": _run_figure5,
}
"""Artifact name -> runner. ("figure4" panels are produced by
``benchmarks/bench_figure4_token_shift.py`` and the focused-attack
example; they need no sweep, only a rendered analysis.)"""


SCENARIO_COMMANDS: tuple[str, ...] = (
    "list-scenarios",
    "run-scenario",
    "replicate",
    "serve",
    "gc",
    "gc-shm",
)
"""Non-artifact subcommands, dispatched ahead of artifact parsing."""

_SCENARIO_RENDERERS: dict[str, Callable] = {
    "dictionary-sweep": render_dictionary_result,
    "focused-knowledge": render_focused_knowledge_result,
    "focused-size": render_focused_size_result,
    "roni-gate": render_roni_result,
    "stream": render_stream_result,
    "threshold-arms": render_threshold_result,
}
"""Protocol -> ASCII renderer; protocols without one print the JSON
record."""


def _parse_override(assignment: str) -> tuple[str, Any]:
    """One ``--set key=value`` pair; values are Python literals when
    they parse as one (ints, floats, tuples, booleans), else strings.

    Raises :class:`ScenarioError` (inside the commands' error-handling
    envelope, so a malformed ``--set`` gets the same clean ``error:``
    diagnostic and exit code as an unknown scenario — never an
    argparse usage dump or a traceback).
    """
    key, separator, raw = assignment.partition("=")
    key = key.strip()
    if not separator or not key:
        raise ScenarioError(f"--set needs key=value, got {assignment!r}")
    try:
        value: Any = ast.literal_eval(raw.strip())
    except (ValueError, SyntaxError):
        value = raw.strip()
    return key, value


def _parse_overrides(assignments: list[str]) -> dict[str, Any]:
    """All ``--set`` pairs of one invocation, last one per key winning."""
    return dict(_parse_override(assignment) for assignment in assignments)


def _add_supervision_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="deadline for each parallel dispatch wave; chunks that miss "
        "it have their workers killed and are retried on a fresh pool",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="respawn-and-retry rounds on worker crash/timeout before the "
        "run degrades to in-process sequential execution (results are "
        "identical on every recovery path)",
    )


def _supervision_policy(args) -> Any:
    """The supervision policy an invocation asked for, or the ambient
    one (env: ``REPRO_TIMEOUT``/``REPRO_RETRIES``/``REPRO_FAULTS``)
    when no flag was given.  ``None`` means unsupervised."""
    from repro.engine import supervise

    if args.timeout is None and args.retries is None:
        return supervise.current_policy()
    base = supervise.policy_from_env() or supervise.SupervisePolicy()
    return supervise.SupervisePolicy(
        timeout=base.timeout if args.timeout is None else args.timeout,
        retries=base.retries if args.retries is None else args.retries,
        degrade=base.degrade,
    )


def build_run_scenario_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro run-scenario",
        description="Execute a registered scenario through the generic "
        "executor (see 'repro list-scenarios' for the catalogue).",
    )
    parser.add_argument("name", help="registered scenario name")
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override one config field (repeatable); values parse as "
        "Python literals with a plain-string fallback; for seed/workers "
        "a --set entry wins over the dedicated flag",
    )
    parser.add_argument(
        "--scale",
        choices=("small", "paper"),
        default="small",
        help="small = the config's defaults; paper = the config's "
        "paper_scale() factory (when it defines one)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed")
    parser.add_argument(
        "--workers",
        type=_workers_arg,
        default=1,
        help="worker processes for the experiment engine "
        "(default 1 = sequential, 0 = one per CPU)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory for the .txt artifact and .json record",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="collect and print per-tick phase timings (stream "
        "scenarios only); pure observation — the scenario's record "
        "is byte-identical with or without it",
    )
    _add_supervision_args(parser)
    return parser


def _main_list_scenarios() -> int:
    from repro.scenarios import list_scenarios

    specs = list_scenarios()
    width = max(len(spec.name) for spec in specs)
    for spec in specs:
        print(f"{spec.name:<{width}}  {spec.describe()}")
    print(f"\n{len(specs)} scenarios registered "
          "(run one with: python -m repro run-scenario <name>)")
    return 0


def _paper_scale_config(spec, overrides: dict, *, seed: int, workers: int) -> Any:
    """The ``--scale paper`` config: the config type's ``paper_scale()``
    factory, with the spec's defaults and the user's overrides applied
    on top.  Shared by ``run-scenario`` and ``replicate``."""
    factory = getattr(spec.config_type, "paper_scale", None)
    if factory is None:
        raise ScenarioError(
            f"scenario {spec.name!r} has no paper-scale configuration "
            f"({spec.config_type.__name__} defines no paper_scale())"
        )
    base = factory(seed=seed, workers=workers)
    return dataclasses.replace(base, **{**dict(spec.defaults), **overrides})


def _scenario_config(spec, args) -> Any:
    """Materialize the config a ``run-scenario`` invocation asked for."""
    overrides = _parse_overrides(args.overrides)
    # Validated up front on every path, so a typo in --set gets the
    # registry's field listing, never a raw dataclass TypeError.
    spec.validate_overrides(overrides)
    if args.scale == "paper":
        config = _paper_scale_config(
            spec, overrides, seed=args.seed, workers=args.workers
        )
    else:
        merged = dict(overrides)
        merged.setdefault("seed", args.seed)
        merged.setdefault("workers", args.workers)
        config = spec.build_config(**merged)
    # The configs don't type-check seed/workers themselves, and a
    # string from --set would surface as a deep TypeError mid-run.
    if not isinstance(config.seed, int):
        raise ScenarioError(f"seed must be an integer, got {config.seed!r}")
    try:
        resolve_workers(config.workers)
    except TypeError:
        raise ScenarioError(
            f"workers must be an integer >= 0, got {config.workers!r}"
        ) from None
    if getattr(args, "profile", False):
        field_names = {field.name for field in dataclasses.fields(config)}
        if "profile_phases" not in field_names:
            raise ScenarioError(
                f"scenario {spec.name!r} does not support --profile "
                f"({type(config).__name__} has no profile_phases field; "
                "phase profiling is a stream-scenario feature)"
            )
        config = dataclasses.replace(config, profile_phases=True)
    return config


def _main_run_scenario(argv: list[str]) -> int:
    from repro.scenarios import get_scenario, run_scenario

    from repro.engine import supervise

    args = build_run_scenario_parser().parse_args(argv)
    try:
        spec = get_scenario(args.name)
        config = _scenario_config(spec, args)
        print(f"=== scenario {spec.name} (scale={args.scale}, seed={config.seed}) ===")
        with supervise.use_supervision(_supervision_policy(args)):
            outcome = run_scenario(spec, config=config)
    except ReproError as exc:
        # Covers bad names/overrides and execution-time experiment
        # errors (e.g. a --set size the corpus cannot satisfy) — user
        # input mistakes get a diagnostic, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    renderer = _SCENARIO_RENDERERS.get(spec.protocol)
    text = (
        renderer(outcome.result)
        if renderer is not None
        else json.dumps(outcome.record_dict(), indent=2, sort_keys=True)
    )
    profile = getattr(outcome.result, "phase_profile", None)
    if args.profile and profile is not None:
        text = f"{text}\n\n{profile.render()}"
    print(text)
    if args.out is not None:
        try:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{spec.name}.txt").write_text(text + "\n", encoding="utf-8")
            if outcome.record is not None:
                save_record(outcome.record, args.out / f"{spec.name}.json")
        except OSError as exc:
            # The run succeeded; only the archive destination is bad.
            print(f"error: cannot write --out {args.out}: {exc}", file=sys.stderr)
            return 2
    return 0


def build_replicate_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro replicate",
        description="Run a registered scenario at N root seeds and pool "
        "the results with error bars (mean, std, 95% CI per curve point). "
        "Replica seeds derive from --seed; the record lists them, so any "
        "replica can be reproduced standalone with 'repro run-scenario'.",
    )
    parser.add_argument("name", help="registered scenario name")
    parser.add_argument(
        "--seeds",
        type=int,
        default=8,
        help="number of replica seeds to pool (default 8)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base seed the replica seeds derive from"
    )
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override one config field on every replica (repeatable); "
        "values parse as Python literals with a plain-string fallback",
    )
    parser.add_argument(
        "--scale",
        choices=("small", "paper"),
        default="small",
        help="small = the config's defaults; paper = the config's "
        "paper_scale() factory (when it defines one)",
    )
    parser.add_argument(
        "--workers",
        type=_workers_arg,
        default=1,
        help="shared worker-pool size; the (seed x spec x fold) tasks of "
        "all replicas flatten into it (default 1 = sequential, 0 = one "
        "per CPU; output is identical at any value)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="file for the pooled JSON record (byte-identical across "
        "runs, worker counts and hash seeds)",
    )
    parser.add_argument(
        "--resume",
        type=Path,
        default=None,
        metavar="DIR",
        help="checkpoint directory: each replica record is saved there "
        "as it completes, and completed replicas are loaded instead of "
        "re-run — a killed replication resumes with byte-identical "
        "pooled output",
    )
    _add_supervision_args(parser)
    return parser


def _main_replicate(argv: list[str]) -> int:
    from repro.scenarios import get_scenario, replicate_scenario

    args = build_replicate_parser().parse_args(argv)
    try:
        if args.seeds < 1:
            raise ScenarioError(f"--seeds must be >= 1, got {args.seeds}")
        spec = get_scenario(args.name)
        overrides = _parse_overrides(args.overrides)
        # seed/workers are replication-owned here: each replica's config
        # gets its derived seed and the pool's worker count.
        for reserved in ("seed", "workers"):
            if reserved in overrides:
                raise ScenarioError(
                    f"--set {reserved}=... conflicts with replication; "
                    f"use --{reserved} instead"
                )
        spec.validate_overrides(overrides)
        base_config = None
        # The record must carry everything needed to re-run a replica
        # standalone: the scale, and — on the paper path, where the
        # overrides are folded into base_config — the overrides too.
        extra_config = {"scale": args.scale}
        if args.scale == "paper":
            # seed/workers are placeholders — replication replaces both
            # per replica.
            base_config = _paper_scale_config(spec, overrides, seed=0, workers=1)
            extra_config["overrides"] = dict(sorted(overrides.items()))
            overrides = {}
        print(
            f"=== replicate {spec.name} (scale={args.scale}, seeds={args.seeds}, "
            f"base_seed={args.seed}) ==="
        )
        from repro.engine import supervise

        with supervise.use_supervision(_supervision_policy(args)):
            record = replicate_scenario(
                spec,
                seeds=args.seeds,
                base_seed=args.seed,
                overrides=overrides or None,
                workers=args.workers,
                base_config=base_config,
                extra_config=extra_config,
                checkpoint_dir=None if args.resume is None else str(args.resume),
            )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    from repro.experiments.reporting import render_replicated_record

    print(render_replicated_record(record))
    if args.out is not None:
        try:
            if args.out.parent != Path("."):
                args.out.parent.mkdir(parents=True, exist_ok=True)
            save_record(record, args.out)
        except OSError as exc:
            print(f"error: cannot write --out {args.out}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {args.out}")
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the always-on filter service: a long-lived "
        "daemon scoring and training one live classifier over a "
        "length-prefixed JSON protocol (verbs: score, train, feedback, "
        "snapshot, stats, shutdown).  Concurrent score requests are "
        "coalesced into bulk kernel calls; training serializes through "
        "a single writer task.  Kernel and storage backend follow "
        "REPRO_KERNEL / REPRO_STORE, exactly as library calls do.",
    )
    parser.add_argument(
        "--socket",
        metavar="PATH",
        default=None,
        help="listen on a Unix domain socket at PATH (exactly one of "
        "--socket / --port)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="N",
        help="listen on TCP port N (0 = let the OS pick; the bound "
        "port is announced on stdout)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for --port mode (default loopback)",
    )
    parser.add_argument(
        "--batch-window",
        type=float,
        default=None,
        metavar="MS",
        help="micro-batch coalescing window in milliseconds: score "
        "requests arriving within it share one bulk kernel call "
        "(default 2.0; 0 disables batching entirely)",
    )
    parser.add_argument(
        "--workers",
        type=_workers_arg,
        default=1,
        metavar="N",
        help="score batches through a supervised pool of N worker "
        "processes (default 1 = in-process, 0 = one per CPU; scores "
        "are identical at any value)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=None,
        metavar="N",
        help="cap on messages per coalesced bulk call (default 256)",
    )
    _add_supervision_args(parser)
    return parser


def _main_serve(argv: list[str]) -> int:
    import threading

    from repro.engine import supervise
    from repro.serve.service import (
        DEFAULT_BATCH_WINDOW_MS,
        DEFAULT_MAX_BATCH,
        FilterService,
        ServeConfig,
    )

    args = build_serve_parser().parse_args(argv)
    try:
        config = ServeConfig(
            socket_path=args.socket,
            port=args.port,
            host=args.host,
            batch_window_ms=(
                DEFAULT_BATCH_WINDOW_MS
                if args.batch_window is None
                else args.batch_window
            ),
            workers=args.workers,
            max_batch=DEFAULT_MAX_BATCH if args.max_batch is None else args.max_batch,
        )
        service = FilterService(config)

        def _announce() -> None:
            # The bound address exists only after the loop binds it;
            # port 0 callers (the benchmark driver) parse this line.
            service.ready.wait()
            if service.startup_error is None and service.address is not None:
                address = service.address
                if isinstance(address, tuple):
                    print(f"serving on {address[0]}:{address[1]}", flush=True)
                else:
                    print(f"serving on {address}", flush=True)

        threading.Thread(target=_announce, daemon=True).start()
        with supervise.use_supervision(_supervision_policy(args)):
            service.run()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 130
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def build_gc_shm_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro gc-shm",
        description="Reclaim repro shared-memory segments orphaned in "
        "/dev/shm — segments whose publishing process no longer exists "
        "(it was SIGKILLed, so its cleanup never ran).",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="also unlink segments whose publisher is still alive (for "
        "wedged runs you have already decided to kill; live runs using "
        "those segments will fail)",
    )
    return parser


def _main_gc_shm(argv: list[str]) -> int:
    from repro.engine import sharedmem

    args = build_gc_shm_parser().parse_args(argv)
    try:
        reclaimed = sharedmem.gc_segments(include_live=args.all)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for name in reclaimed:
        print(f"unlinked /dev/shm/{name}")
    print(f"{len(reclaimed)} segment(s) reclaimed")
    return 0


def build_gc_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro gc",
        description="Reclaim every orphaned repro resource left by "
        "killed processes: shared-memory segments under /dev/shm and "
        "on-disk storage-backend directories (repro_store_*) under "
        "REPRO_STORE_DIR or the system tempdir.  A resource is "
        "orphaned when the pid baked into its name no longer runs.",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="also reclaim resources whose owner is still alive (for "
        "wedged runs you have already decided to kill; live runs "
        "using them will fail)",
    )
    return parser


def _main_gc(argv: list[str]) -> int:
    from repro import storage
    from repro.engine import sharedmem

    args = build_gc_parser().parse_args(argv)
    try:
        segments = sharedmem.gc_segments(include_live=args.all)
        stores = storage.gc_stores(include_live=args.all)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for name in segments:
        print(f"unlinked /dev/shm/{name}")
    for path in stores:
        print(f"removed {path}")
    print(f"{len(segments)} segment(s) and {len(stores)} store(s) reclaimed")
    return 0


def _workers_arg(value: str) -> int:
    # Delegate to the engine's own validation so the CLI can't drift
    # from what ParallelRunner accepts; argparse needs its error type.
    try:
        resolve_workers(int(value))
    except EngineError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return int(value)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts from 'Exploiting Machine Learning "
        "to Subvert Your Spam Filter' (Nelson et al., 2008).",
        epilog="Beyond the paper artifacts: 'repro list-scenarios' prints "
        "the declarative scenario registry and 'repro run-scenario <name> "
        "[--set key=value ...]' executes any registered scenario.",
    )
    parser.add_argument(
        "artifacts",
        nargs="+",
        choices=sorted(ARTIFACTS) + ["all"],
        help="which paper artifacts to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=("small", "paper"),
        default="small",
        help="small = 1/10-scale (default, ~minutes); paper = Table 1 sizes",
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed")
    parser.add_argument(
        "--workers",
        type=_workers_arg,
        default=1,
        help="worker processes for the experiment engine "
        "(default 1 = sequential, 0 = one per CPU; results are "
        "identical at any value)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory for .txt artifacts and .json records",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Scenario subcommands dispatch before artifact parsing: they have
    # their own grammar (a scenario name is not an artifact choice).
    if argv and argv[0] == "list-scenarios":
        return _main_list_scenarios()
    if argv and argv[0] == "run-scenario":
        return _main_run_scenario(argv[1:])
    if argv and argv[0] == "replicate":
        return _main_replicate(argv[1:])
    if argv and argv[0] == "serve":
        return _main_serve(argv[1:])
    if argv and argv[0] == "gc":
        return _main_gc(argv[1:])
    if argv and argv[0] == "gc-shm":
        return _main_gc_shm(argv[1:])
    args = build_parser().parse_args(argv)
    names = sorted(ARTIFACTS) if "all" in args.artifacts else list(dict.fromkeys(args.artifacts))
    try:
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
        for name in names:
            runner = ARTIFACTS[name]
            print(f"=== {name} (scale={args.scale}, seed={args.seed}) ===")
            _, text, record = runner(args.scale, args.seed, args.workers)
            print(text)
            print()
            if args.out is not None:
                (args.out / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
                if record is not None:
                    save_record(record, args.out / f"{name}.json")
    except ReproError as exc:
        # Engine failures (worker crashes past the retry budget, map
        # deadlines, lost segments) and experiment errors alike: one
        # diagnostic line and a nonzero exit, never a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
