"""Synthetic email corpus substrate.

The paper evaluates on the TREC 2005 spam corpus (92,189 Enron-derived
emails) and builds attack dictionaries from the GNU Aspell word list
and a Usenet corpus.  None of those are redistributable here, so this
package generates a *deterministic synthetic equivalent* that preserves
every property the attacks exercise — see DESIGN.md §4 for the
substitution argument.

Layers, bottom to top:

* :mod:`repro.corpus.vocabulary` — the word universe, partitioned into
  slices (shared core, formal-only, colloquial-only, topics, entities)
  whose dictionary membership is controlled;
* :mod:`repro.corpus.wordlists` — the attacker's word sources: a
  synthetic Aspell dictionary and a frequency-ranked Usenet list;
* :mod:`repro.corpus.language_model` — Zipfian unigram mixtures for
  ham and spam text;
* :mod:`repro.corpus.generator` — full :class:`Email` synthesis with
  headers;
* :mod:`repro.corpus.dataset` — labeled datasets, folds, inbox
  sampling, token caching;
* :mod:`repro.corpus.trec` — the TREC-2005-style bundle used by the
  experiments (plus a loader for the real corpus when available);
* :mod:`repro.corpus.mbox` — mbox-style persistence;
* :mod:`repro.corpus.stats` — corpus statistics and coverage reports.
"""

from repro.corpus.dataset import Dataset, LabeledMessage
from repro.corpus.generator import EmailGenerator, GeneratorConfig
from repro.corpus.language_model import HamLanguageModel, SpamLanguageModel, ZipfSampler
from repro.corpus.trec import TrecStyleCorpus, TREC05_HAM_COUNT, TREC05_SPAM_COUNT
from repro.corpus.vocabulary import Vocabulary, VocabularyProfile, PAPER_PROFILE, SMALL_PROFILE
from repro.corpus.wordlists import AttackWordlist, build_aspell_dictionary, build_usenet_wordlist

__all__ = [
    "Dataset",
    "LabeledMessage",
    "EmailGenerator",
    "GeneratorConfig",
    "HamLanguageModel",
    "SpamLanguageModel",
    "ZipfSampler",
    "TrecStyleCorpus",
    "TREC05_HAM_COUNT",
    "TREC05_SPAM_COUNT",
    "Vocabulary",
    "VocabularyProfile",
    "PAPER_PROFILE",
    "SMALL_PROFILE",
    "AttackWordlist",
    "build_aspell_dictionary",
    "build_usenet_wordlist",
]
