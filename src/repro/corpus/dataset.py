"""Labeled datasets: the unit the experiment harness manipulates.

A :class:`Dataset` is an ordered collection of :class:`LabeledMessage`
objects with the operations the paper's protocol needs:

* *inbox sampling* — draw an N-message inbox with a given spam
  prevalence (Table 1's "training set size" and "spam prevalence"),
* *K-fold cross-validation* — partition into folds, yielding
  train/test pairs (Section 4.1),
* *token caching* — each message's token set is computed once and
  shared by every fold, repetition and attack sweep that touches it,
* *ID encoding* — against a shared
  :class:`~repro.spambayes.token_table.TokenTable`, each message's
  token set is interned once into a sorted token-ID ``array``
  (:meth:`LabeledMessage.token_ids`); the classifier's ``*_ids``
  methods and the sweep engine's workers consume these directly, so no
  string is hashed in any training or scoring loop.

Datasets are cheap views: folds and samples share the underlying
``LabeledMessage`` objects (and therefore the token and ID caches).
"""

from __future__ import annotations

import random
from array import array
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import CorpusError
from repro.spambayes.message import Email
from repro.spambayes.token_table import TokenTable
from repro.spambayes.tokenizer import Tokenizer, DEFAULT_TOKENIZER

__all__ = ["LabeledMessage", "StoredMessage", "Dataset", "store_message"]


@dataclass(slots=True)
class LabeledMessage:
    """One email with its gold label, a cached token set and a cached
    token-ID encoding."""

    email: Email
    is_spam: bool
    _tokens: frozenset[str] | None = field(default=None, repr=False)
    _token_ids: array | None = field(default=None, repr=False)
    _ids_table: TokenTable | None = field(default=None, repr=False, compare=False)

    @property
    def msgid(self) -> str:
        return self.email.msgid

    def tokens(self, tokenizer: Tokenizer = DEFAULT_TOKENIZER) -> frozenset[str]:
        """The message's token set, computed once and cached.

        The cache is keyed by nothing: all built-in experiments share
        one tokenizer configuration. Call :meth:`invalidate_tokens`
        first if you must re-tokenize with different options.
        """
        if self._tokens is None:
            self._tokens = frozenset(tokenizer.tokenize(self.email))
        return self._tokens

    def token_ids(self, table: TokenTable, tokenizer: Tokenizer = DEFAULT_TOKENIZER) -> array:
        """The message's sorted, duplicate-free token-ID array.

        Encoded once per ``table`` (identity-keyed cache) and then
        reused by every fold, attack batch and worker that scores or
        trains this message.  The table is append-only, so a cached
        encoding never goes stale — new vocabulary elsewhere cannot
        shift these IDs.
        """
        if self._token_ids is None or self._ids_table is not table:
            self._token_ids = table.encode_unique(self.tokens(tokenizer))
            self._ids_table = table
        return self._token_ids

    def invalidate_tokens(self) -> None:
        self._tokens = None
        self._token_ids = None
        self._ids_table = None


class StoredMessage:
    """A message whose encoded form lives in a backend message store.

    The disk-backed counterpart of :class:`LabeledMessage`, duck-typed
    to the same interface (``email``, ``is_spam``, ``msgid``,
    ``tokens``, ``token_ids``, ``invalidate_tokens``) so datasets,
    folds, the sweep engine and the stream runner handle both without
    branching.  The handle itself holds only ``(store, row, label)``:

    * ``token_ids(table)`` against the store's own ingest table is one
      row fetch — no tokenization, no interning, no retained cache;
      against any *other* table it decodes the stored IDs back to text
      and re-encodes, same result as the in-memory path;
    * ``tokens()`` decodes transiently and never caches — not caching
      is the point; the memory the in-memory path spends on token sets
      is exactly what the disk backend exists to avoid;
    * ``email`` is re-materialized on demand through ``email_loader``
      (synthetic corpora regenerate from the seed, file corpora
      re-read the source); stores do not retain bodies.

    Ingestion tokenizes once (see :func:`store_message`); handles
    assume the same tokenizer configuration, like every cache in this
    module.  Pickling materializes a plain :class:`LabeledMessage` —
    handles are process-local because their store connections are.
    """

    __slots__ = ("_store", "_row", "is_spam", "_email_loader")

    def __init__(self, store, row: int, is_spam: bool, email_loader=None) -> None:
        self._store = store
        self._row = row
        self.is_spam = is_spam
        self._email_loader = email_loader

    @property
    def msgid(self) -> str:
        return self._store.msgid(self._row)

    @property
    def email(self) -> Email:
        if self._email_loader is None:
            raise CorpusError(
                "message body was not retained by the message store "
                "and no loader was provided at ingest"
            )
        return self._email_loader()

    def tokens(self, tokenizer: Tokenizer = DEFAULT_TOKENIZER) -> frozenset[str]:
        store = self._store
        return frozenset(store.table.decode(store.ids(self._row)))

    def token_ids(self, table: TokenTable, tokenizer: Tokenizer = DEFAULT_TOKENIZER) -> array:
        if table is self._store.table:
            return self._store.ids(self._row)
        return table.encode_unique(self.tokens(tokenizer))

    def invalidate_tokens(self) -> None:
        """Nothing cached, nothing to invalidate (interface parity)."""

    def __reduce__(self):
        return (LabeledMessage, (self.email, self.is_spam))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StoredMessage(row={self._row}, is_spam={self.is_spam})"


def store_message(
    store,
    email: Email,
    is_spam: bool,
    tokenizer: Tokenizer = DEFAULT_TOKENIZER,
    email_loader=None,
) -> StoredMessage:
    """Ingest one message into a backend store, returning its handle.

    The streaming-ingestion primitive: tokenize, intern into the
    store's table (seed-stable batch order), append one row.  Nothing
    about the email is retained in RAM afterwards.
    """
    ids = store.table.encode_unique(frozenset(tokenizer.tokenize(email)))
    row = store.append(email.msgid, is_spam, ids)
    return StoredMessage(store, row, is_spam, email_loader=email_loader)


class Dataset:
    """An ordered, labeled message collection with sampling utilities."""

    def __init__(self, messages: Sequence[LabeledMessage], name: str = "dataset") -> None:
        self._messages = list(messages)
        self.name = name

    # ------------------------------------------------------------------
    # Basic container behaviour
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._messages)

    def __iter__(self) -> Iterator[LabeledMessage]:
        return iter(self._messages)

    def __getitem__(self, index: int) -> LabeledMessage:
        return self._messages[index]

    @property
    def messages(self) -> list[LabeledMessage]:
        return self._messages

    @property
    def ham(self) -> list[LabeledMessage]:
        return [m for m in self._messages if not m.is_spam]

    @property
    def spam(self) -> list[LabeledMessage]:
        return [m for m in self._messages if m.is_spam]

    @property
    def spam_fraction(self) -> float:
        if not self._messages:
            return 0.0
        return sum(1 for m in self._messages if m.is_spam) / len(self._messages)

    def counts(self) -> tuple[int, int]:
        """Return ``(n_ham, n_spam)``."""
        n_spam = sum(1 for m in self._messages if m.is_spam)
        return len(self._messages) - n_spam, n_spam

    # ------------------------------------------------------------------
    # Derived datasets
    # ------------------------------------------------------------------

    def subset(self, indices: Iterable[int], name: str | None = None) -> "Dataset":
        """View over the messages at ``indices`` (shared objects)."""
        return Dataset(
            [self._messages[i] for i in indices],
            name=name or f"{self.name}/subset",
        )

    def filtered(self, predicate: Callable[[LabeledMessage], bool]) -> "Dataset":
        return Dataset([m for m in self._messages if predicate(m)], name=f"{self.name}/filtered")

    def shuffled(self, rng: random.Random) -> "Dataset":
        order = list(range(len(self._messages)))
        rng.shuffle(order)
        return self.subset(order, name=f"{self.name}/shuffled")

    def sample_inbox(
        self,
        size: int,
        spam_fraction: float,
        rng: random.Random,
        name: str | None = None,
    ) -> "Dataset":
        """Draw an inbox of ``size`` messages at the given prevalence.

        Sampling is without replacement within each class; the class
        counts are ``round(size * spam_fraction)`` spam and the rest
        ham, matching the paper's "N-message inbox with 50% spam".
        """
        if not 0.0 <= spam_fraction <= 1.0:
            raise CorpusError(f"spam_fraction must be in [0, 1], got {spam_fraction}")
        n_spam = round(size * spam_fraction)
        n_ham = size - n_spam
        ham_pool, spam_pool = self.ham, self.spam
        if n_ham > len(ham_pool):
            raise CorpusError(
                f"inbox needs {n_ham} ham but corpus has only {len(ham_pool)}"
            )
        if n_spam > len(spam_pool):
            raise CorpusError(
                f"inbox needs {n_spam} spam but corpus has only {len(spam_pool)}"
            )
        picked = rng.sample(ham_pool, n_ham) + rng.sample(spam_pool, n_spam)
        rng.shuffle(picked)
        return Dataset(picked, name=name or f"{self.name}/inbox{size}")

    def split(self, first_fraction: float, rng: random.Random) -> tuple["Dataset", "Dataset"]:
        """Random partition into two datasets (used by the threshold defense)."""
        if not 0.0 < first_fraction < 1.0:
            raise CorpusError(f"first_fraction must be in (0, 1), got {first_fraction}")
        order = list(range(len(self._messages)))
        rng.shuffle(order)
        cut = round(len(order) * first_fraction)
        return (
            self.subset(order[:cut], name=f"{self.name}/split-a"),
            self.subset(order[cut:], name=f"{self.name}/split-b"),
        )

    def k_fold_indices(
        self, k: int, rng: random.Random
    ) -> list[tuple[list[int], list[int]]]:
        """The ``k`` (train, test) partitions as index lists.

        This is what :meth:`k_folds` materializes; the sweep engine
        ships the index lists to worker processes instead of pickling
        one dataset view per fold.  Draws from ``rng`` exactly once
        (the shuffle), so seeding downstream of this call is identical
        whether folds are consumed lazily or planned up front.
        """
        if k < 2:
            raise CorpusError(f"k_folds needs k >= 2, got {k}")
        if k > len(self._messages):
            raise CorpusError(f"k={k} folds but only {len(self._messages)} messages")
        order = list(range(len(self._messages)))
        rng.shuffle(order)
        folds = [order[i::k] for i in range(k)]
        pairs = []
        for i in range(k):
            test_indices = folds[i]
            train_indices = [idx for j, fold in enumerate(folds) if j != i for idx in fold]
            pairs.append((train_indices, test_indices))
        return pairs

    def k_folds(
        self, k: int, rng: random.Random
    ) -> Iterator[tuple["Dataset", "Dataset"]]:
        """Yield ``k`` (train, test) cross-validation pairs.

        The shuffle happens once; fold ``i`` holds out the ``i``-th
        stripe as the test set, so every message serves as test data
        exactly once (Section 4.1).
        """
        for i, (train_indices, test_indices) in enumerate(self.k_fold_indices(k, rng)):
            yield (
                self.subset(train_indices, name=f"{self.name}/fold{i}-train"),
                self.subset(test_indices, name=f"{self.name}/fold{i}-test"),
            )

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------

    def tokenize_all(self, tokenizer: Tokenizer = DEFAULT_TOKENIZER) -> None:
        """Force-populate every message's token cache (bulk warm-up)."""
        for message in self._messages:
            message.tokens(tokenizer)

    def encode(
        self,
        table: TokenTable | None = None,
        tokenizer: Tokenizer = DEFAULT_TOKENIZER,
    ) -> TokenTable:
        """Encode every message into sorted token-ID arrays.

        Interns the dataset's whole vocabulary into ``table`` (a fresh
        one when omitted) and populates each message's
        :meth:`LabeledMessage.token_ids` cache.  Returns the table —
        hand it to ``Classifier(options, table=...)`` so the encoded
        arrays index straight into the classifier's count columns.
        """
        if table is None:
            # The backend decides where a fresh table lives (in-memory
            # TokenTable by default; SQLite-backed under
            # REPRO_STORE=disk).  Imported lazily: dataset is a leaf
            # module the storage package's consumers also import.
            from repro import storage

            table = storage.active_backend().new_token_table()
        for message in self._messages:
            message.token_ids(table, tokenizer)
        return table

    def encode_csr(
        self,
        table: TokenTable | None = None,
        tokenizer: Tokenizer = DEFAULT_TOKENIZER,
    ):
        """Encode the dataset as one contiguous CSR message matrix.

        Like :meth:`encode`, but additionally packs every message's ID
        array into a single :class:`~repro.spambayes.ndkernel.CsrMatrix`
        (indptr/indices over the whole dataset) — the layout the
        vectorized kernel scores without touching Python objects, and
        the one the shared-memory corpus transport publishes to worker
        processes.  Returns ``(table, matrix)``; ``matrix.row(i)`` is
        message ``i``'s sorted ID array, identical in content to
        :meth:`LabeledMessage.token_ids`.

        Requires NumPy; raises ``ConfigurationError`` otherwise (use
        :meth:`encode` for the array-per-message form).
        """
        from repro.spambayes import ndkernel

        if not ndkernel.available():
            from repro.errors import ConfigurationError

            raise ConfigurationError("encode_csr requires NumPy; use encode()")
        table = self.encode(table, tokenizer)
        matrix = ndkernel.CsrMatrix.from_rows(
            [message.token_ids(table, tokenizer) for message in self._messages]
        )
        return table, matrix

    def vocabulary(self, tokenizer: Tokenizer = DEFAULT_TOKENIZER) -> set[str]:
        """Union of all token sets in the dataset."""
        tokens: set[str] = set()
        for message in self._messages:
            tokens |= message.tokens(tokenizer)
        return tokens

    def __repr__(self) -> str:
        n_ham, n_spam = self.counts()
        return f"Dataset({self.name!r}, ham={n_ham}, spam={n_spam})"
