"""Full email synthesis: bodies from the language models, plus headers.

Headers matter to the threat model: the contamination assumption gives
the attacker control over *bodies only* (Section 2.2), and the
tokenizer emits header tokens under distinct prefixes, so legitimate
header vocabulary stays clean during attacks.  The generator therefore
produces realistic header blocks — sender addresses from per-class
domain pools, subjects drawn from the same language model as the body,
date/message-id plumbing — so that header evidence behaves the way it
does in the paper's TREC data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.rng import SeedSpawner
from repro.corpus.language_model import HamLanguageModel, SpamLanguageModel
from repro.corpus.vocabulary import Vocabulary
from repro.spambayes.message import Email

__all__ = ["GeneratorConfig", "EmailGenerator"]

_LINE_WIDTH = 72


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of email synthesis (shapes only; content comes from LMs)."""

    victim_address: str = "victim@corp.example.com"
    ham_domains: tuple[str, ...] = (
        "corp.example.com",
        "partners.example.net",
        "example-trading.com",
    )
    spam_domain_count: int = 120
    spam_url_probability: float = 0.6
    spam_money_probability: float = 0.4
    ham_signature_entities: int = 3
    subject_tokens: tuple[int, int] = (3, 7)
    topic_count: int = 40

    def __post_init__(self) -> None:
        if not 0.0 <= self.spam_url_probability <= 1.0:
            raise ConfigurationError("spam_url_probability must be in [0, 1]")
        if not 0.0 <= self.spam_money_probability <= 1.0:
            raise ConfigurationError("spam_money_probability must be in [0, 1]")
        low, high = self.subject_tokens
        if not 1 <= low <= high:
            raise ConfigurationError("subject_tokens must be an increasing pair >= 1")


class EmailGenerator:
    """Deterministic ham/spam :class:`Email` factory.

    ``ham_email(i)`` / ``spam_email(i)`` are pure functions of
    ``(vocabulary, config, seed, i)`` — message ``i`` is identical no
    matter how many siblings are generated or in what order, which is
    what makes fold/experiment resampling reproducible.
    """

    def __init__(
        self,
        vocabulary: Vocabulary,
        config: GeneratorConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.vocabulary = vocabulary
        self.config = config or GeneratorConfig()
        self.seed = seed
        self._spawner = SeedSpawner(seed).spawn("email-generator")
        self.ham_model = HamLanguageModel(vocabulary, topic_count=self.config.topic_count)
        self.spam_model = SpamLanguageModel(vocabulary)
        domain_rng = self._spawner.rng("spam-domains")
        entity_pool = vocabulary.entity or ("spamco",)
        self._spam_domains = tuple(
            f"{domain_rng.choice(entity_pool)}.{domain_rng.choice(('biz', 'info', 'net', 'com'))}"
            for _ in range(self.config.spam_domain_count)
        )

    # ------------------------------------------------------------------
    # Public factories
    # ------------------------------------------------------------------

    def ham_email(self, index: int) -> Email:
        """Generate ham message ``index``."""
        rng = self._spawner.rng(f"ham[{index}]")
        config = self.config
        tokens = self.ham_model.sample_body_tokens(rng)
        entities = [
            rng.choice(self.vocabulary.entity)
            for _ in range(config.ham_signature_entities)
        ] if self.vocabulary.entity else []
        body = self._render_body(rng, tokens + entities)
        sender_name = rng.choice(self.vocabulary.entity) if self.vocabulary.entity else "sender"
        sender = f"{sender_name}@{rng.choice(config.ham_domains)}"
        subject = " ".join(self._subject_tokens(rng, self.ham_model.base))
        headers = [
            ("From", sender),
            ("To", config.victim_address),
            ("Subject", subject),
            ("Date", self._date_header(rng)),
            ("Message-ID", f"<ham-{index}@{rng.choice(config.ham_domains)}>"),
            ("X-Mailer", rng.choice(("Outlook 9.0", "Evolution 1.4", "Mutt 1.5"))),
        ]
        return Email(body=body, headers=headers, msgid=f"ham-{index:06d}")

    def spam_email(self, index: int) -> Email:
        """Generate spam message ``index``."""
        rng = self._spawner.rng(f"spam[{index}]")
        config = self.config
        tokens = self.spam_model.sample_body_tokens(rng)
        extras: list[str] = []
        if rng.random() < config.spam_url_probability:
            host = rng.choice(self._spam_domains)
            path = rng.choice(("offer", "deal", "win", "free", "click"))
            extras.append(f"http://{host}/{path}{rng.randrange(100)}")
        if rng.random() < config.spam_money_probability:
            extras.append(f"${rng.randrange(10, 5000)}")
        body = self._render_body(rng, tokens + extras)
        domain = rng.choice(self._spam_domains)
        local = rng.choice(self.vocabulary.entity) if self.vocabulary.entity else "promo"
        subject = " ".join(self._subject_tokens(rng, self.spam_model.base))
        headers = [
            ("From", f"{local}@{domain}"),
            ("To", config.victim_address),
            ("Subject", subject),
            ("Date", self._date_header(rng)),
            ("Message-ID", f"<spam-{index}@{domain}>"),
        ]
        return Email(body=body, headers=headers, msgid=f"spam-{index:06d}")

    # ------------------------------------------------------------------
    # Pieces
    # ------------------------------------------------------------------

    def _subject_tokens(self, rng: random.Random, model) -> list[str]:
        low, high = self.config.subject_tokens
        return model.sample(rng, rng.randint(low, high))

    @staticmethod
    def _date_header(rng: random.Random) -> str:
        day = rng.randrange(1, 29)
        month = rng.choice(
            ("Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec")
        )
        hour, minute, second = rng.randrange(24), rng.randrange(60), rng.randrange(60)
        return f"{day} {month} 2005 {hour:02d}:{minute:02d}:{second:02d} -0000"

    @staticmethod
    def _render_body(rng: random.Random, tokens: list[str]) -> str:
        """Wrap tokens into text lines; adds light sentence dressing."""
        lines: list[str] = []
        current: list[str] = []
        width = 0
        for token in tokens:
            word = token
            if width + len(word) + 1 > _LINE_WIDTH and current:
                lines.append(" ".join(current))
                current, width = [], 0
            current.append(word)
            width += len(word) + 1
        if current:
            lines.append(" ".join(current))
        return "\n".join(lines)
