"""Zipfian unigram language models for ham and spam text.

The attacks operate on token statistics, so the corpus generator needs
language models with the right *statistical* shape rather than fluent
English:

* Zipf-distributed word frequencies — so every email carries a long
  tail of rare tokens.  This is load-bearing: dictionary attacks win by
  flipping exactly those rare tokens (their ham counts are small, so a
  few spam-labeled attack occurrences dominate Equation 1), and the
  focused attack identifies its target by them.
* Distinct but overlapping ham/spam mixtures — both draw mostly from
  the shared core, then diverge on topical, colloquial and obfuscated
  slices (see :mod:`repro.corpus.vocabulary`).
* Per-email *topic windows* in ham — business threads share jargon, so
  a focused attacker who knows the thread can guess rare tokens.

Both models are deterministic given (vocabulary, seed) and sample with
``random.choices`` against precomputed cumulative weights, which keeps
10k-message corpus generation in the seconds range.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Sequence

from repro.errors import ConfigurationError
from repro.corpus.vocabulary import Vocabulary

__all__ = ["ZipfSampler", "MixtureModel", "HamLanguageModel", "SpamLanguageModel"]


class ZipfSampler:
    """Samples words with probability ∝ 1/rank^exponent.

    The word order given at construction *is* the frequency ranking.
    """

    def __init__(self, words: Sequence[str], exponent: float = 1.05) -> None:
        if not words:
            raise ConfigurationError("ZipfSampler needs at least one word")
        if exponent < 0:
            raise ConfigurationError(f"Zipf exponent must be >= 0, got {exponent}")
        self.words = list(words)
        self.exponent = exponent
        weights = [1.0 / (rank + 1.0) ** exponent for rank in range(len(words))]
        self._cum_weights = list(itertools.accumulate(weights))
        self._total = self._cum_weights[-1]

    def sample(self, rng: random.Random, count: int) -> list[str]:
        """Draw ``count`` words i.i.d. from the Zipf distribution."""
        if count <= 0:
            return []
        return rng.choices(self.words, cum_weights=self._cum_weights, k=count)

    def probability(self, word: str) -> float:
        """Unigram probability of ``word`` (0.0 if not in this sampler)."""
        try:
            rank = self.words.index(word)
        except ValueError:
            return 0.0
        weight = 1.0 / (rank + 1.0) ** self.exponent
        return weight / self._total

    def __len__(self) -> int:
        return len(self.words)


class MixtureModel:
    """A weighted mixture of named :class:`ZipfSampler` components.

    Internally flattened into one cumulative-weight table so sampling a
    whole email body is a single ``random.choices`` call.
    """

    def __init__(self, components: Sequence[tuple[str, ZipfSampler, float]]) -> None:
        if not components:
            raise ConfigurationError("MixtureModel needs at least one component")
        total_weight = sum(weight for _, _, weight in components)
        if total_weight <= 0:
            raise ConfigurationError("mixture weights must sum to a positive value")
        self.components = list(components)
        self._population: list[str] = []
        cumulative: list[float] = []
        running = 0.0
        self._unigram: dict[str, float] = {}
        for _, sampler, weight in components:
            share = weight / total_weight
            for rank, word in enumerate(sampler.words):
                word_weight = share * (1.0 / (rank + 1.0) ** sampler.exponent) / sampler._total
                running += word_weight
                self._population.append(word)
                cumulative.append(running)
                self._unigram[word] = self._unigram.get(word, 0.0) + word_weight
        # Normalize the tail to exactly 1.0 to protect bisect edge cases.
        self._cum_weights = [value / running for value in cumulative]
        scale = 1.0 / running
        self._unigram = {word: p * scale for word, p in self._unigram.items()}

    def sample(self, rng: random.Random, count: int) -> list[str]:
        if count <= 0:
            return []
        return rng.choices(self._population, cum_weights=self._cum_weights, k=count)

    def unigram_probability(self, word: str) -> float:
        """Marginal probability of drawing ``word`` per token."""
        return self._unigram.get(word, 0.0)

    def inclusion_probability(self, word: str, length: int) -> float:
        """P[``word`` appears at least once in a ``length``-token email]."""
        p = self.unigram_probability(word)
        if p <= 0.0:
            return 0.0
        return 1.0 - (1.0 - p) ** length

    @property
    def vocabulary(self) -> set[str]:
        return set(self._unigram)


class _LengthModel:
    """Log-normal email length in tokens, clipped to a sane band."""

    def __init__(self, median: int, sigma: float, minimum: int, maximum: int) -> None:
        if not minimum <= median <= maximum:
            raise ConfigurationError(
                f"length model needs minimum <= median <= maximum, got "
                f"{minimum}/{median}/{maximum}"
            )
        self.median = median
        self.sigma = sigma
        self.minimum = minimum
        self.maximum = maximum

    def sample(self, rng: random.Random) -> int:
        length = int(round(math.exp(rng.gauss(math.log(self.median), self.sigma))))
        return max(self.minimum, min(self.maximum, length))


class HamLanguageModel:
    """Legitimate business email: core English + topical jargon.

    Each email belongs to one of ``topic_count`` threads; a slice of
    the ham-topic vocabulary is boosted for that thread, giving related
    emails shared rare jargon (the paper's "bid messages may even
    follow a common template").
    """

    def __init__(
        self,
        vocabulary: Vocabulary,
        topic_count: int = 40,
        length_median: int = 90,
        length_sigma: float = 0.55,
    ) -> None:
        if topic_count < 1:
            raise ConfigurationError(f"topic_count must be >= 1, got {topic_count}")
        self.vocabulary = vocabulary
        self.topic_count = topic_count
        self.lengths = _LengthModel(length_median, length_sigma, 20, 600)
        self.base = MixtureModel(
            [
                ("core", ZipfSampler(vocabulary.core, 1.05), 0.60),
                ("colloquial", ZipfSampler(vocabulary.colloquial, 1.10), 0.13),
                ("ham_topic", ZipfSampler(vocabulary.ham_topic, 0.90), 0.12),
                ("entity", ZipfSampler(vocabulary.entity, 0.80), 0.08),
                ("formal", ZipfSampler(vocabulary.formal, 1.20), 0.05),
                ("spam_shared", ZipfSampler(vocabulary.spam_shared, 1.00), 0.02),
            ]
        )
        # Partition ham_topic into per-thread jargon windows.
        words = list(vocabulary.ham_topic)
        window = max(1, len(words) // topic_count)
        self._topic_samplers = [
            ZipfSampler(words[i * window : (i + 1) * window] or words[:window], 0.7)
            for i in range(topic_count)
        ]
        self._topic_token_fraction = 0.12

    def sample_body_tokens(self, rng: random.Random, topic: int | None = None) -> list[str]:
        """Draw one email body as a token list (topic chosen if None)."""
        length = self.lengths.sample(rng)
        if topic is None:
            topic = rng.randrange(self.topic_count)
        topic_tokens = int(length * self._topic_token_fraction)
        tokens = self.base.sample(rng, length - topic_tokens)
        tokens.extend(self._topic_samplers[topic % self.topic_count].sample(rng, topic_tokens))
        rng.shuffle(tokens)
        return tokens


class SpamLanguageModel:
    """Unsolicited email: core English + promotional/obfuscated slices."""

    def __init__(
        self,
        vocabulary: Vocabulary,
        length_median: int = 70,
        length_sigma: float = 0.60,
    ) -> None:
        self.vocabulary = vocabulary
        self.lengths = _LengthModel(length_median, length_sigma, 15, 500)
        self.base = MixtureModel(
            [
                ("core", ZipfSampler(vocabulary.core, 1.10), 0.55),
                ("spam_shared", ZipfSampler(vocabulary.spam_shared, 0.80), 0.14),
                ("spam_unlisted", ZipfSampler(vocabulary.spam_unlisted, 0.85), 0.12),
                ("colloquial", ZipfSampler(vocabulary.colloquial, 1.10), 0.09),
                ("entity", ZipfSampler(vocabulary.entity, 0.90), 0.04),
                ("ham_topic", ZipfSampler(vocabulary.ham_topic, 1.10), 0.03),
                ("formal", ZipfSampler(vocabulary.formal, 1.30), 0.03),
            ]
        )

    def sample_body_tokens(self, rng: random.Random) -> list[str]:
        """Draw one spam body as a token list."""
        return self.base.sample(rng, self.lengths.sample(rng))
