"""mbox-style persistence for datasets.

Generated corpora are deterministic, so persistence is a convenience
(inspecting a poisoned mailbox, interop with real tooling) rather than
a requirement.  The format is classic ``mboxo``: messages separated by
``From `` lines, with a ``X-Repro-Label`` header carrying the gold
label and ``X-Repro-Msgid`` the corpus identity, so a dataset round-
trips losslessly through a single file.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.errors import CorpusError
from repro.corpus.dataset import Dataset, LabeledMessage
from repro.spambayes.message import Email

__all__ = ["save_mbox", "load_mbox"]

_LABEL_HEADER = "X-Repro-Label"
_MSGID_HEADER = "X-Repro-Msgid"
_BODY_LINES_HEADER = "X-Repro-Body-Lines"
_SEPARATOR_PREFIX = "From "


def save_mbox(dataset: Iterable[LabeledMessage], path: str | Path) -> int:
    """Write messages to ``path`` in mboxo format; returns the count.

    Body lines beginning with ``From `` are quoted with ``>`` per the
    mboxo convention (and unquoted on load).
    """
    path = Path(path)
    count = 0
    try:
        with open(path, "w", encoding="utf-8") as handle:
            for message in dataset:
                label = "spam" if message.is_spam else "ham"
                body_lines = message.email.body.split("\n")
                handle.write("From repro@localhost Sat Jan  1 00:00:00 2005\n")
                handle.write(f"{_LABEL_HEADER}: {label}\n")
                handle.write(f"{_MSGID_HEADER}: {message.msgid}\n")
                handle.write(f"{_BODY_LINES_HEADER}: {len(body_lines)}\n")
                for name, value in message.email.iter_headers():
                    handle.write(f"{name}: {value}\n")
                handle.write("\n")
                for line in body_lines:
                    if line.startswith(_SEPARATOR_PREFIX):
                        handle.write(">")
                    handle.write(line)
                    handle.write("\n")
                handle.write("\n")
                count += 1
    except OSError as exc:
        raise CorpusError(f"cannot write mbox to {path}: {exc}") from exc
    return count


def load_mbox(path: str | Path) -> Dataset:
    """Read a dataset previously written by :func:`save_mbox`."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CorpusError(f"cannot read mbox from {path}: {exc}") from exc
    messages: list[LabeledMessage] = []
    current_lines: list[str] = []

    def flush() -> None:
        if not current_lines:
            return
        raw = "\n".join(current_lines)
        email = Email.from_text(raw)
        label = email.get_header(_LABEL_HEADER)
        msgid = email.get_header(_MSGID_HEADER) or ""
        line_count_text = email.get_header(_BODY_LINES_HEADER)
        if label not in ("spam", "ham") or line_count_text is None:
            raise CorpusError(f"mbox message missing repro headers in {path}")
        try:
            line_count = int(line_count_text)
        except ValueError as exc:
            raise CorpusError(f"bad {_BODY_LINES_HEADER} value in {path}") from exc
        headers = [
            (name, value)
            for name, value in email.iter_headers()
            if name not in (_LABEL_HEADER, _MSGID_HEADER, _BODY_LINES_HEADER)
        ]
        body_lines = [
            line[1:] if line.startswith(">" + _SEPARATOR_PREFIX) else line
            for line in email.body.split("\n")
        ][:line_count]
        cleaned = Email(body="\n".join(body_lines), headers=headers, msgid=msgid)
        messages.append(LabeledMessage(cleaned, is_spam=(label == "spam")))

    for line in text.split("\n"):
        if line.startswith(_SEPARATOR_PREFIX):
            flush()
            current_lines = []
            continue
        current_lines.append(line)
    flush()
    if not messages:
        raise CorpusError(f"mbox at {path} contained no messages")
    return Dataset(messages, name=f"mbox({path.name})")
