"""mbox-style persistence for datasets.

Generated corpora are deterministic, so persistence is a convenience
(inspecting a poisoned mailbox, interop with real tooling) rather than
a requirement.  The format is classic ``mboxo``: messages separated by
``From `` lines, with a ``X-Repro-Label`` header carrying the gold
label and ``X-Repro-Msgid`` the corpus identity, so a dataset round-
trips losslessly through a single file.
"""

from __future__ import annotations

from functools import partial
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import CorpusError
from repro.corpus.dataset import Dataset, LabeledMessage, store_message
from repro.spambayes.message import Email

__all__ = ["save_mbox", "iter_mbox", "load_mbox"]

_LABEL_HEADER = "X-Repro-Label"
_MSGID_HEADER = "X-Repro-Msgid"
_BODY_LINES_HEADER = "X-Repro-Body-Lines"
_SEPARATOR_PREFIX = "From "


def save_mbox(dataset: Iterable[LabeledMessage], path: str | Path) -> int:
    """Write messages to ``path`` in mboxo format; returns the count.

    Body lines beginning with ``From `` are quoted with ``>`` per the
    mboxo convention (and unquoted on load).
    """
    path = Path(path)
    count = 0
    try:
        with open(path, "w", encoding="utf-8") as handle:
            for message in dataset:
                label = "spam" if message.is_spam else "ham"
                body_lines = message.email.body.split("\n")
                handle.write("From repro@localhost Sat Jan  1 00:00:00 2005\n")
                handle.write(f"{_LABEL_HEADER}: {label}\n")
                handle.write(f"{_MSGID_HEADER}: {message.msgid}\n")
                handle.write(f"{_BODY_LINES_HEADER}: {len(body_lines)}\n")
                for name, value in message.email.iter_headers():
                    handle.write(f"{name}: {value}\n")
                handle.write("\n")
                for line in body_lines:
                    if line.startswith(_SEPARATOR_PREFIX):
                        handle.write(">")
                    handle.write(line)
                    handle.write("\n")
                handle.write("\n")
                count += 1
    except OSError as exc:
        raise CorpusError(f"cannot write mbox to {path}: {exc}") from exc
    return count


def _parse_mbox_message(lines: list[str], path: Path) -> LabeledMessage:
    """One accumulated mboxo message block back into a LabeledMessage."""
    raw = "\n".join(lines)
    email = Email.from_text(raw)
    label = email.get_header(_LABEL_HEADER)
    msgid = email.get_header(_MSGID_HEADER) or ""
    line_count_text = email.get_header(_BODY_LINES_HEADER)
    if label not in ("spam", "ham") or line_count_text is None:
        raise CorpusError(f"mbox message missing repro headers in {path}")
    try:
        line_count = int(line_count_text)
    except ValueError as exc:
        raise CorpusError(f"bad {_BODY_LINES_HEADER} value in {path}") from exc
    headers = [
        (name, value)
        for name, value in email.iter_headers()
        if name not in (_LABEL_HEADER, _MSGID_HEADER, _BODY_LINES_HEADER)
    ]
    body_lines = [
        line[1:] if line.startswith(">" + _SEPARATOR_PREFIX) else line
        for line in email.body.split("\n")
    ][:line_count]
    cleaned = Email(body="\n".join(body_lines), headers=headers, msgid=msgid)
    return LabeledMessage(cleaned, is_spam=(label == "spam"))


def iter_mbox(path: str | Path) -> Iterator[LabeledMessage]:
    """Yield messages from an mboxo file lazily, in file order.

    The file is streamed line by line and one message block is held at
    a time, so callers that ingest into a backend store (or stop
    early) never materialize the mailbox.
    """
    path = Path(path)
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise CorpusError(f"cannot read mbox from {path}: {exc}") from exc
    with handle:
        current: list[str] = []
        for raw in handle:
            line = raw[:-1] if raw.endswith("\n") else raw
            if line.startswith(_SEPARATOR_PREFIX):
                if current:
                    yield _parse_mbox_message(current, path)
                current = []
                continue
            current.append(line)
        if current:
            yield _parse_mbox_message(current, path)


def _mbox_email_at(path: Path, index: int) -> Email:
    """Re-read the ``index``-th message's email from the source file."""
    for position, message in enumerate(iter_mbox(path)):
        if position == index:
            return message.email
    raise CorpusError(f"mbox at {path} no longer has a message {index}")


def load_mbox(path: str | Path) -> Dataset:
    """Read a dataset previously written by :func:`save_mbox`.

    Messages stream through :func:`iter_mbox`; under
    ``REPRO_STORE=disk`` each one is encoded into a backend message
    store as it arrives (bodies re-read from the mailbox on demand),
    so the corpus never fully materializes in RAM.
    """
    path = Path(path)
    from repro import storage

    store = storage.active_backend().corpus_store()
    if store is None:
        messages: list = list(iter_mbox(path))
    else:
        messages = [
            store_message(
                store,
                message.email,
                message.is_spam,
                email_loader=partial(_mbox_email_at, path, position),
            )
            for position, message in enumerate(iter_mbox(path))
        ]
    if not messages:
        raise CorpusError(f"mbox at {path} contained no messages")
    return Dataset(messages, name=f"mbox({path.name})")
