"""Corpus statistics and attacker-coverage reports.

The paper's Figure 1 ordering (optimal > Usenet > Aspell) is a
*coverage* statement: an attack dictionary hurts exactly as much as it
covers the tokens of future ham.  This module measures that coverage
on a generated corpus so the calibration is checkable rather than
asserted — the test suite pins the ordering, and
``examples/dictionary_attack_demo.py`` prints the report.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from repro.corpus.dataset import Dataset
from repro.spambayes.tokenizer import Tokenizer, DEFAULT_TOKENIZER

__all__ = ["TokenStatistics", "CoverageReport", "corpus_statistics", "coverage_report"]


@dataclass(frozen=True)
class TokenStatistics:
    """Aggregate token counts for one dataset."""

    message_count: int
    token_occurrences: int
    distinct_tokens: int
    mean_tokens_per_message: float
    singleton_tokens: int
    """Tokens that occur in exactly one message — the Zipf tail that
    dictionary attacks flip."""

    @property
    def singleton_fraction(self) -> float:
        if self.distinct_tokens == 0:
            return 0.0
        return self.singleton_tokens / self.distinct_tokens


@dataclass(frozen=True)
class CoverageReport:
    """How much of a dataset's ham token mass an attack word set covers."""

    wordlist_name: str
    wordlist_size: int
    distinct_ham_tokens: int
    covered_distinct: int
    ham_token_occurrences: int
    covered_occurrences: int

    @property
    def distinct_coverage(self) -> float:
        """Fraction of distinct ham tokens the attacker's set contains."""
        if self.distinct_ham_tokens == 0:
            return 0.0
        return self.covered_distinct / self.distinct_ham_tokens

    @property
    def occurrence_coverage(self) -> float:
        """Occurrence-weighted coverage (common tokens count more)."""
        if self.ham_token_occurrences == 0:
            return 0.0
        return self.covered_occurrences / self.ham_token_occurrences

    def describe(self) -> str:
        return (
            f"{self.wordlist_name}: {self.wordlist_size} words cover "
            f"{self.distinct_coverage:.1%} of distinct ham tokens "
            f"({self.occurrence_coverage:.1%} of occurrences)"
        )


def corpus_statistics(
    dataset: Dataset, tokenizer: Tokenizer = DEFAULT_TOKENIZER
) -> TokenStatistics:
    """Compute :class:`TokenStatistics` over ``dataset``."""
    document_frequency: Counter[str] = Counter()
    occurrences = 0
    for message in dataset:
        tokens = message.tokens(tokenizer)
        occurrences += len(tokens)
        document_frequency.update(tokens)
    distinct = len(document_frequency)
    singletons = sum(1 for count in document_frequency.values() if count == 1)
    mean = occurrences / len(dataset) if len(dataset) else 0.0
    return TokenStatistics(
        message_count=len(dataset),
        token_occurrences=occurrences,
        distinct_tokens=distinct,
        mean_tokens_per_message=mean,
        singleton_tokens=singletons,
    )


def coverage_report(
    dataset: Dataset,
    wordlist_name: str,
    words: Iterable[str],
    tokenizer: Tokenizer = DEFAULT_TOKENIZER,
) -> CoverageReport:
    """Measure how well ``words`` covers the *ham* tokens of ``dataset``.

    Header-prefixed tokens (``subject:...``) are excluded: the
    contamination assumption denies the attacker header control, so no
    word list can ever cover them.
    """
    word_set = frozenset(words)
    document_frequency: Counter[str] = Counter()
    for message in dataset.ham:
        document_frequency.update(
            token for token in message.tokens(tokenizer) if ":" not in token
        )
    distinct = len(document_frequency)
    occurrences = sum(document_frequency.values())
    covered_distinct = sum(1 for token in document_frequency if token in word_set)
    covered_occurrences = sum(
        count for token, count in document_frequency.items() if token in word_set
    )
    return CoverageReport(
        wordlist_name=wordlist_name,
        wordlist_size=len(word_set),
        distinct_ham_tokens=distinct,
        covered_distinct=covered_distinct,
        ham_token_occurrences=occurrences,
        covered_occurrences=covered_occurrences,
    )
