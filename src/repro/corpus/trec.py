"""The TREC-2005-style corpus bundle used by every experiment.

The real TREC 2005 public spam corpus (Cormack & Lynam 2005) contains
92,189 messages — 52,790 spam and 39,399 ham — built on Enron mail.
:class:`TrecStyleCorpus` is our deterministic synthetic equivalent
(DESIGN.md §4 records the substitution argument), bundling:

* the generated :class:`~repro.corpus.dataset.Dataset`,
* the :class:`~repro.corpus.vocabulary.Vocabulary` it was drawn from
  (attacks need it to build dictionaries and the optimal token set),
* the generator, so experiments can mint additional targets on demand.

When a real TREC corpus is available on disk, :func:`load_trec_corpus`
reads its standard index format instead, so the whole pipeline can run
against the genuine data unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.errors import CorpusError
from repro.rng import SeedSpawner
from repro.corpus.dataset import Dataset, LabeledMessage
from repro.corpus.generator import EmailGenerator, GeneratorConfig
from repro.corpus.vocabulary import (
    Vocabulary,
    VocabularyProfile,
    PAPER_PROFILE,
    SMALL_PROFILE,
)
from repro.spambayes.message import Email

__all__ = [
    "TREC05_SPAM_COUNT",
    "TREC05_HAM_COUNT",
    "TrecStyleCorpus",
    "load_trec_corpus",
]

TREC05_SPAM_COUNT = 52_790
TREC05_HAM_COUNT = 39_399
_TREC05_SPAM_PREVALENCE = TREC05_SPAM_COUNT / (TREC05_SPAM_COUNT + TREC05_HAM_COUNT)


@dataclass(frozen=True)
class TrecStyleCorpus:
    """A generated corpus plus everything attacks need to target it."""

    dataset: Dataset
    vocabulary: Vocabulary
    generator: EmailGenerator
    seed: int

    @classmethod
    def generate(
        cls,
        n_ham: int = 2_000,
        n_spam: int | None = None,
        profile: VocabularyProfile = SMALL_PROFILE,
        config: GeneratorConfig | None = None,
        seed: int = 0,
    ) -> "TrecStyleCorpus":
        """Generate a corpus with TREC-like class balance.

        ``n_spam`` defaults to matching TREC 2005's 57.3% spam
        prevalence.  Messages are interleaved in a deterministic
        shuffle so corpus order carries no label signal.
        """
        if n_ham < 1:
            raise CorpusError(f"n_ham must be >= 1, got {n_ham}")
        if n_spam is None:
            n_spam = round(n_ham * _TREC05_SPAM_PREVALENCE / (1.0 - _TREC05_SPAM_PREVALENCE))
        if n_spam < 0:
            raise CorpusError(f"n_spam must be >= 0, got {n_spam}")
        vocabulary = Vocabulary.build(profile, seed=seed)
        generator = EmailGenerator(vocabulary, config=config, seed=seed)
        messages = [
            LabeledMessage(generator.ham_email(i), is_spam=False) for i in range(n_ham)
        ]
        messages.extend(
            LabeledMessage(generator.spam_email(i), is_spam=True) for i in range(n_spam)
        )
        SeedSpawner(seed).rng("trec-shuffle").shuffle(messages)
        dataset = Dataset(messages, name=f"trec-style(seed={seed})")
        return cls(dataset=dataset, vocabulary=vocabulary, generator=generator, seed=seed)

    @classmethod
    def generate_paper_scale(cls, seed: int = 0) -> "TrecStyleCorpus":
        """The full-size equivalent: 39,399 ham / 52,790 spam messages.

        Minutes of generation time and gigabyte-order memory; intended
        for ``REPRO_SCALE=paper`` benchmark runs only.
        """
        return cls.generate(
            n_ham=TREC05_HAM_COUNT,
            n_spam=TREC05_SPAM_COUNT,
            profile=PAPER_PROFILE,
            seed=seed,
        )


def load_trec_corpus(root: str | Path, limit: int | None = None) -> Dataset:
    """Load a real TREC spam corpus from its standard layout.

    ``root`` must contain ``full/index`` with lines of the form
    ``spam ../data/000/inmail.1`` — the format shipped by trec05p-1.
    Only usable when the (public but non-redistributable) corpus has
    been placed on disk; every experiment accepts the resulting
    :class:`Dataset` in place of the synthetic one.
    """
    root = Path(root)
    index_path = root / "full" / "index"
    if not index_path.is_file():
        raise CorpusError(f"no TREC index at {index_path}")
    messages: list[LabeledMessage] = []
    with open(index_path, "r", encoding="utf-8", errors="replace") as index_file:
        for line_number, line in enumerate(index_file):
            if limit is not None and len(messages) >= limit:
                break
            parts = line.split()
            if len(parts) != 2:
                raise CorpusError(f"malformed TREC index line {line_number}: {line!r}")
            label, relative = parts
            if label not in ("spam", "ham"):
                raise CorpusError(f"unknown TREC label {label!r} on line {line_number}")
            message_path = (index_path.parent / relative).resolve()
            try:
                text = message_path.read_text(encoding="utf-8", errors="replace")
            except OSError as exc:
                raise CorpusError(f"cannot read TREC message {message_path}: {exc}") from exc
            email = Email.from_text(text, msgid=relative)
            messages.append(LabeledMessage(email, is_spam=(label == "spam")))
    if not messages:
        raise CorpusError(f"TREC index at {index_path} contained no messages")
    return Dataset(messages, name=f"trec({root.name})")
