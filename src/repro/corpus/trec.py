"""The TREC-2005-style corpus bundle used by every experiment.

The real TREC 2005 public spam corpus (Cormack & Lynam 2005) contains
92,189 messages — 52,790 spam and 39,399 ham — built on Enron mail.
:class:`TrecStyleCorpus` is our deterministic synthetic equivalent
(DESIGN.md §4 records the substitution argument), bundling:

* the generated :class:`~repro.corpus.dataset.Dataset`,
* the :class:`~repro.corpus.vocabulary.Vocabulary` it was drawn from
  (attacks need it to build dictionaries and the optimal token set),
* the generator, so experiments can mint additional targets on demand.

When a real TREC corpus is available on disk, :func:`load_trec_corpus`
reads its standard index format instead, so the whole pipeline can run
against the genuine data unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Iterator

from repro.errors import CorpusError
from repro.rng import SeedSpawner
from repro.corpus.dataset import Dataset, LabeledMessage, store_message
from repro.corpus.generator import EmailGenerator, GeneratorConfig
from repro.corpus.vocabulary import (
    Vocabulary,
    VocabularyProfile,
    PAPER_PROFILE,
    SMALL_PROFILE,
)
from repro.spambayes.message import Email
from repro.spambayes.token_table import TokenTable

__all__ = [
    "TREC05_SPAM_COUNT",
    "TREC05_HAM_COUNT",
    "TrecStyleCorpus",
    "iter_trec_corpus",
    "load_trec_corpus",
]

TREC05_SPAM_COUNT = 52_790
TREC05_HAM_COUNT = 39_399
_TREC05_SPAM_PREVALENCE = TREC05_SPAM_COUNT / (TREC05_SPAM_COUNT + TREC05_HAM_COUNT)


@dataclass(frozen=True)
class TrecStyleCorpus:
    """A generated corpus plus everything attacks need to target it.

    ``table`` is ``None`` when the corpus lives in RAM (the memory
    backend) and the ingest token table when it was streamed into a
    backend message store — consumers that own a classifier adopt it
    so stored token-ID rows index straight into the count columns.
    """

    dataset: Dataset
    vocabulary: Vocabulary
    generator: EmailGenerator
    seed: int
    table: TokenTable | None = None

    @classmethod
    def generate(
        cls,
        n_ham: int = 2_000,
        n_spam: int | None = None,
        profile: VocabularyProfile = SMALL_PROFILE,
        config: GeneratorConfig | None = None,
        seed: int = 0,
    ) -> "TrecStyleCorpus":
        """Generate a corpus with TREC-like class balance.

        ``n_spam`` defaults to matching TREC 2005's 57.3% spam
        prevalence.  Messages are interleaved in a deterministic
        shuffle so corpus order carries no label signal.
        """
        if n_ham < 1:
            raise CorpusError(f"n_ham must be >= 1, got {n_ham}")
        if n_spam is None:
            n_spam = round(n_ham * _TREC05_SPAM_PREVALENCE / (1.0 - _TREC05_SPAM_PREVALENCE))
        if n_spam < 0:
            raise CorpusError(f"n_spam must be >= 0, got {n_spam}")
        vocabulary = Vocabulary.build(profile, seed=seed)
        generator = EmailGenerator(vocabulary, config=config, seed=seed)
        from repro import storage

        store = storage.active_backend().corpus_store()
        if store is None:
            messages = [
                LabeledMessage(generator.ham_email(i), is_spam=False)
                for i in range(n_ham)
            ]
            messages.extend(
                LabeledMessage(generator.spam_email(i), is_spam=True)
                for i in range(n_spam)
            )
            table = None
        else:
            # Streaming ingestion: each email is generated, tokenized,
            # encoded into the store and dropped — only the O(1)
            # handles stay in RAM.  ``ham_email(i)``/``spam_email(i)``
            # are pure functions of (vocabulary, config, seed, i), so
            # handles re-materialize bodies on demand for free.
            messages = [
                store_message(
                    store,
                    generator.ham_email(i),
                    False,
                    email_loader=partial(generator.ham_email, i),
                )
                for i in range(n_ham)
            ]
            messages.extend(
                store_message(
                    store,
                    generator.spam_email(i),
                    True,
                    email_loader=partial(generator.spam_email, i),
                )
                for i in range(n_spam)
            )
            table = store.table
        # Same RNG, same-length list, same permutation either way:
        # corpus order is backend-independent by construction.
        SeedSpawner(seed).rng("trec-shuffle").shuffle(messages)
        dataset = Dataset(messages, name=f"trec-style(seed={seed})")
        return cls(
            dataset=dataset,
            vocabulary=vocabulary,
            generator=generator,
            seed=seed,
            table=table,
        )

    @classmethod
    def generate_paper_scale(cls, seed: int = 0) -> "TrecStyleCorpus":
        """The full-size equivalent: 39,399 ham / 52,790 spam messages.

        Minutes of generation time and gigabyte-order memory; intended
        for ``REPRO_SCALE=paper`` benchmark runs only.
        """
        return cls.generate(
            n_ham=TREC05_HAM_COUNT,
            n_spam=TREC05_SPAM_COUNT,
            profile=PAPER_PROFILE,
            seed=seed,
        )


def _read_trec_message(index_parent: Path, relative: str) -> Email:
    message_path = (index_parent / relative).resolve()
    try:
        text = message_path.read_text(encoding="utf-8", errors="replace")
    except OSError as exc:
        raise CorpusError(f"cannot read TREC message {message_path}: {exc}") from exc
    return Email.from_text(text, msgid=relative)


def iter_trec_corpus(
    root: str | Path, limit: int | None = None
) -> Iterator[LabeledMessage]:
    """Yield a real TREC corpus's messages lazily, in index order.

    One message is materialized at a time — the index is streamed and
    each referenced file is read only when its message is consumed, so
    callers that ingest into a backend store (or stop early via
    ``limit``) never hold the corpus in RAM.
    """
    root = Path(root)
    index_path = root / "full" / "index"
    if not index_path.is_file():
        raise CorpusError(f"no TREC index at {index_path}")
    yielded = 0
    with open(index_path, "r", encoding="utf-8", errors="replace") as index_file:
        for line_number, line in enumerate(index_file):
            if limit is not None and yielded >= limit:
                break
            parts = line.split()
            if len(parts) != 2:
                raise CorpusError(f"malformed TREC index line {line_number}: {line!r}")
            label, relative = parts
            if label not in ("spam", "ham"):
                raise CorpusError(f"unknown TREC label {label!r} on line {line_number}")
            email = _read_trec_message(index_path.parent, relative)
            yield LabeledMessage(email, is_spam=(label == "spam"))
            yielded += 1


def load_trec_corpus(root: str | Path, limit: int | None = None) -> Dataset:
    """Load a real TREC spam corpus from its standard layout.

    ``root`` must contain ``full/index`` with lines of the form
    ``spam ../data/000/inmail.1`` — the format shipped by trec05p-1.
    Only usable when the (public but non-redistributable) corpus has
    been placed on disk; every experiment accepts the resulting
    :class:`Dataset` in place of the synthetic one.

    Messages stream through :func:`iter_trec_corpus`; under
    ``REPRO_STORE=disk`` each one is encoded into a backend message
    store as it arrives (bodies re-read from the source tree on
    demand), so the corpus never fully materializes in RAM.
    """
    root = Path(root)
    from repro import storage

    store = storage.active_backend().corpus_store()
    if store is None:
        messages: list = list(iter_trec_corpus(root, limit))
    else:
        index_parent = root / "full"
        messages = [
            store_message(
                store,
                message.email,
                message.is_spam,
                email_loader=partial(
                    _read_trec_message, index_parent, message.email.msgid
                ),
            )
            for message in iter_trec_corpus(root, limit)
        ]
    if not messages:
        raise CorpusError(f"TREC index at {root / 'full' / 'index'} contained no messages")
    return Dataset(messages, name=f"trec({root.name})")
