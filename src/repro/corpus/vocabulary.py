"""The synthetic word universe.

Every word any generated email can contain comes from a
:class:`Vocabulary`, which is partitioned into six disjoint slices.
The slices exist because the *dictionary membership* of a word is what
the paper's attacks care about:

=============  =========================  ==========================
slice          in Aspell dictionary?      in Usenet top-k list?
=============  =========================  ==========================
core           yes                        yes
formal         yes                        no (too rare on Usenet)
colloquial     no (slang, misspellings)   yes
ham_topic      yes                        yes
spam_shared    yes                        yes
spam_unlisted  no (obfuscations)          partially (the slangy half)
entity         no (names, account ids)    no
=============  =========================  ==========================

The paper's Usenet-beats-Aspell result (Figure 1) hinges on ham email
containing colloquialisms that only the Usenet list covers; the
optimal-beats-everything result hinges on ham also containing entity
tokens that neither list covers.  The slice sizes of
:data:`PAPER_PROFILE` are calibrated so the synthetic Aspell list has
98,568 words, the Usenet list 90,000, and their overlap ≈61,000 —
the counts reported in Sections 3.2 and 4.2.

Words themselves are pronounceable consonant-vowel gibberish (plus
mutation-derived "misspellings" for the colloquial slice and digit
obfuscations for spam), generated deterministically from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigurationError
from repro.rng import SeedSpawner

__all__ = [
    "VocabularyProfile",
    "Vocabulary",
    "WordForge",
    "PAPER_PROFILE",
    "SMALL_PROFILE",
    "TINY_PROFILE",
]

_CONSONANTS = "bcdfghjklmnpqrstvwz"
_VOWELS = "aeiou"
_CODA = "nrstlmdk"


@dataclass(frozen=True, slots=True)
class VocabularyProfile:
    """Slice sizes for a vocabulary universe.

    ``aspell_words()``/``usenet_words()`` on :class:`Vocabulary` derive
    the dictionary sizes from these; see the table in the module
    docstring for the membership rules.
    """

    name: str
    core_size: int
    formal_size: int
    colloquial_size: int
    ham_topic_size: int
    spam_shared_size: int
    spam_unlisted_size: int
    entity_size: int

    def __post_init__(self) -> None:
        for field_name in (
            "core_size",
            "formal_size",
            "colloquial_size",
            "ham_topic_size",
            "spam_shared_size",
            "spam_unlisted_size",
            "entity_size",
        ):
            if getattr(self, field_name) < 0:
                raise ConfigurationError(f"{field_name} must be >= 0")
        if self.core_size == 0:
            raise ConfigurationError("core_size must be positive")

    @property
    def total_size(self) -> int:
        return (
            self.core_size
            + self.formal_size
            + self.colloquial_size
            + self.ham_topic_size
            + self.spam_shared_size
            + self.spam_unlisted_size
            + self.entity_size
        )

    @property
    def aspell_size(self) -> int:
        """Size of the synthetic Aspell dictionary under this profile."""
        return self.core_size + self.formal_size + self.ham_topic_size + self.spam_shared_size

    @property
    def usenet_pool_size(self) -> int:
        """Words eligible for the Usenet frequency-ranked list."""
        # The slangy half of the unlisted spam words shows up on Usenet.
        return (
            self.core_size
            + self.colloquial_size
            + self.ham_topic_size
            + self.spam_shared_size
            + self.spam_unlisted_size // 2
        )


# Calibrated to the paper: |Aspell| = 98,568; |Usenet list| = 90,000
# (taken from a 91,160-word eligible pool); overlap ≈ 61,000.
PAPER_PROFILE = VocabularyProfile(
    name="paper",
    core_size=55_400,
    formal_size=37_568,
    colloquial_size=28_000,
    ham_topic_size=4_800,
    spam_shared_size=800,
    spam_unlisted_size=4_320,
    entity_size=8_000,
)

# One tenth of the paper scale: the default for tests and quick benches.
SMALL_PROFILE = VocabularyProfile(
    name="small",
    core_size=5_540,
    formal_size=3_757,
    colloquial_size=2_800,
    ham_topic_size=480,
    spam_shared_size=80,
    spam_unlisted_size=432,
    entity_size=800,
)

# Minimal universe for unit tests that only need structure, not scale.
TINY_PROFILE = VocabularyProfile(
    name="tiny",
    core_size=400,
    formal_size=150,
    colloquial_size=120,
    ham_topic_size=60,
    spam_shared_size=20,
    spam_unlisted_size=40,
    entity_size=60,
)


class WordForge:
    """Deterministic generator of distinct pronounceable words.

    Words are CV-syllable strings of 3-12 characters, which keeps them
    inside the tokenizer's accepted length band so no generated word is
    silently dropped or skip-tokenized.
    """

    def __init__(self, seed_spawner: SeedSpawner) -> None:
        self._rng = seed_spawner.rng("word-forge")
        self._seen: set[str] = set()

    def _syllable(self) -> str:
        rng = self._rng
        syllable = rng.choice(_CONSONANTS) + rng.choice(_VOWELS)
        if rng.random() < 0.35:
            syllable += rng.choice(_CODA)
        return syllable

    def word(self, min_syllables: int = 2, max_syllables: int = 4) -> str:
        """Return a fresh word not produced before by this forge."""
        rng = self._rng
        while True:
            count = rng.randint(min_syllables, max_syllables)
            candidate = "".join(self._syllable() for _ in range(count))[:12]
            if len(candidate) >= 3 and candidate not in self._seen:
                self._seen.add(candidate)
                return candidate

    def words(self, count: int, min_syllables: int = 2, max_syllables: int = 4) -> list[str]:
        return [self.word(min_syllables, max_syllables) for _ in range(count)]

    def misspelling_of(self, word: str) -> str:
        """Mutate ``word`` into a distinct colloquial variant.

        Applies one of: adjacent transposition ("teh"), vowel drop
        ("thx"), or doubling — the typo classes that make Usenet text
        diverge from a formal dictionary.
        """
        rng = self._rng
        while True:
            kind = rng.randrange(3)
            chars = list(word)
            if kind == 0 and len(chars) >= 4:
                i = rng.randrange(len(chars) - 1)
                chars[i], chars[i + 1] = chars[i + 1], chars[i]
            elif kind == 1 and any(c in _VOWELS for c in chars[1:]):
                vowel_positions = [i for i, c in enumerate(chars) if c in _VOWELS and i > 0]
                del chars[rng.choice(vowel_positions)]
            else:
                i = rng.randrange(len(chars))
                chars.insert(i, chars[i])
            candidate = "".join(chars)[:12]
            if len(candidate) >= 3 and candidate != word and candidate not in self._seen:
                self._seen.add(candidate)
                return candidate

    def obfuscation_of(self, word: str) -> str:
        """Digit-substitute ``word`` ("viagra" -> "v1agra")-style."""
        substitutions = {"a": "4", "e": "3", "i": "1", "o": "0", "u": "v"}
        rng = self._rng
        while True:
            chars = list(word)
            positions = [i for i, c in enumerate(chars) if c in substitutions]
            if not positions:
                chars.append(rng.choice("0123456789"))
            else:
                i = rng.choice(positions)
                chars[i] = substitutions[chars[i]]
            candidate = "".join(chars)[:12]
            if len(candidate) >= 3 and candidate != word and candidate not in self._seen:
                self._seen.add(candidate)
                return candidate
            # Extremely unlikely collision: perturb again from scratch.
            word = candidate + rng.choice("0123456789")

    def entity(self) -> str:
        """Name-or-id style token ("kopels2004", "acct7731")."""
        rng = self._rng
        while True:
            if rng.random() < 0.6:
                base = self.word(2, 3)
                candidate = f"{base}{rng.randrange(1990, 2010)}"[:12]
            else:
                candidate = f"{self.word(1, 2)}{rng.randrange(100, 9999)}"[:12]
            if len(candidate) >= 3 and candidate not in self._seen:
                self._seen.add(candidate)
                return candidate


@dataclass(frozen=True)
class Vocabulary:
    """A fully realized word universe, sliced per the module table."""

    profile: VocabularyProfile
    seed: int
    core: tuple[str, ...]
    formal: tuple[str, ...]
    colloquial: tuple[str, ...]
    ham_topic: tuple[str, ...]
    spam_shared: tuple[str, ...]
    spam_unlisted: tuple[str, ...]
    entity: tuple[str, ...]

    @classmethod
    def build(cls, profile: VocabularyProfile = SMALL_PROFILE, seed: int = 0) -> "Vocabulary":
        """Generate the universe for ``profile`` deterministically."""
        spawner = SeedSpawner(seed).spawn(f"vocabulary:{profile.name}")
        forge = WordForge(spawner)
        core = forge.words(profile.core_size)
        formal = forge.words(profile.formal_size, min_syllables=3, max_syllables=5)
        # Colloquialisms: half fresh slang, half misspellings of core words.
        slang_count = profile.colloquial_size // 2
        slang = forge.words(slang_count, min_syllables=1, max_syllables=3)
        source_rng = spawner.rng("misspell-sources")
        misspellings = [
            forge.misspelling_of(source_rng.choice(core))
            for _ in range(profile.colloquial_size - slang_count)
        ]
        ham_topic = forge.words(profile.ham_topic_size)
        spam_shared = forge.words(profile.spam_shared_size)
        # Unlisted spam words: half slangy (Usenet sees them), half
        # obfuscations (nothing lists them).
        slangy_count = profile.spam_unlisted_size // 2
        spam_slangy = forge.words(slangy_count, min_syllables=1, max_syllables=3)
        obfuscation_rng = spawner.rng("obfuscation-sources")
        pool = spam_shared if spam_shared else core
        spam_obfuscated = [
            forge.obfuscation_of(obfuscation_rng.choice(pool))
            for _ in range(profile.spam_unlisted_size - slangy_count)
        ]
        entity = [forge.entity() for _ in range(profile.entity_size)]
        return cls(
            profile=profile,
            seed=seed,
            core=tuple(core),
            formal=tuple(formal),
            colloquial=tuple(slang + misspellings),
            ham_topic=tuple(ham_topic),
            spam_shared=tuple(spam_shared),
            spam_unlisted=tuple(spam_slangy + spam_obfuscated),
            entity=tuple(entity),
        )

    # ------------------------------------------------------------------
    # Derived word sets
    # ------------------------------------------------------------------

    @property
    def spam_unlisted_slangy(self) -> tuple[str, ...]:
        """The Usenet-visible half of the unlisted spam words."""
        return self.spam_unlisted[: len(self.spam_unlisted) // 2]

    def aspell_words(self) -> list[str]:
        """Every word the synthetic Aspell dictionary contains."""
        return list(self.core) + list(self.formal) + list(self.ham_topic) + list(self.spam_shared)

    def usenet_pool(self) -> list[str]:
        """Words that can appear on Usenet, in no particular order."""
        return (
            list(self.core)
            + list(self.colloquial)
            + list(self.ham_topic)
            + list(self.spam_shared)
            + list(self.spam_unlisted_slangy)
        )

    def all_words(self) -> Iterator[str]:
        """Every word in the universe (dictionary members or not)."""
        for slice_words in (
            self.core,
            self.formal,
            self.colloquial,
            self.ham_topic,
            self.spam_shared,
            self.spam_unlisted,
            self.entity,
        ):
            yield from slice_words

    def slice_of(self, word: str) -> str | None:
        """Return the slice name containing ``word`` (None if foreign)."""
        for name in (
            "core",
            "formal",
            "colloquial",
            "ham_topic",
            "spam_shared",
            "spam_unlisted",
            "entity",
        ):
            if word in set(getattr(self, name)):
                return name
        return None

    def __len__(self) -> int:
        return self.profile.total_size
