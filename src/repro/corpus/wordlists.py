"""The attacker's word sources.

Section 3.2 of the paper uses two public word sources to build
dictionary attacks:

* the GNU Aspell English dictionary 6.0-0 — 98,568 words, and
* the top 90,000 words of a Usenet posting corpus (Shaoul & Westbury),
  whose overlap with Aspell is roughly 61,000 words.

This module synthesizes both from a :class:`Vocabulary`.  The Aspell
list is membership-defined (every formal word, no slang).  The Usenet
list is *frequency-ranked*: we simulate per-word Usenet frequencies
(core words common, slang medium, formal words absent) and keep the
``top_k`` — exactly the construction the paper describes, so the
"smaller but better targeted dictionary" trade-off of Section 3.2 is
reproducible by varying ``top_k`` (benchmark E-A1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.rng import SeedSpawner
from repro.corpus.vocabulary import Vocabulary

__all__ = ["AttackWordlist", "build_aspell_dictionary", "build_usenet_wordlist"]

# Default kept fraction of the eligible pool: exactly 90,000 of the
# 91,160 paper-scale pool, the paper's "90,000 top ranked words".
_USENET_DEFAULT_FRACTION = 90_000 / 91_160

# Relative Usenet posting frequency by vocabulary slice. Core English
# dominates; topical/business words appear but rarer; slang sits in
# between; obfuscated spam words are rare but present.
_USENET_SLICE_WEIGHT = {
    "core": 1.0,
    "colloquial": 0.35,
    "ham_topic": 0.15,
    "spam_shared": 0.12,
    "spam_unlisted_slangy": 0.08,
}


@dataclass(frozen=True)
class AttackWordlist:
    """An ordered word list an attacker can stuff into attack emails.

    ``words`` is ordered most-useful-first (for the Usenet list this is
    descending simulated frequency), so ``truncated(k)`` gives the
    natural "top-k words" sub-dictionary.
    """

    name: str
    source: str
    words: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.words:
            raise ConfigurationError(f"wordlist {self.name!r} is empty")

    def __len__(self) -> int:
        return len(self.words)

    def __iter__(self):
        return iter(self.words)

    def as_set(self) -> frozenset[str]:
        return frozenset(self.words)

    def truncated(self, top_k: int) -> "AttackWordlist":
        """The ``top_k`` most useful words as a new list."""
        if top_k < 1:
            raise ConfigurationError(f"top_k must be >= 1, got {top_k}")
        return AttackWordlist(
            name=f"{self.name}-top{top_k}",
            source=self.source,
            words=self.words[:top_k],
        )

    def overlap(self, other: "AttackWordlist") -> int:
        """Number of words shared with ``other`` (paper reports ~61k)."""
        return len(self.as_set() & other.as_set())


def build_aspell_dictionary(vocabulary: Vocabulary) -> AttackWordlist:
    """The synthetic GNU Aspell dictionary for this universe.

    Contains every formally spelled word — the core, the formal tail,
    and the topical vocabularies — but no slang, no misspellings, no
    obfuscations, and no entities.  Sorted alphabetically like a real
    dictionary file; order carries no frequency information, which is
    precisely the Aspell attack's weakness.
    """
    words = sorted(vocabulary.aspell_words())
    return AttackWordlist(
        name="aspell",
        source="synthetic GNU Aspell en 6.0-0 equivalent",
        words=tuple(words),
    )


def build_usenet_wordlist(
    vocabulary: Vocabulary,
    top_k: int | None = None,
    seed: int = 0,
) -> AttackWordlist:
    """The synthetic Usenet frequency-ranked word list.

    Simulates a Usenet frequency for every eligible word: a Zipf-like
    positional decay within its slice, scaled by the slice's posting
    weight, with multiplicative jitter so slices interleave like real
    rank lists do.  Keeps the ``top_k`` most frequent (defaults to ~99%
    of the eligible pool, matching 90,000-of-91,160 at paper scale).
    """
    rng = SeedSpawner(seed).spawn("usenet-wordlist").rng("jitter")
    pool: list[tuple[float, str]] = []
    slices: list[tuple[str, Sequence[str]]] = [
        ("core", vocabulary.core),
        ("colloquial", vocabulary.colloquial),
        ("ham_topic", vocabulary.ham_topic),
        ("spam_shared", vocabulary.spam_shared),
        ("spam_unlisted_slangy", vocabulary.spam_unlisted_slangy),
    ]
    for slice_name, words in slices:
        weight = _USENET_SLICE_WEIGHT[slice_name]
        for rank, word in enumerate(words):
            # Zipf positional decay inside the slice; jitter keeps the
            # merged ranking from being a deterministic slice-by-slice
            # interleave.
            frequency = weight / (1.0 + rank) ** 0.85
            frequency *= math.exp(rng.gauss(0.0, 0.4))
            pool.append((frequency, word))
    pool.sort(key=lambda item: (-item[0], item[1]))
    if top_k is None:
        top_k = max(1, round(len(pool) * _USENET_DEFAULT_FRACTION))
    if top_k > len(pool):
        raise ConfigurationError(
            f"top_k={top_k} exceeds the Usenet-eligible pool ({len(pool)} words)"
        )
    return AttackWordlist(
        name="usenet",
        source="synthetic Shaoul & Westbury Usenet corpus equivalent",
        words=tuple(word for _, word in pool[:top_k]),
    )
