"""Defenses against Causative attacks (Section 5 of the paper).

* :mod:`repro.defenses.roni` — Reject On Negative Impact: measure each
  candidate training email's incremental effect on a small validation
  set and refuse to train on messages with large negative impact.
* :mod:`repro.defenses.threshold` — the dynamic threshold defense:
  re-derive θ0/θ1 from held-out scores instead of the static 0.15/0.9,
  exploiting the rank-invariance of score-shifting attacks.
* :mod:`repro.defenses.pipeline` — glue that trains defended filters
  end to end.
"""

from repro.defenses.roni import RoniConfig, RoniDefense, RoniMeasurement, RoniVerdict
from repro.defenses.threshold import (
    DynamicThresholdConfig,
    DynamicThresholdDefense,
    ThresholdFit,
)
from repro.defenses.pipeline import train_with_dynamic_threshold, train_with_roni, RoniTrainingReport

__all__ = [
    "RoniConfig",
    "RoniDefense",
    "RoniMeasurement",
    "RoniVerdict",
    "DynamicThresholdConfig",
    "DynamicThresholdDefense",
    "ThresholdFit",
    "train_with_dynamic_threshold",
    "train_with_roni",
    "RoniTrainingReport",
]
