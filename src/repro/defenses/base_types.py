"""Small shared types for the defenses package."""

from __future__ import annotations

import enum

__all__ = ["DefenseVerdict"]


class DefenseVerdict(enum.Enum):
    """A defense's decision about one candidate training message."""

    ACCEPT = "accept"
    REJECT = "reject"
