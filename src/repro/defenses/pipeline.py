"""End-to-end defended training pipelines.

These helpers wire a defense into the retraining flow of Section 2.1:
an organization periodically retrains its filter on received email,
some of which may be attack messages.  ``train_with_roni`` gates each
incoming message through a RONI check; ``train_with_dynamic_threshold``
trains on everything but re-derives the decision thresholds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable

from repro.corpus.dataset import Dataset, LabeledMessage
from repro.defenses.roni import RoniConfig, RoniDefense, RoniVerdict
from repro.defenses.threshold import (
    DynamicThresholdConfig,
    DynamicThresholdDefense,
    ThresholdFit,
)
from repro.spambayes.filter import SpamFilter
from repro.spambayes.options import ClassifierOptions, DEFAULT_OPTIONS
from repro.spambayes.tokenizer import Tokenizer, DEFAULT_TOKENIZER

__all__ = ["RoniTrainingReport", "train_with_roni", "train_with_dynamic_threshold"]


@dataclass
class RoniTrainingReport:
    """What happened when RONI gated a retraining batch."""

    accepted: list[LabeledMessage] = field(default_factory=list)
    rejected: list[LabeledMessage] = field(default_factory=list)
    verdicts: dict[str, RoniVerdict] = field(default_factory=dict)

    @property
    def rejection_rate(self) -> float:
        total = len(self.accepted) + len(self.rejected)
        return len(self.rejected) / total if total else 0.0


def train_with_roni(
    base_pool: Dataset,
    incoming: Iterable[LabeledMessage],
    rng: random.Random,
    config: RoniConfig = RoniConfig(),
    options: ClassifierOptions = DEFAULT_OPTIONS,
    tokenizer: Tokenizer = DEFAULT_TOKENIZER,
) -> tuple[SpamFilter, RoniTrainingReport]:
    """Train a filter on ``base_pool`` plus RONI-accepted ``incoming``.

    The RONI calibration resamples come from ``base_pool`` (the mail
    the organization already trusts); every ``incoming`` message is
    measured and only non-deleterious ones are trained.
    """
    defense = RoniDefense(base_pool, rng, config=config, options=options, tokenizer=tokenizer)
    report = RoniTrainingReport()
    spam_filter = SpamFilter(options=options, tokenizer=tokenizer)
    for message in base_pool:
        spam_filter.classifier.learn(message.tokens(tokenizer), message.is_spam)
    for message in incoming:
        verdict = defense.judge(message)
        report.verdicts[message.msgid] = verdict
        if verdict.rejected:
            report.rejected.append(message)
        else:
            report.accepted.append(message)
            spam_filter.classifier.learn(message.tokens(tokenizer), message.is_spam)
    return spam_filter, report


def train_with_dynamic_threshold(
    training: Dataset,
    rng: random.Random,
    config: DynamicThresholdConfig = DynamicThresholdConfig(),
    options: ClassifierOptions = DEFAULT_OPTIONS,
    tokenizer: Tokenizer = DEFAULT_TOKENIZER,
) -> tuple[SpamFilter, ThresholdFit]:
    """Train on the full (possibly poisoned) set with fitted thresholds."""
    defense = DynamicThresholdDefense(config=config, options=options, tokenizer=tokenizer)
    return defense.build_filter(training, rng)
