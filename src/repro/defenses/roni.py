"""The Reject On Negative Impact (RONI) defense (Section 5.1).

Causative attacks only work because training on attack email degrades
the filter.  RONI turns that observation into a test: before accepting
a candidate training message ``Q``, measure how training on it changes
classification quality on held-out mail, and reject it when the change
is significantly negative.

Protocol, exactly as in the paper:

* sample ``trials`` (default 5) independent pairs of a ``train_size``
  (20) message training set ``T`` and a ``validation_size`` (50)
  message validation set ``V`` from the pool of email already given to
  SpamBayes for training;
* for each pair, compare classification of ``V`` under a filter
  trained on ``T`` versus one trained on ``T ∪ {Q}``;
* average the per-trial change and reject ``Q`` when the average drop
  in correctly classified ham ("ham-as-ham") exceeds a threshold.

The paper reports a clean separability region: every dictionary-attack
email costs ≥ 6.8 ham-as-ham messages on average, while non-attack
spam costs at most 4.4 — so any threshold in between identifies 100%
of attack emails with zero false positives.  The default threshold
sits at the midpoint, 5.6, and is configurable for the ablation bench.

Implementation notes: the five baseline filters are trained once; each
query is measured by learning it into a trial filter, re-scoring the
validation set, and unlearning it again — both operations are exact
inverses in this classifier, so no copying is needed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.corpus.dataset import Dataset, LabeledMessage
from repro.defenses.base_types import DefenseVerdict
from repro.errors import DefenseError
from repro.spambayes.classifier import Classifier
from repro.spambayes.filter import Label
from repro.spambayes.options import ClassifierOptions, DEFAULT_OPTIONS
from repro.spambayes.tokenizer import Tokenizer, DEFAULT_TOKENIZER

__all__ = ["RoniConfig", "RoniMeasurement", "RoniVerdict", "RoniDefense"]


@dataclass(frozen=True, slots=True)
class RoniConfig:
    """Parameters of the RONI protocol (paper defaults)."""

    train_size: int = 20
    validation_size: int = 50
    trials: int = 5
    spam_fraction: float = 0.5
    ham_as_ham_threshold: float = 5.6
    """Reject when the mean drop in correctly classified ham across
    trials is at least this many messages (paper margin: (4.4, 6.8))."""

    def __post_init__(self) -> None:
        if self.train_size < 2:
            raise DefenseError(f"train_size must be >= 2, got {self.train_size}")
        if self.validation_size < 2:
            raise DefenseError(f"validation_size must be >= 2, got {self.validation_size}")
        if self.trials < 1:
            raise DefenseError(f"trials must be >= 1, got {self.trials}")
        if not 0.0 < self.spam_fraction < 1.0:
            raise DefenseError(f"spam_fraction must be in (0, 1), got {self.spam_fraction}")
        if self.ham_as_ham_threshold < 0.0:
            raise DefenseError("ham_as_ham_threshold must be >= 0")


@dataclass(frozen=True, slots=True)
class RoniMeasurement:
    """Averaged incremental impact of one candidate training message.

    All deltas are "after minus before" counts on the validation set,
    averaged over trials; negative ``ham_as_ham_delta`` means training
    on the candidate *lost* correctly classified ham.
    """

    ham_as_ham_delta: float
    ham_as_spam_delta: float
    ham_as_unsure_delta: float
    spam_as_spam_delta: float
    trials: int

    @property
    def ham_as_ham_decrease(self) -> float:
        """The paper's headline statistic (positive = damage)."""
        return -self.ham_as_ham_delta


@dataclass(frozen=True, slots=True)
class RoniVerdict:
    """Measurement plus the accept/reject decision."""

    measurement: RoniMeasurement
    rejected: bool

    @property
    def verdict(self) -> DefenseVerdict:
        return DefenseVerdict.REJECT if self.rejected else DefenseVerdict.ACCEPT


class _Trial:
    """One (T, V) resample with its pre-trained baseline filter."""

    __slots__ = ("classifier", "validation", "baseline_counts")

    def __init__(
        self,
        classifier: Classifier,
        validation: list[tuple[frozenset[str], bool]],
    ) -> None:
        self.classifier = classifier
        self.validation = validation
        self.baseline_counts = _validation_counts(classifier, validation)


def _validation_counts(
    classifier: Classifier, validation: Sequence[tuple[frozenset[str], bool]]
) -> dict[str, int]:
    """Count validation outcomes under ``classifier``'s current state."""
    options = classifier.options
    counts = {
        "ham_as_ham": 0,
        "ham_as_spam": 0,
        "ham_as_unsure": 0,
        "spam_as_spam": 0,
    }
    for tokens, is_spam in validation:
        score = classifier.score(tokens)
        if score <= options.ham_cutoff:
            label = Label.HAM
        elif score <= options.spam_cutoff:
            label = Label.UNSURE
        else:
            label = Label.SPAM
        if is_spam:
            if label is Label.SPAM:
                counts["spam_as_spam"] += 1
        else:
            if label is Label.HAM:
                counts["ham_as_ham"] += 1
            elif label is Label.SPAM:
                counts["ham_as_spam"] += 1
            else:
                counts["ham_as_unsure"] += 1
    return counts


class RoniDefense:
    """A calibrated RONI gate over candidate training messages."""

    def __init__(
        self,
        pool: Dataset,
        rng: random.Random,
        config: RoniConfig = RoniConfig(),
        options: ClassifierOptions = DEFAULT_OPTIONS,
        tokenizer: Tokenizer = DEFAULT_TOKENIZER,
    ) -> None:
        """Build the ``trials`` baseline (T, V) resamples from ``pool``.

        ``pool`` is the email already available for training (assumed
        clean — the paper samples from the initial inbox).
        """
        self.config = config
        self.tokenizer = tokenizer
        needed = config.train_size + config.validation_size
        n_ham, n_spam = pool.counts()
        if n_ham + n_spam < needed:
            raise DefenseError(
                f"RONI needs at least {needed} pool messages, got {len(pool)}"
            )
        self._trials: list[_Trial] = []
        for _ in range(config.trials):
            sample = pool.sample_inbox(needed, config.spam_fraction, rng)
            train = sample.messages[: config.train_size]
            validation = sample.messages[config.train_size :]
            classifier = Classifier(options)
            for message in train:
                classifier.learn(message.tokens(tokenizer), message.is_spam)
            validation_tokens = [
                (message.tokens(tokenizer), message.is_spam) for message in validation
            ]
            self._trials.append(_Trial(classifier, validation_tokens))

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def measure_tokens(self, tokens: Iterable[str], is_spam: bool = True) -> RoniMeasurement:
        """Average incremental impact of one candidate message.

        Learns the candidate into each trial filter, recounts the
        validation set, and unlearns it — leaving the trial baselines
        untouched for the next query.
        """
        token_set = frozenset(tokens)
        totals = {
            "ham_as_ham": 0.0,
            "ham_as_spam": 0.0,
            "ham_as_unsure": 0.0,
            "spam_as_spam": 0.0,
        }
        for trial in self._trials:
            trial.classifier.learn(token_set, is_spam)
            after = _validation_counts(trial.classifier, trial.validation)
            trial.classifier.unlearn(token_set, is_spam)
            for key in totals:
                totals[key] += after[key] - trial.baseline_counts[key]
        n = len(self._trials)
        return RoniMeasurement(
            ham_as_ham_delta=totals["ham_as_ham"] / n,
            ham_as_spam_delta=totals["ham_as_spam"] / n,
            ham_as_unsure_delta=totals["ham_as_unsure"] / n,
            spam_as_spam_delta=totals["spam_as_spam"] / n,
            trials=n,
        )

    def measure(self, message: LabeledMessage) -> RoniMeasurement:
        return self.measure_tokens(message.tokens(self.tokenizer), message.is_spam)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def judge_tokens(self, tokens: Iterable[str], is_spam: bool = True) -> RoniVerdict:
        measurement = self.measure_tokens(tokens, is_spam)
        rejected = measurement.ham_as_ham_decrease >= self.config.ham_as_ham_threshold
        return RoniVerdict(measurement=measurement, rejected=rejected)

    def judge(self, message: LabeledMessage) -> RoniVerdict:
        return self.judge_tokens(message.tokens(self.tokenizer), message.is_spam)

    def filter_messages(
        self, candidates: Iterable[LabeledMessage]
    ) -> tuple[list[LabeledMessage], list[LabeledMessage]]:
        """Split ``candidates`` into (accepted, rejected) lists."""
        accepted: list[LabeledMessage] = []
        rejected: list[LabeledMessage] = []
        for message in candidates:
            if self.judge(message).rejected:
                rejected.append(message)
            else:
                accepted.append(message)
        return accepted, rejected
