"""The Reject On Negative Impact (RONI) defense (Section 5.1).

Causative attacks only work because training on attack email degrades
the filter.  RONI turns that observation into a test: before accepting
a candidate training message ``Q``, measure how training on it changes
classification quality on held-out mail, and reject it when the change
is significantly negative.

Protocol, exactly as in the paper:

* sample ``trials`` (default 5) independent pairs of a ``train_size``
  (20) message training set ``T`` and a ``validation_size`` (50)
  message validation set ``V`` from the pool of email already given to
  SpamBayes for training;
* for each pair, compare classification of ``V`` under a filter
  trained on ``T`` versus one trained on ``T ∪ {Q}``;
* average the per-trial change and reject ``Q`` when the average drop
  in correctly classified ham ("ham-as-ham") exceeds a threshold.

The paper reports a clean separability region: every dictionary-attack
email costs ≥ 6.8 ham-as-ham messages on average, while non-attack
spam costs at most 4.4 — so any threshold in between identifies 100%
of attack emails with zero false positives.  The default threshold
sits at the midpoint, 5.6, and is configurable for the ablation bench.

Implementation notes: the ``trials`` baseline filters are trained once
and share one interning :class:`TokenTable` (pass the pool's table to
share encodings across defenses); each validation set is pre-encoded
into token-ID arrays at construction.  A query is measured by learning
it into a trial filter, re-scoring the validation set through the
columnar bulk kernel (:meth:`Classifier.score_many_ids`), and
unlearning it again — both operations are exact inverses in this
classifier, so no copying is needed.  :meth:`RoniDefense.measure_many`
amortizes the gate over a candidate batch: candidates are encoded once
and swept trial-by-trial, which is how :meth:`filter_messages` avoids
paying a per-message re-encode for every trial.  Attack payloads that
are already ID-native enter through :meth:`RoniDefense.measure_ids` /
:meth:`RoniDefense.measure_batch` (fed by
:meth:`repro.attacks.base.AttackBatch.encode`), so the gate consumes
the attack layer's encoded arrays directly instead of re-interning
string frozensets.
"""

from __future__ import annotations

import random
from array import array
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.corpus.dataset import Dataset, LabeledMessage
from repro.defenses.base_types import DefenseVerdict
from repro.errors import DefenseError
from repro.spambayes.classifier import Classifier
from repro.spambayes.ndkernel import create_classifier
from repro.spambayes.filter import Label
from repro.spambayes.options import ClassifierOptions, DEFAULT_OPTIONS
from repro.spambayes.token_table import TokenTable
from repro.spambayes.tokenizer import Tokenizer, DEFAULT_TOKENIZER

__all__ = ["RoniConfig", "RoniMeasurement", "RoniVerdict", "RoniDefense"]


@dataclass(frozen=True, slots=True)
class RoniConfig:
    """Parameters of the RONI protocol (paper defaults)."""

    train_size: int = 20
    validation_size: int = 50
    trials: int = 5
    spam_fraction: float = 0.5
    ham_as_ham_threshold: float = 5.6
    """Reject when the mean drop in correctly classified ham across
    trials is at least this many messages (paper margin: (4.4, 6.8))."""

    def __post_init__(self) -> None:
        if self.train_size < 2:
            raise DefenseError(f"train_size must be >= 2, got {self.train_size}")
        if self.validation_size < 2:
            raise DefenseError(f"validation_size must be >= 2, got {self.validation_size}")
        if self.trials < 1:
            raise DefenseError(f"trials must be >= 1, got {self.trials}")
        if not 0.0 < self.spam_fraction < 1.0:
            raise DefenseError(f"spam_fraction must be in (0, 1), got {self.spam_fraction}")
        if self.ham_as_ham_threshold < 0.0:
            raise DefenseError("ham_as_ham_threshold must be >= 0")


@dataclass(frozen=True, slots=True)
class RoniMeasurement:
    """Averaged incremental impact of one candidate training message.

    All deltas are "after minus before" counts on the validation set,
    averaged over trials; negative ``ham_as_ham_delta`` means training
    on the candidate *lost* correctly classified ham.
    """

    ham_as_ham_delta: float
    ham_as_spam_delta: float
    ham_as_unsure_delta: float
    spam_as_spam_delta: float
    trials: int

    @property
    def ham_as_ham_decrease(self) -> float:
        """The paper's headline statistic (positive = damage)."""
        return -self.ham_as_ham_delta


@dataclass(frozen=True, slots=True)
class RoniVerdict:
    """Measurement plus the accept/reject decision."""

    measurement: RoniMeasurement
    rejected: bool

    @property
    def verdict(self) -> DefenseVerdict:
        return DefenseVerdict.REJECT if self.rejected else DefenseVerdict.ACCEPT


_COUNT_KEYS = ("ham_as_ham", "ham_as_spam", "ham_as_unsure", "spam_as_spam")


class _Trial:
    """One (T, V) resample: baseline filter + encoded validation set."""

    __slots__ = ("classifier", "validation_ids", "validation_labels", "baseline_counts")

    def __init__(
        self,
        classifier: Classifier,
        validation_ids: list[array],
        validation_labels: list[bool],
    ) -> None:
        self.classifier = classifier
        self.validation_ids = validation_ids
        self.validation_labels = validation_labels
        self.baseline_counts = _validation_counts(classifier, validation_ids, validation_labels)


def _validation_counts(
    classifier: Classifier,
    validation_ids: Sequence[array],
    validation_labels: Sequence[bool],
) -> dict[str, int]:
    """Count validation outcomes under ``classifier``'s current state.

    One :meth:`Classifier.score_many_ids` pass over the pre-encoded
    validation set — the whole set shares the kernel's per-token
    significance memo instead of re-deriving it per message.
    """
    options = classifier.options
    ham_cutoff = options.ham_cutoff
    spam_cutoff = options.spam_cutoff
    counts = dict.fromkeys(_COUNT_KEYS, 0)
    scores = classifier.score_many_ids(validation_ids)
    for is_spam, score in zip(validation_labels, scores):
        if score <= ham_cutoff:
            label = Label.HAM
        elif score <= spam_cutoff:
            label = Label.UNSURE
        else:
            label = Label.SPAM
        if is_spam:
            if label is Label.SPAM:
                counts["spam_as_spam"] += 1
        else:
            if label is Label.HAM:
                counts["ham_as_ham"] += 1
            elif label is Label.SPAM:
                counts["ham_as_spam"] += 1
            else:
                counts["ham_as_unsure"] += 1
    return counts


class RoniDefense:
    """A calibrated RONI gate over candidate training messages."""

    def __init__(
        self,
        pool: Dataset,
        rng: random.Random,
        config: RoniConfig = RoniConfig(),
        options: ClassifierOptions = DEFAULT_OPTIONS,
        tokenizer: Tokenizer = DEFAULT_TOKENIZER,
        table: TokenTable | None = None,
    ) -> None:
        """Build the ``trials`` baseline (T, V) resamples from ``pool``.

        ``pool`` is the email already available for training (assumed
        clean — the paper samples from the initial inbox).  ``table``
        is the interning table the trial filters share; pass the pool's
        pre-encoded table so messages are not re-encoded per defense.
        """
        self.config = config
        self.tokenizer = tokenizer
        self._table = table if table is not None else TokenTable()
        needed = config.train_size + config.validation_size
        n_ham, n_spam = pool.counts()
        if n_ham + n_spam < needed:
            raise DefenseError(
                f"RONI needs at least {needed} pool messages, got {len(pool)}"
            )
        self._trials: list[_Trial] = []
        for _ in range(config.trials):
            sample = pool.sample_inbox(needed, config.spam_fraction, rng)
            train = sample.messages[: config.train_size]
            validation = sample.messages[config.train_size :]
            classifier = create_classifier(options, table=self._table)
            for message in train:
                classifier.learn_ids(
                    message.token_ids(self._table, tokenizer), message.is_spam
                )
            validation_ids = [
                message.token_ids(self._table, tokenizer) for message in validation
            ]
            validation_labels = [message.is_spam for message in validation]
            self._trials.append(_Trial(classifier, validation_ids, validation_labels))

    @property
    def table(self) -> TokenTable:
        """The interning table shared by the trial filters."""
        return self._table

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def _measure_encoded(self, encoded: Sequence[tuple[array, bool]]) -> list[RoniMeasurement]:
        """Averaged incremental impact for a batch of encoded candidates.

        Trial-major order: each trial filter learns, re-counts and
        unlearns every candidate in turn, so the batch reuses the
        trial's warm state instead of rebuilding it per candidate.
        Results are exactly per-candidate :meth:`measure_tokens`.
        """
        totals = [dict.fromkeys(_COUNT_KEYS, 0.0) for _ in encoded]
        for trial in self._trials:
            classifier = trial.classifier
            baseline = trial.baseline_counts
            for candidate_totals, (ids, is_spam) in zip(totals, encoded):
                classifier.learn_ids(ids, is_spam)
                after = _validation_counts(
                    classifier, trial.validation_ids, trial.validation_labels
                )
                classifier.unlearn_ids(ids, is_spam)
                for key in _COUNT_KEYS:
                    candidate_totals[key] += after[key] - baseline[key]
        n = len(self._trials)
        return [
            RoniMeasurement(
                ham_as_ham_delta=candidate_totals["ham_as_ham"] / n,
                ham_as_spam_delta=candidate_totals["ham_as_spam"] / n,
                ham_as_unsure_delta=candidate_totals["ham_as_unsure"] / n,
                spam_as_spam_delta=candidate_totals["spam_as_spam"] / n,
                trials=n,
            )
            for candidate_totals in totals
        ]

    def measure_tokens(self, tokens: Iterable[str], is_spam: bool = True) -> RoniMeasurement:
        """Average incremental impact of one candidate message.

        Learns the candidate into each trial filter, recounts the
        validation set, and unlearns it — leaving the trial baselines
        untouched for the next query.
        """
        return self.measure_ids(self._table.encode_unique(tokens), is_spam)

    def measure_ids(self, ids: array, is_spam: bool = True) -> RoniMeasurement:
        """:meth:`measure_tokens` for a pre-encoded candidate.

        ``ids`` must be duplicate-free token IDs from this defense's
        :attr:`table` — e.g. one entry of
        :meth:`repro.attacks.base.AttackBatch.encode` — so the gate
        never re-interns a payload the attack layer already encoded.
        """
        return self._measure_encoded([(ids, is_spam)])[0]

    def measure_batch(self, batch) -> list[RoniMeasurement]:
        """Measure an :class:`~repro.attacks.base.AttackBatch`, one
        measurement per group (order preserved).

        The batch is encoded once against the defense's table (cached
        on the batch) and measured trial-major through the bulk path —
        identical numbers to per-group :meth:`measure_tokens` over
        ``training_tokens``.
        """
        is_spam = batch.trained_as_spam
        encoded = [(ids, is_spam) for ids, _ in batch.encode(self._table)]
        return self._measure_encoded(encoded)

    def measure(self, message: LabeledMessage) -> RoniMeasurement:
        return self._measure_encoded(
            [(message.token_ids(self._table, self.tokenizer), message.is_spam)]
        )[0]

    def measure_many(self, candidates: Sequence[LabeledMessage]) -> list[RoniMeasurement]:
        """:meth:`measure` for a whole candidate batch in one sweep.

        Candidates are encoded once up front; the per-trial inner loop
        is then pure ID-column work.  Returns one measurement per
        candidate, in order, identical to per-message :meth:`measure`.
        """
        encoded = [
            (message.token_ids(self._table, self.tokenizer), message.is_spam)
            for message in candidates
        ]
        return self._measure_encoded(encoded)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def _verdict(self, measurement: RoniMeasurement) -> RoniVerdict:
        rejected = measurement.ham_as_ham_decrease >= self.config.ham_as_ham_threshold
        return RoniVerdict(measurement=measurement, rejected=rejected)

    def judge_tokens(self, tokens: Iterable[str], is_spam: bool = True) -> RoniVerdict:
        return self._verdict(self.measure_tokens(tokens, is_spam))

    def judge(self, message: LabeledMessage) -> RoniVerdict:
        return self._verdict(self.measure(message))

    def filter_messages(
        self, candidates: Iterable[LabeledMessage]
    ) -> tuple[list[LabeledMessage], list[LabeledMessage]]:
        """Split ``candidates`` into (accepted, rejected) lists.

        Routed through :meth:`measure_many`: each candidate still
        re-scores the validation set once per trial (the protocol
        demands it), but the batch encodes every candidate exactly
        once and sweeps trial-major, so the per-message string
        re-encode and memo cold starts of the one-at-a-time path are
        gone.
        """
        candidates = list(candidates)
        accepted: list[LabeledMessage] = []
        rejected: list[LabeledMessage] = []
        for message, measurement in zip(candidates, self.measure_many(candidates)):
            if self._verdict(measurement).rejected:
                rejected.append(message)
            else:
                accepted.append(message)
        return accepted, rejected
