"""The dynamic threshold defense (Section 5.2).

Distribution-shifting attacks raise the score of *everything* —
ham and spam alike.  Rankings, however, are largely invariant to such
shifts, so decision thresholds re-derived from the (possibly poisoned)
data can keep separating the classes where the static θ0 = 0.15,
θ1 = 0.9 fail.

Protocol, as in the paper: split the full training set in half; train
a filter ``F`` on one half; score every message of the other half
``V`` with ``F``; then choose thresholds through the utility

    g(t) = N_{S,<}(t) / (N_{S,<}(t) + N_{H,>}(t))

where ``N_{S,<}(t)`` counts spam in ``V`` scoring below ``t`` and
``N_{H,>}(t)`` counts ham scoring above.  ``g`` rises from 0 at t=0 to
1 at t=1; θ0 is placed where g reaches the lower quantile ``q`` (0.05
or 0.10) and θ1 where it reaches ``1 - q``.  The deployed filter is
trained on the full set with the fitted thresholds installed.
"""

from __future__ import annotations

import random
from bisect import bisect_left, bisect_right
from dataclasses import dataclass

from repro.corpus.dataset import Dataset
from repro.errors import DefenseError
from repro.spambayes.classifier import Classifier
from repro.spambayes.ndkernel import create_classifier
from repro.spambayes.filter import SpamFilter
from repro.spambayes.options import ClassifierOptions, DEFAULT_OPTIONS
from repro.spambayes.tokenizer import Tokenizer, DEFAULT_TOKENIZER

__all__ = ["DynamicThresholdConfig", "ThresholdFit", "DynamicThresholdDefense"]


@dataclass(frozen=True, slots=True)
class DynamicThresholdConfig:
    """Parameters of the threshold fit.

    ``quantile`` is the paper's g-target: 0.05 gives the wider unsure
    band ("Threshold-.05"), 0.10 the narrower ("Threshold-.10").
    """

    quantile: float = 0.05
    split_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 0.5:
            raise DefenseError(f"quantile must be in (0, 0.5), got {self.quantile}")
        if not 0.0 < self.split_fraction < 1.0:
            raise DefenseError(
                f"split_fraction must be in (0, 1), got {self.split_fraction}"
            )


@dataclass(frozen=True, slots=True)
class ThresholdFit:
    """Outcome of one threshold calibration."""

    ham_cutoff: float
    spam_cutoff: float
    quantile: float
    validation_size: int


def _utility_curve(ham_scores: list[float], spam_scores: list[float]):
    """Return ``g(t)`` over the pooled score values.

    Both inputs must be sorted.  ``g`` is evaluated *between* observed
    scores (at midpoints), which is where thresholds belong.
    """
    ham_scores = sorted(ham_scores)
    spam_scores = sorted(spam_scores)

    def g(threshold: float) -> float:
        spam_below = bisect_left(spam_scores, threshold)
        ham_above = len(ham_scores) - bisect_right(ham_scores, threshold)
        denominator = spam_below + ham_above
        if denominator == 0:
            # No boundary errors at all near t: treat as the midpoint of
            # the curve so the search keeps moving monotonically.
            return 0.5
        return spam_below / denominator

    return g


class DynamicThresholdDefense:
    """Fits θ0/θ1 from data and builds defended filters."""

    def __init__(
        self,
        config: DynamicThresholdConfig = DynamicThresholdConfig(),
        options: ClassifierOptions = DEFAULT_OPTIONS,
        tokenizer: Tokenizer = DEFAULT_TOKENIZER,
    ) -> None:
        self.config = config
        self.options = options
        self.tokenizer = tokenizer

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit_from_scores(self, ham_scores: list[float], spam_scores: list[float]) -> ThresholdFit:
        """Choose thresholds from held-out validation scores."""
        if not ham_scores or not spam_scores:
            raise DefenseError("threshold fit needs both ham and spam validation scores")
        g = _utility_curve(ham_scores, spam_scores)
        # Candidate thresholds: midpoints between adjacent distinct
        # pooled scores, plus the extremes.
        pooled = sorted(set(ham_scores) | set(spam_scores))
        candidates = [0.0]
        candidates.extend(
            (a + b) / 2.0 for a, b in zip(pooled, pooled[1:])
        )
        candidates.append(1.0)
        q = self.config.quantile
        ham_cutoff = max(
            (t for t in candidates if g(t) <= q),
            default=candidates[0],
        )
        spam_cutoff = min(
            (t for t in candidates if g(t) >= 1.0 - q),
            default=candidates[-1],
        )
        if spam_cutoff < ham_cutoff:
            # Heavily overlapped score distributions can cross the two
            # quantile targets; collapse to a single boundary rather
            # than emit an invalid (θ0 > θ1) pair.
            midpoint = (spam_cutoff + ham_cutoff) / 2.0
            ham_cutoff = spam_cutoff = midpoint
        return ThresholdFit(
            ham_cutoff=ham_cutoff,
            spam_cutoff=spam_cutoff,
            quantile=q,
            validation_size=len(ham_scores) + len(spam_scores),
        )

    def fit(self, training: Dataset, rng: random.Random) -> ThresholdFit:
        """Run the paper's split/train/score/fit pipeline on a dataset.

        ``training`` is the *full* (possibly poisoned) training set —
        attack messages ride along labeled as spam, exactly as they
        would in deployment.
        """
        half_f, half_v = training.split(self.config.split_fraction, rng)
        if not half_f.ham or not half_f.spam or not half_v.ham or not half_v.spam:
            raise DefenseError("both halves need ham and spam to fit thresholds")
        classifier = create_classifier(self.options)
        _learn_dataset_grouped(classifier, half_f, self.tokenizer)
        # One bulk pass per class: the validation halves share the
        # kernel's significance memo instead of re-deriving it per
        # message (scores are exactly the per-message ones).
        ham_scores = classifier.score_many(
            message.tokens(self.tokenizer) for message in half_v.ham
        )
        spam_scores = classifier.score_many(
            message.tokens(self.tokenizer) for message in half_v.spam
        )
        return self.fit_from_scores(ham_scores, spam_scores)

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def build_filter(self, training: Dataset, rng: random.Random) -> tuple[SpamFilter, ThresholdFit]:
        """Train on the full set and install the fitted thresholds."""
        fit = self.fit(training, rng)
        spam_filter = SpamFilter(options=self.options, tokenizer=self.tokenizer)
        _learn_dataset_grouped(spam_filter.classifier, training, self.tokenizer)
        spam_filter.set_thresholds(fit.ham_cutoff, fit.spam_cutoff)
        return spam_filter, fit


def _learn_dataset_grouped(
    classifier: Classifier, dataset: Dataset, tokenizer: Tokenizer
) -> None:
    """Train a dataset, collapsing identical token sets into one pass.

    Poisoned datasets contain hundreds of attack messages sharing a
    single (large) token frozenset; grouping turns their training cost
    from O(messages * tokens) into O(tokens).
    """
    groups: dict[tuple[bool, frozenset[str]], int] = {}
    for message in dataset:
        key = (message.is_spam, message.tokens(tokenizer))
        groups[key] = groups.get(key, 0) + 1
    for (is_spam, tokens), count in groups.items():
        classifier.learn_repeated(tokens, is_spam, count)
