"""Parallel experiment execution engine.

The experiments of Sections 4-5 decompose into independent, seeded
units of work — folds of a cross-validated sweep, repetitions of a
RONI calibration, targets of a focused attack.  This package runs
those units across worker processes without changing a single result:

* :mod:`repro.engine.runner` — :class:`ParallelRunner`, the one
  concurrency primitive: map a worker function over tasks with a
  shared read-only context, results in task order, sequential when
  ``workers <= 1``;
* :mod:`repro.engine.seeding` — per-task seed derivation shared with
  the benchmark harness, so parallel and sequential runs consume
  identical random streams;
* :mod:`repro.engine.sweep` — the K-fold attack-sweep engine behind
  Figures 1 and 5: fold models derived from one shared full-inbox
  classifier by snapshot/unlearn/restore, deterministic fold fan-out,
  bulk scoring via :meth:`Classifier.score_many`;
* :mod:`repro.engine.replicate` — multi-seed replication: the same
  scenario at N root seeds, flattened into one shared
  :class:`WorkerPool` (no per-seed barrier), pooled into a
  :class:`~repro.experiments.results.ReplicatedRecord` with per-point
  mean/std/95%-CI error bars.  (Imported lazily by
  :mod:`repro.scenarios`, which re-exports ``replicate_scenario``.)
* :mod:`repro.engine.supervise` — worker supervision: per-wave chunk
  deadlines, crash detection with pool respawn, bounded retry, and
  graceful degradation to in-process execution — all preserving the
  engine's bit-identical determinism contract;
* :mod:`repro.engine.faults` — deterministic, seed-driven fault
  injection (``REPRO_FAULTS``) that makes those failure paths
  routinely executable in tests and CI;
* :mod:`repro.engine.checkpoint` — per-replica checkpoints so a killed
  replication resumes, reproducing uninterrupted output byte-for-byte.

Every experiment driver accepts ``workers`` in its config (surfaced as
``--workers N`` on the CLI).  The default of 1 runs everything in the
parent process; any other value changes wall-clock time only.
"""

from repro.engine.checkpoint import ReplicaStore
from repro.engine.faults import FaultPlan, FaultSpec, parse_faults, use_faults
from repro.engine.runner import ParallelRunner, WorkerPool, resolve_workers, use_worker_pool
from repro.engine.seeding import drawn_seeds, resolve_root_seed
from repro.engine.supervise import (
    SupervisePolicy,
    SupervisedPool,
    current_policy,
    supervised_map,
    use_supervision,
)
from repro.engine.sweep import (
    AttackSweepPoint,
    IncrementalAttackTrainer,
    SweepResult,
    SweepSpec,
    attack_message_count,
    evaluate_dataset,
    run_attack_sweeps,
    sequential_reference_sweep,
    train_grouped,
    unlearn_grouped,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "ParallelRunner",
    "ReplicaStore",
    "SupervisePolicy",
    "SupervisedPool",
    "WorkerPool",
    "current_policy",
    "parse_faults",
    "resolve_workers",
    "supervised_map",
    "use_faults",
    "use_supervision",
    "use_worker_pool",
    "drawn_seeds",
    "resolve_root_seed",
    "AttackSweepPoint",
    "IncrementalAttackTrainer",
    "SweepResult",
    "SweepSpec",
    "attack_message_count",
    "evaluate_dataset",
    "run_attack_sweeps",
    "sequential_reference_sweep",
    "train_grouped",
    "unlearn_grouped",
]
