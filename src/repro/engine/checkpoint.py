"""Per-replica checkpointing for :func:`repro.engine.replicate.replicate_scenario`.

A replication is embarrassingly resumable: each replica's
:class:`~repro.experiments.results.ExperimentRecord` is a pure
function of its root seed, so a killed 20-seed run that completed 14
replicas owes the world exactly 6 more.  :class:`ReplicaStore`
persists each replica record the moment it completes; on resume the
replication loads what exists, runs only the missing seeds, and pools
in seed order — producing **byte-identical** output to an
uninterrupted run (the records never serialize ephemera like worker
counts, a property the engine's determinism suite already proves).

Writes are atomic (``tmp`` + ``os.replace``), so a SIGKILL mid-write
leaves either the previous state or the new one, never a torn file; a
torn/foreign file on load is treated as absent, not fatal — the
replica simply re-runs.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import PersistenceError
from repro.experiments.results import ExperimentRecord
from repro.storage.io import atomic_write_text

__all__ = ["ReplicaStore"]

_FORMAT = "repro-replica-checkpoint/1"


class ReplicaStore:
    """One directory of per-seed replica checkpoints for one scenario.

    Layout: ``<root>/<scenario>.seed<seed>.json``, each file a
    ``{"format", "scenario", "seed", "record"}`` envelope.  The
    scenario name and seed ride inside the file as well as in the name
    so a checkpoint can never be replayed into the wrong replication.
    """

    def __init__(self, root: str | Path, scenario: str) -> None:
        self.root = Path(root)
        self.scenario = str(scenario)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise PersistenceError(
                f"cannot create checkpoint directory {self.root}: {exc}"
            ) from exc

    def path(self, seed: int) -> Path:
        return self.root / f"{self.scenario}.seed{seed}.json"

    def save(self, seed: int, record: ExperimentRecord) -> None:
        """Atomically persist ``record`` as the checkpoint for ``seed``."""
        envelope = {
            "format": _FORMAT,
            "scenario": self.scenario,
            "seed": int(seed),
            "record": record.as_dict(),
        }
        target = self.path(seed)
        try:
            # tmp + os.replace, via the storage layer's shared helper.
            atomic_write_text(target, json.dumps(envelope, indent=2))
        except OSError as exc:
            raise PersistenceError(
                f"cannot write checkpoint {target}: {exc}"
            ) from exc

    def load(self, seed: int) -> ExperimentRecord | None:
        """The checkpointed record for ``seed``, or ``None``.

        ``None`` covers every unusable state — missing, torn JSON,
        wrong scenario/seed, malformed record — because the correct
        response to all of them is the same: recompute the replica.
        """
        target = self.path(seed)
        try:
            data = json.loads(target.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict) or data.get("format") != _FORMAT:
            return None
        if data.get("scenario") != self.scenario or data.get("seed") != int(seed):
            return None
        try:
            return ExperimentRecord.from_dict(data["record"])
        except (KeyError, TypeError, ValueError):
            return None

    def completed_seeds(self) -> list[int]:
        """Seeds with a loadable checkpoint, sorted."""
        seeds = []
        prefix = f"{self.scenario}.seed"
        for entry in self.root.glob(f"{prefix}*.json"):
            raw = entry.name[len(prefix) : -len(".json")]
            try:
                seed = int(raw)
            except ValueError:
                continue
            if self.load(seed) is not None:
                seeds.append(seed)
        return sorted(seeds)
