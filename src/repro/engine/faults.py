"""Deterministic, seed-driven fault injection for the execution engine.

Production mail systems treat worker death as routine; this library's
engine must too — but a failure path that is never executed is a
failure path that does not work.  This module makes the engine's
failure paths *routinely executable*: a :class:`FaultPlan` describes,
as pure data, which faults fire where, and the engine's worker
entrypoints call :func:`inject` at named **sites** so a test (or a CI
leg) can kill a worker mid-chunk, stall a chunk past its deadline, or
yank a shared-memory segment out from under its readers — on demand,
reproducibly.

Activation
----------

Two equivalent routes:

* the ``REPRO_FAULTS`` environment variable, e.g.
  ``REPRO_FAULTS="crash:p=0.2,hang:p=0.05:s=0.5,seed=7"`` — parsed
  once per distinct value, inherited by forked workers, which is what
  lets a *worker-side* site fire in a process the parent never talks
  to directly;
* programmatically, :func:`use_faults` installs a plan for the
  duration of a ``with`` block (module-global, so a pool forked inside
  the block inherits it).

Determinism
-----------

Every fire/skip decision is a pure function of ``(plan seed, mode,
site, key)``: the first 8 bytes of a SHA-256 digest, scaled to [0, 1)
and compared against the fault's probability.  No RNG state, no wall
clock — the same plan over the same keys fires the same faults, run
after run.  Supervision keys include the retry attempt number, so a
chunk that crashed on attempt 0 draws a *fresh* decision on attempt 1
(otherwise a crash fault would chase its own retries forever), while
``p=1.0`` still forces the fault on every attempt — the
retries-exhausted degradation path.

The harness never fires in inline execution: injection sites live in
the pool worker entrypoints and the supervisor's dispatch loop, so a
sequential (``workers=1``) run is always the clean reference the
differential fault suite compares against.

Faults
------

``crash``
    ``os._exit(13)`` — the worker dies without unwinding, exactly like
    a SIGKILL'd or segfaulted child.  The pool breaks
    (``BrokenProcessPool``); supervision respawns it.
``hang``
    ``time.sleep(s)`` (default 0.25s) — the chunk stalls past its
    deadline but *would* eventually complete, the classic wedged
    worker.  With no deadline configured the run merely slows down,
    which is why hang injection alone can never corrupt results.
``shm-unlink``
    Cooperative: :func:`should_unlink` tells the caller (the
    supervisor) to remove a shared-memory segment's *name* while
    readers still hold handles — the orphaned-parent scenario.  The
    harness never unlinks anything itself; the segment layer owns
    that (:func:`repro.engine.sharedmem.drop_segment_name`).
"""

from __future__ import annotations

import hashlib
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import ConfigurationError

__all__ = [
    "FAULTS_ENV",
    "FaultPlan",
    "FaultSpec",
    "active_plan",
    "inject",
    "parse_faults",
    "should_unlink",
    "use_faults",
]

FAULTS_ENV = "REPRO_FAULTS"
"""Environment spec, e.g. ``crash:p=0.1,hang:p=0.05:s=0.5,seed=3``."""

MODES: tuple[str, ...] = ("crash", "hang", "shm-unlink")
"""The fault modes a :class:`FaultSpec` can carry."""

CRASH_EXIT_CODE = 13
"""The ``os._exit`` status an injected crash dies with — distinctive
enough that a test can tell an injected death from a real one."""

# Which injection sites each mode applies to.  crash/hang fire inside
# worker processes as a chunk executes; shm-unlink fires parent-side,
# in the supervisor, between waves.
_MODE_SITES = {
    "crash": ("worker-chunk", "stream-task"),
    "hang": ("worker-chunk", "stream-task"),
    "shm-unlink": ("shm-unlink",),
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault clause: a mode, a probability, and its parameters."""

    mode: str
    p: float
    seconds: float = 0.25
    """Stall duration for ``hang``; ignored by the other modes."""

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ConfigurationError(
                f"unknown fault mode {self.mode!r}; known: {', '.join(MODES)}"
            )
        if not 0.0 <= self.p <= 1.0:
            raise ConfigurationError(
                f"fault probability must be in [0, 1], got {self.p}"
            )
        if self.seconds < 0:
            raise ConfigurationError(
                f"hang duration must be >= 0, got {self.seconds}"
            )


def _draw(seed: int, mode: str, site: str, key: str) -> float:
    """The deterministic [0, 1) decision value for one (site, key)."""
    digest = hashlib.sha256(f"{seed}|{mode}|{site}|{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault clauses; decisions are pure hash draws."""

    specs: tuple[FaultSpec, ...]
    seed: int = 0

    def decide(self, site: str, key: str) -> FaultSpec | None:
        """The first clause that fires at ``(site, key)``, if any."""
        for spec in self.specs:
            if site not in _MODE_SITES[spec.mode]:
                continue
            if _draw(self.seed, spec.mode, site, key) < spec.p:
                return spec
        return None

    def __bool__(self) -> bool:
        return any(spec.p > 0 for spec in self.specs)


def parse_faults(text: str | None) -> FaultPlan | None:
    """Parse a ``REPRO_FAULTS`` value; ``None``/empty means no plan.

    Grammar: comma-separated clauses.  Each fault clause is
    ``mode[:param=value]*`` (params: ``p`` for all modes, ``s`` —
    stall seconds — for ``hang``); a bare ``seed=N`` clause seeds the
    whole plan's decision hashes.
    """
    if text is None:
        return None
    text = text.strip()
    if not text:
        return None
    specs: list[FaultSpec] = []
    seed = 0
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        if clause.startswith("seed="):
            try:
                seed = int(clause[len("seed="):])
            except ValueError:
                raise ConfigurationError(
                    f"{FAULTS_ENV}: bad seed clause {clause!r}"
                ) from None
            continue
        mode, _, rest = clause.partition(":")
        params: dict[str, float] = {}
        if rest:
            for pair in rest.split(":"):
                name, separator, raw = pair.partition("=")
                if not separator:
                    raise ConfigurationError(
                        f"{FAULTS_ENV}: expected param=value in {clause!r}, "
                        f"got {pair!r}"
                    )
                try:
                    params[name.strip()] = float(raw)
                except ValueError:
                    raise ConfigurationError(
                        f"{FAULTS_ENV}: bad value for {name!r} in {clause!r}"
                    ) from None
        unknown = set(params) - {"p", "s"}
        if unknown:
            raise ConfigurationError(
                f"{FAULTS_ENV}: unknown param(s) {sorted(unknown)} in {clause!r}"
            )
        specs.append(
            FaultSpec(
                mode=mode.strip(),
                p=params.get("p", 1.0),
                seconds=params.get("s", 0.25),
            )
        )
    if not specs:
        return None
    return FaultPlan(specs=tuple(specs), seed=seed)


# ----------------------------------------------------------------------
# The active plan
# ----------------------------------------------------------------------

# Programmatic override (use_faults).  Module-global rather than
# thread-local on purpose: worker processes fork the whole module
# state, so a plan installed before a pool starts is live inside its
# workers too.  _UNSET means "no override, consult the environment";
# an installed None means "explicitly no faults" — how a differential
# test runs its clean reference while REPRO_FAULTS is exported.
_UNSET: Any = object()
_installed_plan: "FaultPlan | None | Any" = _UNSET
# parse_faults cache keyed by the raw env string — the env is read on
# every decision (workers inherit it through fork OR through an
# explicitly-set environment), but parsed once per distinct value.
_env_cache: tuple[str | None, FaultPlan | None] = (None, None)


def active_plan() -> FaultPlan | None:
    """The plan in force: programmatic override, else ``REPRO_FAULTS``."""
    global _env_cache
    if _installed_plan is not _UNSET:
        return _installed_plan
    text = os.environ.get(FAULTS_ENV)
    if text != _env_cache[0]:
        _env_cache = (text, parse_faults(text))
    return _env_cache[1]


@contextmanager
def use_faults(plan: FaultPlan | None) -> Iterator[FaultPlan | None]:
    """Install ``plan`` for the duration of the block (module-global).

    ``use_faults(None)`` explicitly *disables* injection within the
    block even when ``REPRO_FAULTS`` is exported — the clean-reference
    escape hatch.
    """
    global _installed_plan
    previous = _installed_plan
    _installed_plan = plan
    try:
        yield plan
    finally:
        _installed_plan = previous


# True only in pool worker processes (set by the pool initializers
# after the fork).  crash/hang sites are worker-only: inline execution
# — sequential runs, and the supervisor's degraded fallback — must
# stay the clean reference the differential suite compares against,
# and an injected os._exit in the parent would take the whole run.
_is_worker = False


def mark_worker_process() -> None:
    """Declare this process a pool worker (called by pool initializers)."""
    global _is_worker
    _is_worker = True


def in_worker_process() -> bool:
    return _is_worker


def inject(site: str, key: str) -> None:
    """Fire the active plan's verdict for ``(site, key)``, if any.

    ``crash`` never returns (``os._exit``); ``hang`` sleeps and
    returns; no plan, or a skip draw, is a no-op.  Worker-side only:
    outside a pool worker process this is unconditionally a no-op.
    """
    if not _is_worker:
        return
    plan = active_plan()
    if plan is None:
        return
    spec = plan.decide(site, key)
    if spec is None:
        return
    if spec.mode == "crash":
        # Die like a SIGKILL'd child: no unwinding, no atexit, no
        # finally blocks — the supervisor must cope with the mess.
        os._exit(CRASH_EXIT_CODE)
    elif spec.mode == "hang":
        time.sleep(spec.seconds)


def should_unlink(key: str) -> bool:
    """True when the plan wants a segment name dropped at ``key``.

    The cooperative half of ``shm-unlink``: the supervisor asks before
    each dispatch wave and performs the unlink itself, so the harness
    stays ignorant of segment bookkeeping.
    """
    plan = active_plan()
    if plan is None:
        return False
    return plan.decide("shm-unlink", key) is not None
