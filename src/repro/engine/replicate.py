"""Multi-seed replication: one scenario, N seeds, pooled error bars.

Every figure in the paper pools repeated randomized trials — the
curves are means over folds *and* seeds, not single runs.  This module
is the engine layer for that: :func:`replicate_scenario` runs any
registered scenario at N root seeds and pools the per-seed
:class:`~repro.experiments.results.ExperimentRecord`\\s into one
:class:`~repro.experiments.results.ReplicatedRecord` carrying per-x
mean, sample std and a 95% confidence interval for every rate of every
curve.

**Flattened scheduling.**  A replication is not a loop over seeds.
With ``workers > 1`` it opens ONE shared
:class:`~repro.engine.runner.WorkerPool` and runs the replicas on
concurrent parent threads, each with the pool activated
(:func:`~repro.engine.runner.use_worker_pool`) — so every
``ParallelRunner.map`` inside every replica's protocol drains into the
same worker set.  The (seed × spec × fold) work flattens: a 10-seed,
10-fold sweep is 100 independent tasks saturating all workers, with no
per-seed barrier — while seed A's parent thread is still generating its
corpus, the pool is busy with seed B's folds.  A naive sequential seed
loop pays pool startup per seed and idles every worker during each
seed's preparation stage; ``benchmarks/bench_replication.py`` measures
the difference.

On the NumPy kernel, each replica's encoded inbox crosses into the
pool as a shared-memory CSR segment
(:mod:`repro.engine.sharedmem`) rather than a per-map pickle; the
pool adopts every segment shipped through it and unlinks them all
when the ``with WorkerPool(...)`` block closes, so a replication
leaves ``/dev/shm`` exactly as it found it.

**Determinism.**  Replica ``i`` runs at root seed
``spawn_seed(base_seed, "replicate") || "replica:i"`` — a pure
function of ``(base_seed, i)``, independent of thread scheduling,
worker count and ``PYTHONHASHSEED`` (the interning layer assigns token
IDs in sorted order, see
:meth:`~repro.spambayes.token_table.TokenTable.encode_unique`).  Each
replica's record is exactly what a single ``run_scenario`` at that
seed produces, the pooled record lists the replica seeds so any one of
them can be re-run standalone, and the serialized JSON is
byte-identical across runs, hash seeds and ``--workers`` values.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import replace
from typing import Any, Mapping, Sequence, TYPE_CHECKING

from repro.engine import supervise
from repro.engine.checkpoint import ReplicaStore
from repro.engine.runner import WorkerPool, resolve_workers, use_worker_pool
from repro.errors import EngineError
from repro.experiments.results import ExperimentRecord, ReplicatedRecord
from repro.rng import SeedSpawner

if TYPE_CHECKING:  # runtime import would cycle via repro.scenarios
    from repro.scenarios.spec import ScenarioSpec

__all__ = ["replica_seeds", "replicate_scenario"]


def replica_seeds(base_seed: int, count: int) -> list[int]:
    """The root seeds replicas ``0..count-1`` run at.

    Spawned (``SHA-256(base_seed || label)``) rather than consecutive:
    ``base_seed`` and ``base_seed + 1`` replications share no replica
    seeds, so pooling both never silently double-counts a trial.
    """
    if count < 1:
        raise EngineError(f"replication needs >= 1 seed, got {count}")
    spawner = SeedSpawner(base_seed).spawn("replicate")
    return [spawner.child_seed(f"replica:{index}") for index in range(count)]


def _json_safe(value: Any) -> Any:
    """Render an override value into the JSON-stable config block."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in sorted(value.items())}
    return repr(value)


def _resolve_spec(scenario: "str | ScenarioSpec") -> "ScenarioSpec":
    # Late import: repro.scenarios imports the engine package.
    from repro.scenarios import get_scenario

    return get_scenario(scenario) if isinstance(scenario, str) else scenario


def replicate_scenario(
    scenario: "str | ScenarioSpec",
    *,
    seeds: int | Sequence[int] = 8,
    base_seed: int = 0,
    overrides: Mapping[str, Any] | None = None,
    workers: int | None = 1,
    base_config: Any | None = None,
    extra_config: Mapping[str, Any] | None = None,
    checkpoint_dir: str | None = None,
) -> ReplicatedRecord:
    """Run ``scenario`` at N seeds and pool the results.

    ``seeds`` is either a replica count (seeds derived from
    ``base_seed`` via :func:`replica_seeds`) or an explicit seed
    sequence.  ``overrides`` are config-field overrides applied to
    every replica — exactly the ``--set`` surface of ``run-scenario``.
    ``base_config`` is the alternative for callers that already built a
    config (the CLI's ``--scale paper`` path): each replica runs
    ``dataclasses.replace(base_config, seed=..., workers=...)``;
    mixing it with ``overrides`` is an error.  ``extra_config`` entries
    are merged (JSON-rendered) into the pooled record's config block —
    how the ``base_config`` path records what the config was built
    from, since the record cannot infer it.

    ``workers <= 1`` runs the replicas sequentially, entirely in the
    parent process.  ``workers > 1`` flattens every replica's internal
    fan-out into one shared :class:`WorkerPool` (see the module
    docstring).  The returned record is identical either way.

    ``checkpoint_dir`` makes the replication resumable: each replica
    record is persisted (atomically) the moment it completes, replicas
    already checkpointed there are loaded instead of re-run, and
    because every record is a pure function of its seed the pooled
    output is byte-identical to an uninterrupted run.  When a
    supervision policy is ambient (:func:`repro.engine.supervise.current_policy`)
    the shared pool is a :class:`~repro.engine.supervise.SupervisedPool`,
    so worker crashes and hangs inside any replica are retried rather
    than fatal.
    """
    from repro.scenarios import run_scenario  # late: import cycle

    spec = _resolve_spec(scenario)
    if isinstance(seeds, int):
        seed_list = replica_seeds(base_seed, seeds)
    else:
        seed_list = [int(seed) for seed in seeds]
        if not seed_list:
            raise EngineError("replication needs >= 1 seed")
        if len(set(seed_list)) != len(seed_list):
            raise EngineError(f"replica seeds must be distinct, got {seed_list}")
    if base_config is not None and overrides:
        raise EngineError("pass either base_config or overrides, not both")
    # seed/workers are replication-owned: every replica runs at its
    # derived seed with the pool's worker count.  Accepting them as
    # overrides would silently archive a config block contradicting
    # the replica_seeds that actually ran.
    for reserved in ("seed", "workers"):
        if overrides and reserved in overrides:
            raise EngineError(
                f"override {reserved!r} conflicts with replication; use the "
                f"{'base_seed' if reserved == 'seed' else 'workers'} parameter"
            )
    pool_workers = resolve_workers(workers)

    def replica_config(seed: int, config_workers: int) -> Any:
        if base_config is not None:
            return replace(base_config, seed=seed, workers=config_workers)
        merged = dict(overrides or {})
        merged["seed"] = seed
        merged["workers"] = config_workers
        return spec.build_config(**merged)

    def run_replica(seed: int, config_workers: int) -> ExperimentRecord:
        outcome = run_scenario(spec, config=replica_config(seed, config_workers))
        if outcome.record is None:
            raise EngineError(
                f"scenario {spec.name!r} produces no serializable record; "
                "replication has nothing to pool"
            )
        return outcome.record

    store = ReplicaStore(checkpoint_dir, spec.name) if checkpoint_dir else None
    records: list[ExperimentRecord | None] = [None] * len(seed_list)
    todo = list(range(len(seed_list)))
    if store is not None:
        todo = []
        for index, seed in enumerate(seed_list):
            cached = store.load(seed)
            if cached is not None:
                records[index] = cached
            else:
                todo.append(index)

    def finish_replica(index: int, record: ExperimentRecord) -> None:
        records[index] = record
        if store is not None:
            store.save(seed_list[index], record)

    policy = supervise.current_policy()
    if pool_workers <= 1 or len(todo) <= 1:
        # No flattening possible — but a lone replica still honours the
        # caller's worker count through its own private fold fan-out.
        config_workers = pool_workers if len(todo) == 1 else 1
        for index in todo:
            finish_replica(index, run_replica(seed_list[index], config_workers))
    else:
        # One replica thread per pool worker: a replica thread spends
        # most of its life blocked on pool results, so whenever one is
        # in its parent-side preparation stage (corpus generation,
        # full-model training) the other threads' queued fold tasks
        # keep the workers busy.  Exceeding the pool width buys no
        # further queue depth worth its GIL churn (measured).
        thread_count = min(len(todo), max(2, pool_workers))
        pool_factory = (
            (lambda: supervise.SupervisedPool(pool_workers, policy=policy))
            if policy is not None
            else (lambda: WorkerPool(pool_workers))
        )
        with pool_factory() as pool:

            def threaded_replica(index: int) -> tuple[int, ExperimentRecord]:
                with use_worker_pool(pool), supervise.use_supervision(policy):
                    return index, run_replica(seed_list[index], pool_workers)

            with ThreadPoolExecutor(max_workers=thread_count) as threads:
                futures = [threads.submit(threaded_replica, index) for index in todo]
                try:
                    for future in as_completed(futures):
                        index, record = future.result()
                        finish_replica(index, record)
                except BaseException:
                    for future in futures:
                        future.cancel()
                    raise

    config: dict[str, Any] = {
        "scenario": spec.name,
        "n_seeds": len(seed_list),
        "base_seed": base_seed if isinstance(seeds, int) else None,
        "replica_seeds": list(seed_list),
        "overrides": {
            key: _json_safe(value) for key, value in sorted((overrides or {}).items())
        },
    }
    for key, value in (extra_config or {}).items():
        config[str(key)] = _json_safe(value)
    return ReplicatedRecord.pool(records, config=config)
