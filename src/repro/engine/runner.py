"""Deterministic fan-out of experiment tasks over worker processes.

:class:`ParallelRunner` is the one concurrency primitive in this
library.  It maps a picklable worker function over a task list with a
shared, read-only *context* object, and guarantees:

* **identical results at any worker count** — results are returned in
  task order, every task carries its own pre-derived seed (see
  :mod:`repro.engine.seeding`), and workers never share mutable state;
* **zero overhead in sequential mode** — ``workers <= 1`` runs the
  exact same worker function inline, in the parent process, with the
  parent's context object.  The sequential path *is* the parallel path
  minus the process pool, which is what makes equivalence testable;
* **one context transfer per worker, not per task** — the context
  (corpus, trained classifiers, attack objects) is shipped through the
  pool initializer, so a 10-fold sweep pickles the inbox ``min(workers,
  tasks)`` times, not 10 times.

The worker function must be a module-level function (picklable by
reference) of signature ``fn(context, task) -> result``.  Tasks and
results cross process boundaries, so they must pickle; everything the
experiment layer ships (datasets, classifiers, attacks, confusion
counts) does.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Callable, Sequence, TypeVar

from repro.errors import EngineError

__all__ = ["ParallelRunner", "resolve_workers"]

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")

# Per-worker-process slots, populated once by the pool initializer.
_worker_fn: Callable[[Any, Any], Any] | None = None
_worker_context: Any = None


def _initialize_worker(fn: Callable[[Any, Any], Any], context: Any) -> None:
    global _worker_fn, _worker_context
    _worker_fn = fn
    _worker_context = context


def _run_indexed_task(index: int, task: Any) -> tuple[int, Any]:
    assert _worker_fn is not None, "worker used before initialization"
    return index, _worker_fn(_worker_context, task)


def resolve_workers(workers: int | None) -> int:
    """Normalize a ``--workers`` value: ``None``/``0`` means all CPUs."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise EngineError(f"workers must be >= 0 (0 = all CPUs), got {workers}")
    return workers


class ParallelRunner:
    """Maps ``fn(context, task)`` over tasks, optionally in a process pool."""

    def __init__(self, workers: int | None = 1) -> None:
        self.workers = resolve_workers(workers)

    def map(
        self,
        fn: Callable[[Any, TaskT], ResultT],
        context: Any,
        tasks: Sequence[TaskT],
    ) -> list[ResultT]:
        """Run every task; return results in task order.

        A worker exception propagates to the caller (with the original
        traceback rendered by ``concurrent.futures``) and cancels every
        task still queued, so a failed sweep dies promptly instead of
        burning through the rest of the fan-out first.
        """
        tasks = list(tasks)
        if self.workers <= 1 or len(tasks) <= 1:
            return [fn(context, task) for task in tasks]
        results: list[Any] = [None] * len(tasks)
        max_workers = min(self.workers, len(tasks))
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_initialize_worker,
            initargs=(fn, context),
        ) as executor:
            futures = [
                executor.submit(_run_indexed_task, index, task)
                for index, task in enumerate(tasks)
            ]
            try:
                for future in as_completed(futures):
                    index, result = future.result()
                    results[index] = result
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
        return results

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelRunner(workers={self.workers})"
