"""Deterministic fan-out of experiment tasks over worker processes.

:class:`ParallelRunner` is the one concurrency primitive in this
library.  It maps a picklable worker function over a task list with a
shared, read-only *context* object, and guarantees:

* **identical results at any worker count** — results are returned in
  task order, every task carries its own pre-derived seed (see
  :mod:`repro.engine.seeding`), and workers never share mutable state;
* **zero overhead in sequential mode** — ``workers <= 1`` runs the
  exact same worker function inline, in the parent process, with the
  parent's context object.  The sequential path *is* the parallel path
  minus the process pool, which is what makes equivalence testable;
* **one context transfer per worker, not per task** — the context
  (corpus, trained classifiers, attack objects) is shipped through the
  pool initializer, so a 10-fold sweep pickles the inbox ``min(workers,
  tasks)`` times, not 10 times.

The worker function must be a module-level function (picklable by
reference) of signature ``fn(context, task) -> result``.  Tasks and
results cross process boundaries, so they must pickle; everything the
experiment layer ships (datasets, classifiers, attacks, confusion
counts) does.

Shared pools
------------

A plain ``ParallelRunner.map`` owns its pool: it forks workers, runs
its tasks, and tears the pool down — correct for one experiment, but a
*replication* (the same scenario at N seeds,
:mod:`repro.engine.replicate`) would pay pool startup N·(maps per run)
times and, worse, leave every worker idle while the parent prepares
the next seed's corpus.  :class:`WorkerPool` is the alternative: one
persistent process pool that any number of ``map`` calls — issued from
any number of parent threads — drain into concurrently.  Activating it
(:func:`use_worker_pool`, thread-local) reroutes every
``ParallelRunner.map`` on that thread into the shared pool, so fold
tasks from many seeds interleave in one worker set with no per-seed
barrier.  Results are unchanged by construction: each ``map`` still
returns its own results in its own task order, and per-task seeds never
depend on scheduling.

Because one pool serves many ``(fn, context)`` pairs, contexts cannot
ride the pool initializer.  Instead each ``map`` call pickles its
``(fn, context)`` pair once into a blob, splits its tasks into
``min(workers, tasks)`` contiguous chunks, and submits each chunk with
the blob attached; workers unpickle the pair once per (worker,
map-call) and serve the rest of the call from a small cache.  Context
transfer count therefore matches the private-pool initializer path
exactly, while chunks from concurrent calls still interleave freely in
the shared worker set.
"""

from __future__ import annotations

import os
import pickle
import threading
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor, as_completed, wait
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence, TypeVar

from repro.engine import faults, sharedmem
from repro.errors import EngineError

__all__ = [
    "ParallelRunner",
    "WorkerPool",
    "active_worker_pool",
    "resolve_workers",
    "use_worker_pool",
]

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")

# Per-worker-process slots, populated once by the pool initializer.
_worker_fn: Callable[[Any, Any], Any] | None = None
_worker_context: Any = None


def _initialize_worker(fn: Callable[[Any, Any], Any], context: Any) -> None:
    global _worker_fn, _worker_context
    _worker_fn = fn
    _worker_context = context
    faults.mark_worker_process()


def _run_indexed_task(index: int, task: Any) -> tuple[int, Any]:
    assert _worker_fn is not None, "worker used before initialization"
    return index, _worker_fn(_worker_context, task)


def resolve_workers(workers: int | None) -> int:
    """Normalize a ``--workers`` value: ``None``/``0`` means all CPUs."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise EngineError(f"workers must be >= 0 (0 = all CPUs), got {workers}")
    return workers


# ----------------------------------------------------------------------
# The shared worker pool
# ----------------------------------------------------------------------

# Worker-side cache of unpickled (fn, context) pairs, keyed by map-call
# token, in LRU order.  A replication keeps at most (parent threads,
# i.e. pool width) calls in flight, so the pool sizes the cache from
# its own width at worker startup (via the initializer) — the live set
# always fits, while finished calls' contexts — potentially a whole
# tokenized inbox plus trained model — roll out instead of staying
# pinned in every worker for the pool's lifetime.  Evicting a
# still-live entry is only a re-unpickle, never an error.
_shared_entries: "OrderedDict[tuple[int, int], tuple[Callable, Any]]" = OrderedDict()
_shared_entry_slots = 8


def _initialize_shared_worker(slots: int) -> None:
    global _shared_entry_slots
    _shared_entry_slots = slots
    faults.mark_worker_process()


def _run_shared_chunk(
    token: tuple[int, int],
    blob: bytes,
    start: int,
    tasks: Sequence[Any],
    fault_key: str | None = None,
) -> tuple[int, list[Any]]:
    entry = _shared_entries.get(token)
    if entry is None:
        entry = pickle.loads(blob)
        _shared_entries[token] = entry
        while len(_shared_entries) > _shared_entry_slots:
            _shared_entries.popitem(last=False)
    else:
        _shared_entries.move_to_end(token)
    fn, context = entry
    results: list[Any] = []
    for offset, task in enumerate(tasks):
        if fault_key is not None:
            # Mid-chunk injection point: a crash here discards the
            # chunk's partial results with the process, so the retry
            # recomputes the whole chunk from a freshly-unpickled
            # context — which is what keeps retries bit-identical.
            faults.inject("worker-chunk", f"{fault_key}:{offset}")
        results.append(fn(context, task))
    return start, results


def _run_direct_blob(blob: bytes, task: Any) -> Any:
    """Run one task shipped without the chunk-blob caching protocol.

    Tiny maps (a single task) skip the per-call-token worker cache:
    the ``(fn, context)`` blob the parent already pickled (to size the
    ship/inline decision) rides the submit once and is unpickled once,
    instead of being shipped, cached and evicted under a call token.
    Computes the exact same ``fn(context, task)`` as every other path.
    """
    fn, context = pickle.loads(blob)
    return fn(context, task)


# Maps with at most this many tasks skip the chunk-blob protocol.
_TINY_MAP_TASKS = 1

# A tiny map ships to the pool only while its (fn, context) pickle
# stays under this; past it, shipping moves more bytes than the lone
# task can plausibly amortize.
_TINY_MAP_SHIP_LIMIT = 4 << 20


def _tiny_map_ships(blob_size: int) -> bool:
    """Should a tiny (single-task) map ship to the shared pool at all?

    A lone task gains nothing from the pool *by itself* — the win is
    concurrency with other threads' maps (each replica of a stream
    replication submits one whole-stream task; on a multi-core box the
    pool runs them truly in parallel).  Two situations where shipping
    is pure overhead, measured as the 0.98x pooled-stream regression in
    ``BENCH_stream.json``:

    * **No parallel hardware.**  With one CPU the pool serializes
      everything anyway, so the pickle round-trip is the only effect.
    * **An outsized context.**  Shipping multi-megabyte state across a
      process boundary for a single task costs more than the task's
      share of any concurrency it buys.

    Inline execution computes the identical ``fn(context, task)`` —
    records are byte-identical either way, which
    ``tests/test_engine.py`` pins by monkeypatching this predicate in
    both directions.
    """
    if (os.cpu_count() or 1) < 2:
        return False
    return blob_size <= _TINY_MAP_SHIP_LIMIT


def _chunked(tasks: Sequence[Any], chunks: int) -> Iterator[tuple[int, Sequence[Any]]]:
    """Split tasks into ``chunks`` contiguous, near-equal runs.

    Deterministic and order-preserving: chunk boundaries depend only on
    ``(len(tasks), chunks)``, and reassembling the chunk results by
    start index reproduces task order exactly.
    """
    n = len(tasks)
    chunks = min(chunks, n)
    base, extra = divmod(n, chunks)
    start = 0
    for index in range(chunks):
        size = base + (1 if index < extra else 0)
        yield start, tasks[start : start + size]
        start += size


def _drain(futures: Sequence[Any]) -> None:
    """Cancel what can be cancelled, then wait out what cannot.

    A failed map must not leave in-flight sibling tasks running
    unattended: their completions would interleave with (and in the
    shared-cache worst case, race) whatever the caller submits next.
    Cancelled futures resolve immediately; already-running ones are
    waited to completion.  Exceptions stay inside their futures.
    """
    for future in futures:
        future.cancel()
    wait(futures)


def _kill_executor(executor: Executor) -> None:
    """Tear an executor down even when its workers are dead or wedged.

    ``shutdown(wait=True)`` on a pool with a hung worker blocks until
    the worker comes back — which a wedged worker never does.  So:
    terminate every worker process first (SIGTERM, then SIGKILL for
    any survivor), then shut the bookkeeping down without waiting.
    Reaches into ``_processes`` (stable private API since 3.8); if it
    ever disappears, the fallback is a plain non-waiting shutdown.
    """
    process_map = getattr(executor, "_processes", None)
    processes = list(process_map.values()) if process_map else []
    for process in processes:
        try:
            process.terminate()
        except (OSError, ValueError):  # pragma: no cover - already gone
            pass
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - broken pools may complain
        pass
    for process in processes:
        try:
            process.join(5.0)
            if process.is_alive():  # pragma: no cover - SIGTERM ignored
                process.kill()
                process.join(5.0)
        except (OSError, ValueError, AssertionError):  # pragma: no cover
            pass


class WorkerPool:
    """A persistent process pool shared by many ``map`` calls.

    Create one, activate it per thread with :func:`use_worker_pool`,
    and every ``ParallelRunner.map`` issued on that thread routes into
    it instead of forking a private pool.  The pool outlives any single
    ``map``, which is the point: concurrent maps (one per replica
    thread of a replication) keep all workers busy across the gaps
    where a single experiment would be doing parent-side preparation.

    Results are identical to private-pool (and sequential) execution:
    each call's results come back in its own task order, and nothing a
    worker computes depends on which pool ran it.
    """

    def __init__(self, workers: int | None = None) -> None:
        self.workers = resolve_workers(workers)
        if self.workers < 2:
            raise EngineError(
                f"a shared WorkerPool needs >= 2 workers, got {self.workers}; "
                "run sequentially instead"
            )
        self._executor: Executor = self._spawn_executor()
        self._lock = threading.Lock()
        self._next_token = 0
        self._closed = False
        # Bumped on every respawn: a supervised map that saw the pool
        # break hands its generation back, so concurrent threads that
        # hit the same broken executor trigger exactly one respawn.
        self._generation = 0
        # Shared-memory corpus segments whose lifetime is tied to this
        # pool: adopted on the first map call that ships them, unlinked
        # after shutdown (workers can no longer attach a name once the
        # pool is drained).  They deliberately survive respawns — a
        # fresh worker set re-attaches the same names.
        self._adopted_segments: dict[str, "sharedmem.SharedCorpus"] = {}

    def _spawn_executor(self) -> Executor:
        executor = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_initialize_shared_worker,
            # Live map calls ≈ replica threads ≈ pool width; headroom
            # keeps a just-finished call's context warm for its last
            # straggler chunks.
            initargs=(self.workers + 4,),
        )
        # Start the pool NOW, while (ideally) only the constructing
        # thread exists.  Stock ProcessPoolExecutor starts lazily on
        # first submit — which for a shared pool would mean forking
        # workers from a replica thread, the classic fork-with-threads
        # deadlock setup.  This is the exact hook submit() itself
        # calls: on the fork start method it launches every worker
        # process and the manager thread together.  It is private API;
        # if it disappears, the pool degrades to stock lazy start
        # rather than breaking.
        start = getattr(executor, "_start_executor_manager_thread", None)
        if start is not None:
            start()
        return executor

    @property
    def generation(self) -> int:
        """Current executor incarnation (bumped by :meth:`respawn`)."""
        return self._generation

    def respawn(self, generation: int | None = None) -> bool:
        """Replace the worker set with a fresh one (crash recovery).

        Swaps in a new executor, then kills the old one — terminating
        its processes first, so wedged (hung) workers die instead of
        blocking shutdown.  Adopted shared-memory segments are kept:
        their names must stay attachable for the respawned workers,
        which is the crash-safe half of the segment lifecycle.

        ``generation`` is the incarnation the caller observed broken;
        if another thread already respawned past it this is a no-op
        returning False, so N threads hitting one broken executor pay
        one respawn, not N.
        """
        with self._lock:
            if self._closed:
                raise EngineError("WorkerPool is closed")
            if generation is not None and generation != self._generation:
                return False
            old = self._executor
            self._executor = self._spawn_executor()
            self._generation += 1
        _kill_executor(old)
        return True

    def _token(self) -> tuple[int, int]:
        with self._lock:
            token = self._next_token
            self._next_token += 1
        return (os.getpid(), token)

    def run(
        self,
        fn: Callable[[Any, TaskT], ResultT],
        context: Any,
        tasks: Sequence[TaskT],
    ) -> list[ResultT]:
        """One ``map`` call's worth of tasks through the shared pool.

        The ``(fn, context)`` pair is pickled exactly once; the tasks
        go out as ``min(workers, tasks)`` contiguous chunks carrying
        the blob (workers cache the unpickled pair per call token, so
        the unpickle cost is once per worker, like the initializer
        path).  A chunk exception propagates and cancels this call's
        remaining chunks — other concurrent calls are untouched.
        """
        if self._closed:
            raise EngineError("WorkerPool is closed")
        tasks = list(tasks)
        if not tasks:
            return []
        self._adopt_segments(context)
        if len(tasks) <= _TINY_MAP_TASKS:
            blob = pickle.dumps((fn, context), protocol=pickle.HIGHEST_PROTOCOL)
            if not _tiny_map_ships(len(blob)):
                # Stay inline: on this hardware (or at this context
                # size) the pool cannot pay for the transfer.  Same
                # deterministic computation, same records.
                return [fn(context, task) for task in tasks]
            futures = [
                self._executor.submit(_run_direct_blob, blob, task)
                for task in tasks
            ]
            try:
                return [future.result() for future in futures]
            except BaseException:
                _drain(futures)
                raise
        token = self._token()
        blob = pickle.dumps((fn, context), protocol=pickle.HIGHEST_PROTOCOL)
        futures = [
            self._executor.submit(_run_shared_chunk, token, blob, start, chunk)
            for start, chunk in _chunked(tasks, self.workers)
        ]
        results: list[Any] = [None] * len(tasks)
        try:
            for future in as_completed(futures):
                start, chunk_results = future.result()
                results[start : start + len(chunk_results)] = chunk_results
        except BaseException:
            _drain(futures)
            raise
        return results

    def _adopt_segments(self, context: Any) -> None:
        """Tie any shared-memory corpora in ``context`` to this pool."""
        for handle in sharedmem.adoptable_segments(context):
            with self._lock:
                self._adopted_segments.setdefault(handle.name, handle)

    def close(self) -> None:
        """Shut the worker processes down (idempotent).

        Adopted shared-memory segments are unlinked *after* the workers
        drain — no future map call can attach them through this pool,
        so their names must not outlive it (the leak check in
        ``tests/test_shared_corpus.py`` scans for exactly that).  The
        unlink runs in ``finally``: a broken pool's shutdown may raise,
        and a crashed pool that leaked every adopted segment would
        defeat the whole lifecycle model.
        """
        if not self._closed:
            self._closed = True
            try:
                self._executor.shutdown(wait=True)
            finally:
                with self._lock:
                    adopted, self._adopted_segments = self._adopted_segments, {}
                for handle in adopted.values():
                    handle.unlink()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return f"WorkerPool(workers={self.workers}, {state})"


_active_pool = threading.local()


@contextmanager
def use_worker_pool(pool: WorkerPool | None) -> Iterator[WorkerPool | None]:
    """Route this thread's ``ParallelRunner.map`` calls into ``pool``.

    Thread-local and re-entrant: each replica thread of a replication
    activates the one shared pool for the duration of its scenario run;
    other threads (and code outside the ``with``) are unaffected.
    ``None`` deactivates routing within the block.
    """
    previous = getattr(_active_pool, "pool", None)
    _active_pool.pool = pool
    try:
        yield pool
    finally:
        _active_pool.pool = previous


def _current_pool() -> WorkerPool | None:
    return getattr(_active_pool, "pool", None)


def active_worker_pool() -> WorkerPool | None:
    """The shared pool routing this thread's maps, if any.

    Lets callers that prepare expensive per-map state (shared-memory
    corpora, say) know whether their context will cross process
    boundaries — and who will own the published segments' lifetime.
    """
    return _current_pool()


class ParallelRunner:
    """Maps ``fn(context, task)`` over tasks, optionally in a process pool."""

    def __init__(self, workers: int | None = 1) -> None:
        self.workers = resolve_workers(workers)

    def map(
        self,
        fn: Callable[[Any, TaskT], ResultT],
        context: Any,
        tasks: Sequence[TaskT],
    ) -> list[ResultT]:
        """Run every task; return results in task order.

        A worker exception propagates to the caller (with the original
        traceback rendered by ``concurrent.futures``) and cancels every
        task still queued, so a failed sweep dies promptly instead of
        burning through the rest of the fan-out first.

        When a shared :class:`WorkerPool` is active on this thread
        (:func:`use_worker_pool`) and this runner would have gone
        parallel, the tasks drain into the shared pool instead of a
        private one — same results, no pool startup, and idle shared
        workers can pick the tasks up immediately.
        """
        tasks = list(tasks)
        if self.workers <= 1:
            return [fn(context, task) for task in tasks]
        pool = _current_pool()
        if pool is not None:
            # Even a single task routes to the shared pool: it frees
            # this (replica) thread's slot in the parent process, which
            # is what lets whole-stream protocols — one sequential task
            # per run — execute truly concurrently across replicas.
            return pool.run(fn, context, tasks)
        if len(tasks) <= 1:
            # A private pool for one task would pay a fork for nothing.
            return [fn(context, task) for task in tasks]
        # Supervision (timeouts/retries/fault tolerance) is ambient:
        # when a policy is active — CLI flags, REPRO_TIMEOUT/RETRIES,
        # or a fault plan — private-pool maps run supervised too.
        # Imported lazily; supervise imports this module.
        from repro.engine import supervise

        if supervise.current_policy() is not None:
            return supervise.supervised_map(fn, context, tasks, self.workers)
        # Fork-started workers inherit ``initargs`` by memory, not by
        # pickle — a disk-backed context would hand every worker the
        # parent's *live* SQLite token table and MAP_SHARED count
        # columns, so sibling interns collide and worker-side learning
        # bleeds across processes.  A pickle roundtrip first gives
        # workers the same independent by-value copies the shared-pool
        # path ships (DiskTokenTable reduces to a plain in-memory
        # table); memory-backend contexts skip the copy.
        from repro.storage import store_name

        if store_name() == "disk":
            context = pickle.loads(pickle.dumps(context))
        results: list[Any] = [None] * len(tasks)
        max_workers = min(self.workers, len(tasks))
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_initialize_worker,
            initargs=(fn, context),
        ) as executor:
            futures = [
                executor.submit(_run_indexed_task, index, task)
                for index, task in enumerate(tasks)
            ]
            try:
                for future in as_completed(futures):
                    index, result = future.result()
                    results[index] = result
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
        return results

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelRunner(workers={self.workers})"
