"""Deterministic per-task seeding, shared by the engine and benchmarks.

Parallel execution must not change results, which means every unit of
parallel work (a fold, a repetition, a RONI calibration) needs a seed
that is a pure function of *what the task is*, never of *which worker
runs it* or *when*.  Two mechanisms cover every case in this repo:

* **labelled spawning** — hash a parent seed with a stable string
  label (:func:`repro.rng.spawn_seed` via :class:`repro.rng.SeedSpawner`,
  used directly).  Applies when the sequential code already gave each
  task its own labelled stream (RONI repetitions, focused-attack
  repetitions): labels are worker-independent by construction.
* **planned draw sequences** (:func:`drawn_seeds`) — when the
  sequential code interleaved ``rng.getrandbits(64)`` calls with the
  work (the fold loops of the attack sweeps), the engine replays the
  *same* draws in the *same* order up front and hands each task its
  pre-drawn seed.  Sequential and parallel runs then consume the parent
  stream identically, so results are bit-for-bit equal.

``benchmarks/conftest.py`` resolves its root seed through
:func:`resolve_root_seed` and the experiment configs it builds carry
that seed into the engine, so ``--workers N`` and ``--workers 1`` runs
of any benchmark emit identical JSON records.
"""

from __future__ import annotations

import random

from repro.errors import EngineError
from repro.rng import DEFAULT_SEED

__all__ = ["drawn_seeds", "resolve_root_seed"]


def drawn_seeds(rng: random.Random, count: int) -> list[int]:
    """Pre-draw ``count`` 64-bit task seeds from ``rng``.

    Replays the draw pattern of the sequential fold loops — one
    ``getrandbits(64)`` per fold, in fold order — so an engine that
    plans tasks up front leaves ``rng`` in exactly the state the
    sequential implementation would.
    """
    if count < 0:
        raise EngineError(f"cannot draw {count} seeds")
    return [rng.getrandbits(64) for _ in range(count)]


def resolve_root_seed(value: str | int | None, default: int = 0) -> int:
    """Parse a root seed from CLI/environment input.

    ``None`` or an empty string selects ``default``; the string
    ``"default"`` selects :data:`repro.rng.DEFAULT_SEED`; anything else
    must parse as an integer.
    """
    if value is None:
        return default
    if isinstance(value, int):
        return value
    text = value.strip()
    if not text:
        return default
    if text.lower() == "default":
        return DEFAULT_SEED
    try:
        return int(text, 0)
    except ValueError as exc:
        raise EngineError(f"root seed must be an integer, got {value!r}") from exc
