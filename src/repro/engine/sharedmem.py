"""Zero-copy corpus transport over POSIX shared memory.

A fold sweep ships the same encoded corpus to every worker; with the
chunk-blob protocol that is one multi-megabyte pickle per (worker,
map-call).  This module publishes a :class:`~repro.spambayes.ndkernel.
CsrMatrix` into one ``multiprocessing.shared_memory`` segment instead:
the picklable :class:`SharedCorpus` handle is just a segment name plus
two lengths (tens of bytes), and workers attach the segment read-only
and reconstruct zero-copy NumPy views.

Lifetime model
    The publishing (parent) process owns every segment.  Handles are
    *adopted* by the :class:`~repro.engine.runner.WorkerPool` that
    ships them (or unlinked in ``finally`` by private-pool maps), so a
    segment lives exactly as long as the pool that could still attach
    it: ``WorkerPool.close()`` unlinks every adopted segment after the
    workers have drained.  A module-level registry plus an ``atexit``
    sweep backstops crash paths, and every segment name carries a
    run-unique prefix (:func:`segment_prefix`) so tests can scan
    ``/dev/shm`` and prove nothing leaked.

Worker attach
    On Python 3.11, ``SharedMemory(name=...)`` *registers* the segment
    with the ``resource_tracker`` even for attach-only use — and under
    the fork start method every worker talks to the *same* tracker
    daemon as the parent, so a worker's attach/exit could unlink a
    segment the parent still owns (there is no ``track=False`` until
    3.13).  :meth:`SharedCorpus._attach` therefore suppresses tracker
    registration for the duration of the attach: only the creating
    process ever registers a segment, and only its ``unlink``
    unregisters it.

Fallback
    When shared memory is unavailable (no ``multiprocessing.
    shared_memory``, unwritable ``/dev/shm``, or ``REPRO_SHM=0``),
    :meth:`SharedCorpus.publish` raises :class:`EngineError` (a
    :class:`ReproError`), and :func:`share_corpus` degrades gracefully
    to an :class:`InlineCorpus` — same interface, ordinary pickling —
    so results never depend on the transport.
"""

from __future__ import annotations

import atexit
import os
import threading

try:  # pragma: no cover - exercised via the availability gates
    import numpy as np
except ImportError:  # pragma: no cover - numpy is in the baked image
    np = None  # type: ignore[assignment]

try:  # pragma: no cover - stdlib, but optional on exotic builds
    from multiprocessing import shared_memory as _shm_module
    from multiprocessing import resource_tracker as _resource_tracker
except ImportError:  # pragma: no cover
    _shm_module = None  # type: ignore[assignment]
    _resource_tracker = None  # type: ignore[assignment]

from repro.errors import EngineError, SegmentLostError

__all__ = [
    "InlineCorpus",
    "SharedCorpus",
    "drop_segment_name",
    "gc_segments",
    "orphaned_segments",
    "segment_prefix",
    "share_corpus",
    "shared_memory_enabled",
    "unlink_all_segments",
]

SHM_ENV = "REPRO_SHM"
"""Set to ``0`` to force the pickling fallback (``1``/``auto`` enable)."""

_ID_DTYPE = "int64" if np is None else np.dtype(np.int64)

# Namespace shared by every repro run: the janitor (repro gc-shm)
# scans /dev/shm for this and decides liveness from the embedded pid.
BASE_PREFIX = "repro_shm_"

# Run-unique segment namespace: pid plus random salt, fixed at import.
# Only the importing (parent) process publishes, so forked workers
# reusing the module state is harmless, and a test can scan /dev/shm
# for exactly this prefix to detect leaked segments.
_RUN_TOKEN = f"{os.getpid():x}_{int.from_bytes(os.urandom(4), 'big'):08x}"
_segment_lock = threading.Lock()
_segment_counter = 0
# name -> SharedCorpus for every still-linked segment this process owns.
_live_segments: dict[str, "SharedCorpus"] = {}


def segment_prefix() -> str:
    """The run-unique prefix every segment name starts with."""
    return f"{BASE_PREFIX}{_RUN_TOKEN}"


def shared_memory_enabled() -> bool:
    """True when segments can be published in this configuration."""
    if np is None or _shm_module is None:
        return False
    value = os.environ.get(SHM_ENV, "auto").strip().lower()
    return value not in ("0", "off", "false", "no")


def _next_segment_name() -> str:
    global _segment_counter
    with _segment_lock:
        index = _segment_counter
        _segment_counter += 1
    return f"{segment_prefix()}_{index}"


def _attach_untracked(name: str) -> "_shm_module.SharedMemory":
    """Attach an existing segment without resource-tracker registration.

    Attach-side registration (fixed upstream by ``track=False``, which
    3.11 lacks) would otherwise let an attaching process's tracker
    unlink a segment the owner still needs — and, because forked
    workers share the parent's tracker daemon, even unregistering
    after the fact would cancel the *owner's* registration.  Silencing
    ``register`` around the attach keeps the tracker's view exactly
    right: one registration per segment, held by its creator.
    """
    if _resource_tracker is None:
        return _shm_module.SharedMemory(name=name)
    original = _resource_tracker.register
    _resource_tracker.register = lambda *args, **kwargs: None
    try:
        return _shm_module.SharedMemory(name=name)
    finally:
        _resource_tracker.register = original


class InlineCorpus:
    """The pickling fallback: a CSR corpus carried inside the context.

    Interface-compatible with :class:`SharedCorpus` so consumers never
    branch on the transport; ``close``/``unlink`` are no-ops because
    the data travels by value.
    """

    __slots__ = ("_csr", "_rows")

    def __init__(self, csr) -> None:
        self._csr = csr
        self._rows: list | None = None

    @property
    def name(self) -> None:
        return None

    def as_csr(self):
        return self._csr

    def rows_list(self) -> list:
        """Stable per-process row views (cached, so ``id(row)`` is
        stable across calls — which keeps message-score memos warm)."""
        if self._rows is None:
            self._rows = [self._csr.row(i) for i in range(len(self._csr))]
        return self._rows

    def __len__(self) -> int:
        return len(self._csr)

    def close(self) -> None:
        pass

    def unlink(self) -> None:
        pass

    def __getstate__(self) -> tuple:
        return (self._csr,)

    def __setstate__(self, state: tuple) -> None:
        self._csr = state[0]
        self._rows = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InlineCorpus(messages={len(self._csr)})"


class SharedCorpus:
    """A CSR corpus published once in a named shared-memory segment.

    The segment holds ``indices`` followed by ``indptr`` (both int64),
    so ``(name, len(indices), len(indptr))`` reconstructs it exactly —
    and that triple is the entire pickled payload.  Workers attach
    lazily on first access and get **read-only** views: the corpus is
    shared state, and a write through a view must fail loudly rather
    than race other workers.
    """

    __slots__ = ("_name", "_n_indices", "_n_indptr", "_shm", "_owner", "_csr", "_rows")

    def __init__(self, name: str, n_indices: int, n_indptr: int) -> None:
        self._name = name
        self._n_indices = n_indices
        self._n_indptr = n_indptr
        self._shm: "_shm_module.SharedMemory | None" = None
        self._owner = False
        self._csr = None
        self._rows: list | None = None

    @property
    def name(self) -> str:
        return self._name

    @property
    def owner(self) -> bool:
        return self._owner

    @classmethod
    def publish(cls, csr) -> "SharedCorpus":
        """Copy ``csr`` into a fresh segment owned by this process.

        Raises :class:`EngineError` when shared memory is unavailable
        or segment creation fails — callers fall back to
        :class:`InlineCorpus` (see :func:`share_corpus`).
        """
        if not shared_memory_enabled():
            raise EngineError(
                "shared-memory corpus transport is unavailable "
                f"(numpy/shared_memory missing or {SHM_ENV}=0)"
            )
        indices = np.ascontiguousarray(csr.indices, dtype=_ID_DTYPE)
        indptr = np.ascontiguousarray(csr.indptr, dtype=_ID_DTYPE)
        nbytes = indices.nbytes + indptr.nbytes
        name = _next_segment_name()
        try:
            shm = _shm_module.SharedMemory(name=name, create=True, size=max(nbytes, 1))
        except OSError as exc:
            raise EngineError(f"cannot create shared-memory segment: {exc}") from exc
        handle = cls(name, indices.shape[0], indptr.shape[0])
        handle._shm = shm
        handle._owner = True
        split = indices.nbytes
        np.frombuffer(shm.buf, dtype=_ID_DTYPE, count=indices.shape[0])[:] = indices
        np.frombuffer(
            shm.buf, dtype=_ID_DTYPE, count=indptr.shape[0], offset=split
        )[:] = indptr
        handle._build_views()
        _live_segments[name] = handle
        return handle

    def _attach(self) -> None:
        if self._shm is not None:
            return
        if _shm_module is None:
            raise EngineError("shared_memory is unavailable in this process")
        try:
            shm = _attach_untracked(self._name)
        except FileNotFoundError as exc:
            # The name is gone but handles survive: the owner died (its
            # atexit or the janitor reclaimed the segment) or a fault
            # run unlinked it.  Distinct type so the supervision layer
            # can classify this as retryable-then-degradable.
            raise SegmentLostError(
                f"shared-memory segment {self._name!r} disappeared under its "
                "readers (owner exited or segment was unlinked)"
            ) from exc
        except OSError as exc:
            raise EngineError(
                f"cannot attach shared-memory segment {self._name!r}: {exc}"
            ) from exc
        self._shm = shm
        self._build_views()

    def _build_views(self) -> None:
        from repro.spambayes.ndkernel import CsrMatrix

        split = self._n_indices * _ID_DTYPE.itemsize
        indices = np.frombuffer(self._shm.buf, dtype=_ID_DTYPE, count=self._n_indices)
        indptr = np.frombuffer(
            self._shm.buf, dtype=_ID_DTYPE, count=self._n_indptr, offset=split
        )
        if not self._owner:
            # Read-only enforcement: the segment is shared state.
            indices = indices.view()
            indptr = indptr.view()
            indices.flags.writeable = False
            indptr.flags.writeable = False
        csr = CsrMatrix.__new__(CsrMatrix)
        csr.indices = indices
        csr.indptr = indptr
        self._csr = csr

    def as_csr(self):
        """The corpus as zero-copy views over the segment."""
        self._attach()
        return self._csr

    def rows_list(self) -> list:
        """Stable per-process row views (cached; see InlineCorpus)."""
        if self._rows is None:
            csr = self.as_csr()
            self._rows = [csr.row(i) for i in range(len(csr))]
        return self._rows

    def __len__(self) -> int:
        return self._n_indptr - 1

    def close(self) -> None:
        """Detach this process's mapping (safe to call repeatedly).

        If the caller still holds live views into the segment the
        mapping cannot be released yet; the handle stays attached (a
        later ``close`` after the views die will succeed) rather than
        leaving a half-closed mapping to explode in ``__del__``.
        """
        self._csr = None
        self._rows = None
        shm = self._shm
        if shm is not None:
            try:
                shm.close()
            except BufferError:  # views still exported; stay attached
                return
            self._shm = None

    def unlink(self) -> None:
        """Destroy the segment (owner side; idempotent).

        On Linux the memory itself persists until the last attached
        process detaches, so unlinking while workers still hold maps is
        safe — the *name* disappears, which is what the leak detector
        checks.
        """
        _live_segments.pop(self._name, None)
        shm = self._shm
        self.close()
        if self._owner:
            self._owner = False
            try:
                if shm is None:
                    shm = _attach_untracked(self._name)
                    shm.close()
                shm.unlink()
            except (OSError, EngineError):  # pragma: no cover - already gone
                pass

    def __getstate__(self) -> tuple:
        # The whole point: a corpus handle crosses process boundaries
        # in tens of bytes, not megabytes.  Ownership never transfers.
        return (self._name, self._n_indices, self._n_indptr)

    def __setstate__(self, state: tuple) -> None:
        self._name, self._n_indices, self._n_indptr = state
        self._shm = None
        self._owner = False
        self._csr = None
        self._rows = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        role = "owner" if self._owner else "attached" if self._shm else "handle"
        return f"SharedCorpus({self._name!r}, messages={len(self)}, {role})"


def share_corpus(csr) -> "SharedCorpus | InlineCorpus":
    """Publish ``csr`` over shared memory, or fall back to pickling.

    The graceful-degradation entry point: any :class:`EngineError` from
    the shared path (unavailable, quota, disabled) downgrades to an
    :class:`InlineCorpus` with identical behaviour.
    """
    try:
        return SharedCorpus.publish(csr)
    except EngineError:
        return InlineCorpus(csr)


def adoptable_segments(context: object) -> list[SharedCorpus]:
    """Owned segments reachable from a map-call context.

    Contexts that ship shared corpora expose ``shared_corpora()``
    returning their corpus handles; the pool adopts the owned
    :class:`SharedCorpus` ones so their lifetime is tied to pool
    shutdown.  Contexts without the hook share nothing.
    """
    hook = getattr(context, "shared_corpora", None)
    if hook is None:
        return []
    return [h for h in hook() if isinstance(h, SharedCorpus) and h.owner]


def unlink_all_segments() -> None:
    """Unlink every segment this process still owns (crash backstop)."""
    for handle in list(_live_segments.values()):
        handle.unlink()


atexit.register(unlink_all_segments)


# ----------------------------------------------------------------------
# Crash-safe lifecycle: fault hook and the orphan janitor
# ----------------------------------------------------------------------

_SHM_DIR = "/dev/shm"


def drop_segment_name(name: str) -> bool:
    """Remove a segment's *name* while existing mappings stay valid.

    The fault-injection hook behind ``shm-unlink``: on Linux the
    memory persists until the last attached process detaches, so the
    owner's views keep working — only *new* attaches fail (with
    :class:`~repro.errors.SegmentLostError`), which is exactly the
    orphaned-parent scenario the supervision layer must survive.
    Returns True when a name was actually removed.
    """
    _live_segments.pop(name, None)
    try:
        os.unlink(os.path.join(_SHM_DIR, name))
    except OSError:
        return False
    return True


def _pid_of_segment(name: str) -> int | None:
    """The publishing pid baked into a repro segment name, if parseable."""
    if not name.startswith(BASE_PREFIX):
        return None
    fields = name[len(BASE_PREFIX):].split("_")
    if len(fields) != 3:
        return None
    try:
        return int(fields[0], 16)
    except ValueError:
        return None


def _pid_alive(pid: int) -> bool:
    # Shared with the storage layer's on-disk store janitor: both
    # decide orphan-ness from a pid baked into a resource name.
    from repro.storage.base import pid_alive

    return pid_alive(pid)


def orphaned_segments(include_live: bool = False) -> list[str]:
    """Stale ``repro_shm_*`` names under ``/dev/shm``, sorted.

    A segment is *orphaned* when the pid its name embeds no longer
    runs: the publishing process was SIGKILL'd past its atexit hook,
    so nothing will ever unlink it.  ``include_live=True`` lists every
    repro segment regardless of owner liveness (the ``gc-shm --all``
    hammer) — except this process's own, which its atexit hook still
    covers.
    """
    if not os.path.isdir(_SHM_DIR):
        return []
    stale = []
    for name in os.listdir(_SHM_DIR):
        pid = _pid_of_segment(name)
        if pid is None or pid == os.getpid():
            continue
        if include_live or not _pid_alive(pid):
            stale.append(name)
    return sorted(stale)


def gc_segments(include_live: bool = False) -> list[str]:
    """Unlink orphaned segments; return the names reclaimed.

    The janitor behind ``repro gc-shm``.  Plain ``os.unlink`` of the
    ``/dev/shm`` entry, deliberately bypassing ``SharedMemory`` — the
    dead owner's resource-tracker state is unreachable, and attaching
    just to unlink would map the (possibly huge) segment for nothing.
    """
    reclaimed = []
    for name in orphaned_segments(include_live):
        try:
            os.unlink(os.path.join(_SHM_DIR, name))
        except OSError:  # pragma: no cover - raced another janitor
            continue
        reclaimed.append(name)
    return reclaimed
