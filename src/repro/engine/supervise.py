"""Worker supervision: deadlines, crash detection, bounded retry,
graceful degradation.

:class:`~repro.engine.runner.WorkerPool` is fast but trusting: one
dead worker breaks the executor and the whole map dies; one wedged
worker blocks it forever.  This module wraps the pool in the
discipline long-lived mail systems apply to their children —
supervise, respawn, retry, and when all else fails do the work
yourself:

* **Deadlines** — each dispatch wave of chunks gets
  ``policy.timeout`` seconds; chunks that miss it are presumed wedged,
  their workers are killed, and the chunks are retried on a fresh
  worker set.
* **Crash detection** — a worker that dies mid-chunk (segfault,
  OOM-kill, injected ``os._exit``) breaks the executor
  (``BrokenProcessPool``); the supervisor respawns the pool and
  retries only the chunks that never completed.
* **Chunk-level accounting** — results are recorded per chunk as
  chunks finish, so completed work *survives* a respawn; a crash at
  90% re-runs 10%.
* **Bounded retry, then degradation** — after ``policy.retries``
  respawn-and-retry rounds, the supervisor runs the remaining chunks
  inline, sequentially, in the parent process (``policy.degrade``,
  default on) — slower, but always terminates with correct results.
  With degradation off it raises
  :class:`~repro.errors.WorkerCrashError` /
  :class:`~repro.errors.MapTimeoutError` carrying chunk and task
  provenance.

Determinism under retry
-----------------------

The contract inherited from the engine — identical results at any
worker count — extends to *identical results under any fault
schedule*, because every recovery path recomputes from pristine
state:

1. A chunk's results are returned all-or-nothing: a worker that dies
   mid-chunk takes its partial results with it, so no partially-poked
   state is ever observed.
2. Every retry wave uses a **fresh call token**, so workers unpickle a
   pristine ``(fn, context)`` — a retried chunk can never see a
   context object some earlier attempt mutated.
3. The degraded path runs the caller's original ``fn(context, task)``
   inline — exactly the sequential execution path, which is the
   equivalence the engine is tested against.

``tests/test_faults.py`` proves the theorem differentially: every
registered scenario family produces byte-identical records under
injected crashes, hangs and segment unlinks.

Activation
----------

A policy is *ambient*: :func:`use_supervision` installs one
thread-locally (the CLI's ``--timeout``/``--retries`` path), and the
environment supplies a default (``REPRO_TIMEOUT``, ``REPRO_RETRIES``,
``REPRO_DEGRADE`` — and merely setting ``REPRO_FAULTS`` activates
supervision, because injected faults without a supervisor would just
be crashes).  When no policy is active the engine behaves exactly as
before this layer existed.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from concurrent.futures import wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.engine import faults, sharedmem
from repro.engine.runner import (
    WorkerPool,
    _chunked,
    _drain,
    _run_shared_chunk,
    resolve_workers,
)
from repro.errors import (
    EngineError,
    MapTimeoutError,
    SegmentLostError,
    WorkerCrashError,
)

__all__ = [
    "DEFAULT_RETRIES",
    "SupervisePolicy",
    "SuperviseStats",
    "SupervisedPool",
    "current_policy",
    "policy_from_env",
    "supervised_map",
    "use_supervision",
]

TIMEOUT_ENV = "REPRO_TIMEOUT"
"""Per-wave chunk deadline in seconds (float; empty/unset = none)."""
RETRIES_ENV = "REPRO_RETRIES"
"""Respawn-and-retry rounds per map call before degradation."""
DEGRADE_ENV = "REPRO_DEGRADE"
"""Set to ``0`` to raise after exhausted retries instead of running
the remaining chunks inline."""

DEFAULT_RETRIES = 2
"""Retry rounds when supervision is active but no count configured."""


@dataclass(frozen=True)
class SupervisePolicy:
    """How a supervised map treats its workers.

    ``timeout`` is the deadline, in seconds, for one dispatch wave of
    chunks — queueing included, so size it for the map, not for one
    task.  ``retries`` bounds how many respawn-and-retry rounds a map
    may consume.  ``degrade`` selects the endgame: inline sequential
    execution of whatever never completed (default), or a structured
    :class:`~repro.errors.WorkerCrashError` /
    :class:`~repro.errors.MapTimeoutError`.
    """

    timeout: float | None = None
    retries: int = DEFAULT_RETRIES
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise EngineError(f"timeout must be > 0 seconds, got {self.timeout}")
        if self.retries < 0:
            raise EngineError(f"retries must be >= 0, got {self.retries}")


class SuperviseStats:
    """Thread-safe counters of what supervision had to do.

    Observability for tests and post-mortems: a differential fault run
    asserts not only that the records match but that faults actually
    fired (``crashes``/``timeouts`` nonzero) — a fault suite that
    silently stopped injecting proves nothing.
    """

    _FIELDS = (
        "crashes",
        "timeouts",
        "segment_losses",
        "respawns",
        "retried_chunks",
        "degraded_chunks",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self._FIELDS:
            setattr(self, name, 0)

    def bump(self, name: str, count: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + count)

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return {name: getattr(self, name) for name in self._FIELDS}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"SuperviseStats({inner})"


# ----------------------------------------------------------------------
# Ambient policy resolution
# ----------------------------------------------------------------------

_UNSET = object()
_policy_local = threading.local()


def policy_from_env() -> SupervisePolicy | None:
    """The environment-default policy, or ``None`` when inactive.

    Active when any supervision knob is set *or* a fault plan is live:
    injecting faults into an unsupervised engine would only prove that
    crashes crash.
    """
    timeout_raw = os.environ.get(TIMEOUT_ENV, "").strip()
    retries_raw = os.environ.get(RETRIES_ENV, "").strip()
    try:
        timeout = float(timeout_raw) if timeout_raw else None
    except ValueError:
        raise EngineError(f"{TIMEOUT_ENV} must be a number, got {timeout_raw!r}") from None
    try:
        retries = int(retries_raw) if retries_raw else None
    except ValueError:
        raise EngineError(f"{RETRIES_ENV} must be an integer, got {retries_raw!r}") from None
    degrade = os.environ.get(DEGRADE_ENV, "").strip().lower() not in (
        "0",
        "false",
        "no",
        "off",
    )
    if timeout is None and retries is None and faults.active_plan() is None:
        return None
    return SupervisePolicy(
        timeout=timeout,
        retries=DEFAULT_RETRIES if retries is None else retries,
        degrade=degrade,
    )


@contextmanager
def use_supervision(policy: SupervisePolicy | None) -> Iterator[SupervisePolicy | None]:
    """Install ``policy`` for this thread's engine maps.

    ``None`` explicitly *disables* supervision within the block, even
    when the environment would supply a default — how a differential
    test runs its clean reference while ``REPRO_FAULTS`` is exported.
    """
    previous = getattr(_policy_local, "policy", _UNSET)
    _policy_local.policy = policy
    try:
        yield policy
    finally:
        if previous is _UNSET:
            del _policy_local.policy
        else:
            _policy_local.policy = previous


def current_policy() -> SupervisePolicy | None:
    """The policy in force on this thread (override, else env default)."""
    override = getattr(_policy_local, "policy", _UNSET)
    if override is not _UNSET:
        return override
    return policy_from_env()


# ----------------------------------------------------------------------
# The supervised pool
# ----------------------------------------------------------------------


def _provenance(fn: Callable, chunk: Sequence[Any]) -> str:
    """A short, re-runnable description of a chunk's first task."""
    text = f"{fn.__module__}.{fn.__qualname__}({chunk[0]!r})"
    return text if len(text) <= 160 else text[:157] + "..."


class SupervisedPool(WorkerPool):
    """A :class:`WorkerPool` whose maps survive their workers.

    Drop-in for ``WorkerPool`` everywhere (``use_worker_pool`` routing
    included): ``run`` returns the same results — it just refuses to
    die with its workers.  Every map, tiny or not, goes through the
    chunk protocol so that chunk accounting and retry apply uniformly.

    Shared by concurrent replica threads like its parent class;
    recovery is too: when one thread's wave breaks the executor, the
    generation check in :meth:`WorkerPool.respawn` ensures exactly one
    thread pays the respawn and the others simply retry into the new
    worker set.
    """

    def __init__(
        self, workers: int | None = None, policy: SupervisePolicy | None = None
    ) -> None:
        super().__init__(workers)
        if policy is None:
            policy = current_policy() or SupervisePolicy()
        self.policy = policy
        self.stats = SuperviseStats()
        self._map_seq = 0

    def run(
        self,
        fn: Callable[[Any, Any], Any],
        context: Any,
        tasks: Sequence[Any],
    ) -> list[Any]:
        if self._closed:
            raise EngineError("WorkerPool is closed")
        tasks = list(tasks)
        if not tasks:
            return []
        self._adopt_segments(context)
        with self._lock:
            map_seq = self._map_seq
            self._map_seq += 1
        policy = self.policy
        blob = pickle.dumps((fn, context), protocol=pickle.HIGHEST_PROTOCOL)
        results: list[Any] = [None] * len(tasks)
        pending: list[tuple[int, Sequence[Any]]] = list(
            _chunked(tasks, self.workers)
        )
        attempt = 0
        while pending:
            self._maybe_drop_segment(f"{map_seq}:{attempt}")
            failure = self._dispatch_wave(
                map_seq, attempt, blob, pending, results
            )
            pending = [entry for entry in pending if entry[0] in failure.open_starts]
            if not pending:
                break
            kind, cause = failure.kind, failure.cause
            self.stats.bump(
                {"crash": "crashes", "timeout": "timeouts", "segment": "segment_losses"}[kind]
            )
            if kind in ("crash", "timeout"):
                # Crash: the executor is broken.  Timeout: workers are
                # presumed wedged and must die.  Either way the chunks
                # retry on a fresh worker set; segment loss leaves the
                # (healthy) workers alone.
                if self.respawn(failure.generation):
                    self.stats.bump("respawns")
            attempt += 1
            if attempt <= policy.retries:
                self.stats.bump("retried_chunks", len(pending))
                continue
            if policy.degrade:
                # Retries exhausted: finish the map in-process, the
                # sequential reference path.  Worker-side fault sites
                # don't fire in the parent, so this always terminates.
                self.stats.bump("degraded_chunks", len(pending))
                for start, chunk in pending:
                    inline = [fn(context, task) for task in chunk]
                    results[start : start + len(inline)] = inline
                pending = []
                break
            starts = tuple(start for start, _ in pending)
            provenance = _provenance(fn, pending[0][1])
            if kind == "timeout":
                raise MapTimeoutError(
                    f"map chunks missed their {policy.timeout:g}s deadline "
                    f"and the retry budget ({policy.retries}) is exhausted",
                    chunk_starts=starts,
                    attempts=attempt,
                    provenance=provenance,
                )
            detail = (
                "worker process died (pool broke)"
                if kind == "crash"
                else f"shared-memory segment lost: {cause}"
            )
            raise WorkerCrashError(
                f"{detail}; retry budget ({policy.retries}) is exhausted",
                chunk_starts=starts,
                attempts=attempt,
                provenance=provenance,
            ) from cause
        return results

    # -- one dispatch wave -------------------------------------------

    class _WaveFailure:
        """What a wave left unfinished, and why."""

        __slots__ = ("open_starts", "kind", "cause", "generation")

        def __init__(self, open_starts, kind, cause, generation):
            self.open_starts = open_starts
            self.kind = kind
            self.cause = cause
            self.generation = generation

    def _dispatch_wave(
        self,
        map_seq: int,
        attempt: int,
        blob: bytes,
        pending: list[tuple[int, Sequence[Any]]],
        results: list[Any],
    ) -> "_WaveFailure":
        """Submit ``pending`` once; record completions into ``results``.

        Returns the set of chunk starts still open plus the failure
        class that left them open (``crash``/``timeout``/``segment``).
        Application exceptions are not failures in this sense — they
        are deterministic outcomes, so the wave drains and re-raises
        immediately, retrying nothing.
        """
        # Fresh token per wave: a retried chunk must unpickle a
        # pristine (fn, context), never one a previous attempt mutated.
        token = self._token()
        generation = self.generation
        open_starts = {start for start, _ in pending}
        futures = {}
        kind, cause = None, None
        try:
            for start, chunk in pending:
                fault_key = f"{map_seq}:{start}:{attempt}"
                futures[
                    self._executor.submit(
                        _run_shared_chunk, token, blob, start, chunk, fault_key
                    )
                ] = start
        except (BrokenProcessPool, RuntimeError) as exc:
            # The executor broke (or was shut down by a concurrent
            # respawn race) before the wave was fully submitted.
            kind, cause = "crash", exc
        deadline = (
            None
            if self.policy.timeout is None
            else time.monotonic() + self.policy.timeout
        )
        app_error: BaseException | None = None
        remaining = set(futures)
        while remaining:
            wait_for = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            done, remaining = wait(remaining, timeout=wait_for)
            if not done:
                kind, cause = kind or "timeout", cause
                break
            for future in done:
                start = futures[future]
                try:
                    chunk_start, chunk_results = future.result()
                except BrokenProcessPool as exc:
                    if kind is None:
                        kind, cause = "crash", exc
                except SegmentLostError as exc:
                    if kind is None:
                        kind, cause = "segment", exc
                except BaseException as exc:
                    app_error = app_error or exc
                else:
                    results[chunk_start : chunk_start + len(chunk_results)] = (
                        chunk_results
                    )
                    open_starts.discard(start)
            if app_error is not None:
                break
        if app_error is not None:
            # Deterministic task failure: it would fail identically on
            # any retry.  Drain the siblings and surface it as-is.
            _drain(list(futures))
            raise app_error
        return self._WaveFailure(open_starts, kind or "crash", cause, generation)

    def _maybe_drop_segment(self, key: str) -> None:
        """The parent-side ``shm-unlink`` injection point."""
        if not faults.should_unlink(key):
            return
        with self._lock:
            names = sorted(self._adopted_segments)
        for name in names:
            if sharedmem.drop_segment_name(name):
                break


def supervised_map(
    fn: Callable[[Any, Any], Any],
    context: Any,
    tasks: Sequence[Any],
    workers: int | None,
    policy: SupervisePolicy | None = None,
) -> list[Any]:
    """One private map under supervision (the non-shared-pool path).

    What ``ParallelRunner.map`` routes into when a policy is ambient
    and no shared pool is active: a throwaway :class:`SupervisedPool`
    sized to the task list.  Falls back to inline execution when the
    map couldn't go parallel anyway.
    """
    tasks = list(tasks)
    if policy is None:
        policy = current_policy()
    pool_workers = min(resolve_workers(workers), len(tasks))
    if policy is None or pool_workers < 2 or len(tasks) < 2:
        return [fn(context, task) for task in tasks]
    with SupervisedPool(pool_workers, policy=policy) as pool:
        return pool.run(fn, context, tasks)
