"""The parallel K-fold attack-sweep engine.

This module industrializes the hot path behind Figures 1 and 5: the
cross-validated contamination sweeps of Section 4.1.  Three ideas, all
result-preserving:

**Fold models by subtraction.**  Training is count-addition, so the
model for "train on everything except fold *i*" equals "train on
everything, then unlearn fold *i*" — exactly, in integers.  The engine
trains ONE full-inbox model per sweep, then derives each fold's clean
classifier by snapshotting (:meth:`Classifier.snapshot`), unlearning
the held-out stripe, layering attack batches, and restoring.  A
K-fold, V-variant sweep trains ``N(1 + V)`` messages instead of the
naive ``V·K·N(K-1)/K`` — at paper scale (K=10, V=3) an ~7x cut in
training work before any process even forks.

**Deterministic fan-out.**  Each (variant, fold) pair is one
independent task: it carries its fold's index lists and a pre-drawn
attack seed (:func:`repro.engine.seeding.drawn_seeds` replays the
sequential implementation's ``getrandbits`` draws in order), so
results are bit-identical at any worker count, and identical to the
sequential seed implementation retained as
:func:`sequential_reference_sweep`.

**Bulk scoring over encoded messages.**  The inbox is encoded once into
sorted token-ID arrays against a shared
:class:`~repro.spambayes.token_table.TokenTable`
(:meth:`repro.corpus.dataset.Dataset.encode`); workers receive the
arrays plus the table — a far smaller pickle than per-message string
sets — and train/score through the classifier's ``*_ids`` methods, so
the inner loops never hash a string.  Attack payloads are ID-native
too: each fold's batch is interned once through
:meth:`~repro.attacks.base.AttackBatch.encode` and layered as ID
arrays (:class:`IncrementalAttackTrainer`).  Held-out folds are scored
through :meth:`Classifier.score_many_ids`, the columnar kernel that
shares per-token significance work across the fold's messages.

The shared primitives the experiment drivers use (grouped training,
dataset evaluation, the incremental attack trainer) live here too;
:mod:`repro.experiments.crossval` re-exports them under their
historical names.
"""

from __future__ import annotations

import random
from array import array
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.attacks.base import Attack, AttackBatch
from repro.corpus.dataset import Dataset, LabeledMessage
from repro.engine import sharedmem
from repro.engine.runner import ParallelRunner, active_worker_pool, resolve_workers
from repro.engine.seeding import drawn_seeds
from repro.errors import EngineError, ExperimentError
from repro.spambayes import ndkernel
from repro.spambayes.classifier import Classifier
from repro.spambayes.filter import Label
from repro.spambayes.options import ClassifierOptions, DEFAULT_OPTIONS
from repro.spambayes.token_table import TokenTable
from repro.spambayes.tokenizer import Tokenizer, DEFAULT_TOKENIZER

if TYPE_CHECKING:  # runtime import would cycle through repro.experiments
    from repro.experiments.metrics import ConfusionCounts

__all__ = [
    "AttackSweepPoint",
    "IncrementalAttackTrainer",
    "SweepResult",
    "SweepSpec",
    "attack_message_count",
    "evaluate_dataset",
    "evaluation_workspace",
    "run_attack_sweeps",
    "sequential_reference_sweep",
    "train_grouped",
    "unlearn_grouped",
]


def _confusion_counts():
    # Imported lazily: repro.experiments.__init__ imports crossval,
    # which imports this module, so a module-level import of
    # repro.experiments.metrics would be circular.
    from repro.experiments.metrics import ConfusionCounts

    return ConfusionCounts


def attack_message_count(base_size: int, fraction: float) -> int:
    """Attack messages needed for ``fraction`` control of training.

    ``fraction`` is attack/(base + attack), the paper's x-axis, so the
    count is ``base * f / (1 - f)`` rounded.
    """
    if not 0.0 <= fraction < 1.0:
        raise ExperimentError(f"attack fraction must be in [0, 1), got {fraction}")
    return round(base_size * fraction / (1.0 - fraction))


def _grouped_encoded(
    messages: Iterable[LabeledMessage],
    table: TokenTable,
    tokenizer: Tokenizer,
) -> list[tuple[array, bool, int]]:
    """Collapse ``messages`` into (token_ids, is_spam, count) groups.

    Grouping happens on the cached token *frozensets* — attack batches
    materialize thousands of messages sharing one set object, and its
    cached hash makes the probe O(1) — while each distinct set is
    encoded exactly once, through the message-level
    :meth:`~repro.corpus.dataset.LabeledMessage.token_ids` cache.
    """
    groups: dict[tuple[bool, frozenset[str]], list] = {}
    for message in messages:
        key = (message.is_spam, message.tokens(tokenizer))
        entry = groups.get(key)
        if entry is None:
            groups[key] = [message, 1]
        else:
            entry[1] += 1
    return [
        (message.token_ids(table, tokenizer), is_spam, count)
        for (is_spam, _), (message, count) in groups.items()
    ]


def train_grouped(
    classifier: Classifier,
    messages: Iterable[LabeledMessage],
    tokenizer: Tokenizer = DEFAULT_TOKENIZER,
) -> None:
    """Train ``messages``, collapsing identical token sets into one pass.

    Messages are encoded against the classifier's interning table, so
    training is a sweep over ID arrays, not string sets.
    """
    for ids, is_spam, count in _grouped_encoded(messages, classifier.table, tokenizer):
        classifier.learn_ids_repeated(ids, is_spam, count)


def unlearn_grouped(
    classifier: Classifier,
    messages: Iterable[LabeledMessage],
    tokenizer: Tokenizer = DEFAULT_TOKENIZER,
) -> None:
    """Exact inverse of :func:`train_grouped` for the same messages.

    This is how a fold's clean model is derived from the shared
    full-inbox model: unlearn the held-out stripe instead of retraining
    the other K-1 folds.
    """
    for ids, is_spam, count in _grouped_encoded(messages, classifier.table, tokenizer):
        classifier.unlearn_ids_repeated(ids, is_spam, count)


def evaluation_workspace(
    classifier: Classifier,
    messages: Iterable[LabeledMessage],
    tokenizer: Tokenizer = DEFAULT_TOKENIZER,
    ham_only: bool = False,
) -> "ndkernel.ScoringWorkspace":
    """A scoring workspace over exactly the rows
    :func:`evaluate_dataset` would score for the same arguments.

    Built once per repeatedly-evaluated set (the stream runner's
    held-out test set) and passed back via ``evaluate_dataset(...,
    workspace=...)``; the workspace caches the batch-shape scoring
    state (CSR encoding, rank gather, scratch buffers) across calls.
    The construction is kernel-agnostic — the pure kernel just scores
    the rows — and classifier-independent beyond the interning table,
    so one workspace may serve several classifiers sharing a table.
    """
    table = classifier.table
    return ndkernel.ScoringWorkspace(
        m.token_ids(table, tokenizer)
        for m in messages
        if not (ham_only and m.is_spam)
    )


def evaluate_dataset(
    classifier: Classifier,
    messages: Iterable[LabeledMessage],
    tokenizer: Tokenizer = DEFAULT_TOKENIZER,
    ham_only: bool = False,
    cutoffs: tuple[float, float] | None = None,
    workspace: "ndkernel.ScoringWorkspace | None" = None,
) -> "ConfusionCounts":
    """Classify ``messages`` and tally a confusion matrix.

    Scores through :meth:`Classifier.score_many_ids`, the columnar bulk
    kernel, over ID arrays encoded against the classifier's interning
    table (encoded once per message, cached).  Scores are exactly the
    per-message ones.  ``cutoffs`` overrides the classifier's
    (θ0, θ1) without touching its state — the dynamic-threshold
    experiment evaluates one trained classifier under several
    threshold fits.  ``workspace`` (from :func:`evaluation_workspace`
    over the same messages/``ham_only``) reuses cached batch-shape
    scoring state for callers that evaluate one fixed set repeatedly;
    scores are bit-identical with or without it.
    """
    if cutoffs is None:
        ham_cutoff, spam_cutoff = classifier.options.ham_cutoff, classifier.options.spam_cutoff
    else:
        ham_cutoff, spam_cutoff = cutoffs
    kept = [m for m in messages if not (ham_only and m.is_spam)]
    table = classifier.table
    if workspace is not None:
        scores = classifier.score_workspace(workspace)
    else:
        scores = classifier.score_many_ids([m.token_ids(table, tokenizer) for m in kept])
    counts = _confusion_counts()()
    for message, score in zip(kept, scores):
        if score <= ham_cutoff:
            label = Label.HAM
        elif score <= spam_cutoff:
            label = Label.UNSURE
        else:
            label = Label.SPAM
        counts.record(message.is_spam, label)
    return counts


@dataclass
class AttackSweepPoint:
    """Pooled test results at one contamination level."""

    attack_fraction: float
    attack_message_count: int
    confusion: "ConfusionCounts"


class _BatchTrainerBase:
    """Shared contamination schedule over one attack batch.

    Subclasses define only the payload representation: how the batch
    becomes ``(payload, count)`` pairs and how one payload trains.  The
    scheduling — ascending targets, partial-group consumption, the
    exhaustion check — lives here once, so the ID-native trainer and
    its string-payload differential baseline cannot drift apart.
    """

    def __init__(self, classifier: Classifier, batch: AttackBatch) -> None:
        self._classifier = classifier
        self._label = batch.trained_as_spam
        self._payloads = self._payloads_of(classifier, batch)
        self._group_index = 0
        self._used_in_group = 0
        self.trained = 0

    def _payloads_of(self, classifier: Classifier, batch: AttackBatch):
        raise NotImplementedError

    def _train(self, payload, count: int) -> None:
        raise NotImplementedError

    def advance_to(self, target: int) -> None:
        """Train messages until ``target`` of the batch are in effect.

        ``advance_to(0)`` is an explicit no-op — the clean-baseline
        point of a ``(0.0, ...)`` sweep trains nothing, even when the
        batch itself is empty (``attack.generate(0, rng)``).
        """
        if target == self.trained:
            return
        if target < self.trained:
            raise ExperimentError(
                f"attack sweep must be ascending: asked for {target} after {self.trained}"
            )
        while self.trained < target:
            if self._group_index >= len(self._payloads):
                raise ExperimentError(
                    f"attack batch exhausted at {self.trained} of {target} messages"
                )
            payload, group_count = self._payloads[self._group_index]
            available = group_count - self._used_in_group
            take = min(available, target - self.trained)
            self._train(payload, take)
            self._used_in_group += take
            self.trained += take
            if self._used_in_group == group_count:
                self._group_index += 1
                self._used_in_group = 0


class IncrementalAttackTrainer(_BatchTrainerBase):
    """Feeds a fold's classifier ever more of one attack batch.

    The batch is encoded once, up front, against the classifier's table
    (:meth:`AttackBatch.encode` — cached per batch/table pair); the
    contamination sweep then re-trains the same groups at successive
    fractions via pure ID-column arithmetic.  A dictionary attack's
    ~10^5-token payload is hashed exactly once per batch, never per
    fraction or per group visit.
    """

    def _payloads_of(self, classifier: Classifier, batch: AttackBatch):
        return batch.encode(classifier.table)

    def _train(self, payload, count: int) -> None:
        self._classifier.learn_ids_repeated(payload, self._label, count)


# ----------------------------------------------------------------------
# Sweep specification and planning
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepSpec:
    """One attack's contamination sweep within a K-fold protocol."""

    key: str
    attack: Attack
    fractions: tuple[float, ...]
    ham_only: bool = False

    def __post_init__(self) -> None:
        ordered = list(self.fractions)
        if not ordered:
            raise ExperimentError("need at least one fraction")
        if ordered != sorted(ordered):
            raise ExperimentError("fractions must be ascending for incremental training")


@dataclass
class SweepResult:
    """One spec's pooled sweep: a point per contamination fraction."""

    key: str
    points: list[AttackSweepPoint] = field(default_factory=list)

    def confusion_dicts(self) -> list[dict[str, int]]:
        """Raw counts per fraction — handy for equality assertions."""
        return [point.confusion.as_dict() for point in self.points]


@dataclass(frozen=True)
class _FoldTask:
    """One (spec, fold) unit of work, fully self-describing."""

    spec_key: str
    fold_index: int
    train_indices: tuple[int, ...]
    test_indices: tuple[int, ...]
    attack_seed: int


@dataclass(frozen=True)
class _SpecPayload:
    """The per-spec data workers need (attack + planned counts)."""

    attack: Attack
    counts: tuple[int, ...]
    ham_only: bool


@dataclass(frozen=True)
class _SweepContext:
    """Read-only worker context, shipped once per worker process.

    The inbox travels as parallel tuples of sorted token-ID arrays and
    labels plus ONE interning table, not as :class:`Dataset` — workers
    never look at bodies, headers or token strings, and machine-packed
    ID arrays cut the per-worker pickle well below even the old
    frozenset representation.  ``full_model`` shares the same table
    object, so the arrays index directly into its count columns on the
    other side of the pickle.

    When ``corpus`` is set (parallel runs on the NumPy kernel), the
    encoded inbox travels as a shared-memory handle instead of the
    ``token_ids`` tuple: workers attach the one published CSR segment
    read-only and the context pickle shrinks from the whole inbox to a
    segment name.  :meth:`shared_corpora` is the hook
    :class:`~repro.engine.runner.WorkerPool` adopts segments through.
    """

    token_ids: tuple[array, ...] | None
    labels: tuple[bool, ...]
    specs: dict[str, _SpecPayload]
    options: ClassifierOptions
    table: TokenTable
    full_model: Classifier | None
    corpus: "sharedmem.SharedCorpus | sharedmem.InlineCorpus | None" = None

    def rows(self) -> Sequence:
        """Per-message ID arrays, whichever transport carried them."""
        if self.corpus is not None:
            return self.corpus.rows_list()
        return self.token_ids

    def shared_corpora(self):
        return [self.corpus] if self.corpus is not None else []


def _grouped_id_indices(
    context: _SweepContext, indices: tuple[int, ...]
) -> list[tuple[array, bool, int]]:
    """Collapse index lists into (token_ids, is_spam, count) groups."""
    groups: dict[tuple[bool, bytes], list] = {}
    token_ids = context.rows()
    labels = context.labels
    for i in indices:
        ids = token_ids[i]
        key = (labels[i], ids.tobytes())
        entry = groups.get(key)
        if entry is None:
            groups[key] = [ids, 1]
        else:
            entry[1] += 1
    return [(ids, is_spam, count) for (is_spam, _), (ids, count) in groups.items()]


def _fold_classifier(context: _SweepContext, task: _FoldTask):
    """The fold's clean classifier, plus the snapshot to restore (if any)."""
    if context.full_model is not None:
        classifier = context.full_model
        snap = classifier.snapshot()
        for ids, is_spam, count in _grouped_id_indices(context, task.test_indices):
            classifier.unlearn_ids_repeated(ids, is_spam, count)
        return classifier, snap
    classifier = ndkernel.create_classifier(context.options, table=context.table)
    for ids, is_spam, count in _grouped_id_indices(context, task.train_indices):
        classifier.learn_ids_repeated(ids, is_spam, count)
    return classifier, None


def _evaluate_indices(
    classifier: Classifier,
    context: _SweepContext,
    indices: tuple[int, ...],
    ham_only: bool,
) -> dict[str, int]:
    ham_cutoff = classifier.options.ham_cutoff
    spam_cutoff = classifier.options.spam_cutoff
    kept = [i for i in indices if not (ham_only and context.labels[i])]
    corpus = context.corpus
    if corpus is not None and isinstance(classifier, ndkernel.NDClassifier):
        # Fold stripes are scored cold after every contamination step,
        # so the CSR bulk path (no per-row Python assembly) wins here.
        scores = classifier.score_csr(corpus.as_csr(), rows=kept)
    else:
        rows = context.rows()
        scores = classifier.score_many_ids([rows[i] for i in kept])
    counts = _confusion_counts()()
    for i, score in zip(kept, scores):
        if score <= ham_cutoff:
            label = Label.HAM
        elif score <= spam_cutoff:
            label = Label.UNSURE
        else:
            label = Label.SPAM
        counts.record(context.labels[i], label)
    return counts.as_dict()


def _run_fold_task(context: _SweepContext, task: _FoldTask) -> list[dict[str, int]]:
    """Sweep one fold of one spec; return a confusion dict per fraction."""
    spec = context.specs[task.spec_key]
    classifier, snap = _fold_classifier(context, task)
    try:
        batch = spec.attack.generate(spec.counts[-1], random.Random(task.attack_seed))
        trainer = IncrementalAttackTrainer(classifier, batch)
        confusions = []
        for count in spec.counts:
            trainer.advance_to(count)
            confusions.append(
                _evaluate_indices(classifier, context, task.test_indices, spec.ham_only)
            )
        return confusions
    finally:
        if snap is not None:
            classifier.restore(snap)


def run_attack_sweeps(
    inbox: Dataset,
    specs: Sequence[tuple[SweepSpec, random.Random]],
    folds: int,
    options: ClassifierOptions = DEFAULT_OPTIONS,
    tokenizer: Tokenizer = DEFAULT_TOKENIZER,
    workers: int | None = 1,
    reuse_clean_model: bool = True,
    table: TokenTable | None = None,
) -> list[SweepResult]:
    """Run every spec's K-fold contamination sweep, fanning folds out.

    Each spec comes with its own ``random.Random``, consumed exactly as
    the sequential implementation would (fold shuffle, then one 64-bit
    attack seed per fold) — so any worker count, and the legacy
    sequential path, produce identical :class:`SweepResult`s.

    ``reuse_clean_model=True`` (the default) enables the shared
    full-inbox model with per-fold stripe subtraction; ``False`` keeps
    the naive train-per-fold behaviour (only the benchmark baseline
    wants that).

    ``table`` is the interning table the inbox is encoded against; pass
    a pre-populated corpus table to reuse encodings across calls, or
    let the sweep build a private one.
    """
    if not specs:
        raise EngineError("run_attack_sweeps needs at least one spec")
    keys = [spec.key for spec, _ in specs]
    if len(set(keys)) != len(keys):
        raise EngineError(f"sweep spec keys must be unique, got {keys}")
    base_size = len(inbox)
    payloads: dict[str, _SpecPayload] = {}
    tasks: list[_FoldTask] = []
    for spec, rng in specs:
        counts = tuple(attack_message_count(base_size, f) for f in spec.fractions)
        payloads[spec.key] = _SpecPayload(spec.attack, counts, spec.ham_only)
        pairs = inbox.k_fold_indices(folds, rng)
        seeds = drawn_seeds(rng, len(pairs))
        for fold_index, ((train_idx, test_idx), seed) in enumerate(zip(pairs, seeds)):
            tasks.append(
                _FoldTask(spec.key, fold_index, tuple(train_idx), tuple(test_idx), seed)
            )
    table = inbox.encode(table, tokenizer)
    full_model: Classifier | None = None
    if reuse_clean_model:
        full_model = ndkernel.create_classifier(options, table=table)
        train_grouped(full_model, inbox, tokenizer)

    # In parallel runs on the NumPy kernel the encoded inbox crosses
    # process boundaries as ONE shared-memory CSR segment (a handle in
    # the pickle) instead of a tuple of per-message arrays.  A shared
    # WorkerPool adopts the segment and unlinks it at shutdown; a
    # private pool's segment is unlinked as soon as its map returns.
    pool = active_worker_pool()
    parallel = pool is not None or (resolve_workers(workers) > 1 and len(tasks) > 1)
    corpus = None
    token_ids: tuple[array, ...] | None = tuple(
        message.token_ids(table, tokenizer) for message in inbox
    )
    if parallel and ndkernel.classifier_class() is ndkernel.NDClassifier:
        corpus = sharedmem.share_corpus(ndkernel.CsrMatrix.from_rows(token_ids))
        token_ids = None
    context = _SweepContext(
        token_ids=token_ids,
        labels=tuple(message.is_spam for message in inbox),
        specs=payloads,
        options=options,
        table=table,
        full_model=full_model,
        corpus=corpus,
    )
    try:
        per_task = ParallelRunner(workers).map(_run_fold_task, context, tasks)
    finally:
        if corpus is not None and pool is None:
            corpus.unlink()

    confusion_counts = _confusion_counts()
    results: dict[str, SweepResult] = {}
    for spec, _ in specs:
        counts = payloads[spec.key].counts
        results[spec.key] = SweepResult(
            spec.key,
            [
                AttackSweepPoint(fraction, count, confusion_counts())
                for fraction, count in zip(spec.fractions, counts)
            ],
        )
    for task, confusions in zip(tasks, per_task):
        points = results[task.spec_key].points
        for point, confusion in zip(points, confusions):
            point.confusion.merge(confusion_counts.from_dict(confusion))
    return [results[key] for key in keys]


# ----------------------------------------------------------------------
# The seed implementation, kept as an executable specification
# ----------------------------------------------------------------------


class _StringPayloadTrainer(_BatchTrainerBase):
    """The retained string-payload incremental trainer.

    The same contamination schedule as
    :class:`IncrementalAttackTrainer` (shared via
    :class:`_BatchTrainerBase`), but training through
    ``learn_repeated`` over the groups' token *frozensets* — the
    pre-ID-native code path, kept executable as the differential
    baseline for :meth:`AttackBatch.encode`.
    """

    def _payloads_of(self, classifier: Classifier, batch: AttackBatch):
        return [(group.training_tokens, group.count) for group in batch.groups]

    def _train(self, payload, count: int) -> None:
        self._classifier.learn_repeated(payload, self._label, count)


def sequential_reference_sweep(
    inbox: Dataset,
    attack: Attack,
    fractions: Sequence[float],
    folds: int,
    rng: random.Random,
    options: ClassifierOptions = DEFAULT_OPTIONS,
    tokenizer: Tokenizer = DEFAULT_TOKENIZER,
    ham_only: bool = False,
) -> list[AttackSweepPoint]:
    """The original strictly sequential sweep, verbatim.

    Retained so equivalence tests and ``bench_parallel_sweep`` can
    prove the engine's fan-out and clean-model reuse change nothing:
    one classifier per fold trained from scratch, per-message scoring,
    rng drawn inline.  Attack contamination is layered through the
    *string-payload* path (``learn_repeated`` over
    ``AttackMessageGroup.training_tokens``), so this function doubles
    as the differential baseline for the ID-native
    :meth:`AttackBatch.encode` training the engine uses.
    """
    ordered = list(fractions)
    if ordered != sorted(ordered):
        raise ExperimentError("fractions must be ascending for incremental training")
    if not ordered:
        raise ExperimentError("need at least one fraction")
    base_size = len(inbox)
    counts = [attack_message_count(base_size, fraction) for fraction in ordered]
    confusion_counts = _confusion_counts()
    points = [
        AttackSweepPoint(fraction, count, confusion_counts())
        for fraction, count in zip(ordered, counts)
    ]
    for train_set, test_set in inbox.k_folds(folds, rng):
        classifier = Classifier(options)
        train_grouped(classifier, train_set, tokenizer)
        fold_rng = random.Random(rng.getrandbits(64))
        batch = attack.generate(counts[-1], fold_rng)
        trainer = _StringPayloadTrainer(classifier, batch)
        for point in points:
            trainer.advance_to(point.attack_message_count)
            ham_cutoff = options.ham_cutoff
            spam_cutoff = options.spam_cutoff
            fold_counts = confusion_counts()
            for message in test_set:
                if ham_only and message.is_spam:
                    continue
                score = classifier.score(message.tokens(tokenizer))
                if score <= ham_cutoff:
                    label = Label.HAM
                elif score <= spam_cutoff:
                    label = Label.UNSURE
                else:
                    label = Label.SPAM
                fold_counts.record(message.is_spam, label)
            point.confusion.merge(fold_counts)
    return points
