"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one type at an API boundary
without swallowing genuine programming errors (``TypeError``,
``KeyError``, ...).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CorpusError",
    "MessageParseError",
    "TrainingError",
    "AttackError",
    "DefenseError",
    "EngineError",
    "ExperimentError",
    "MapTimeoutError",
    "PersistenceError",
    "ProtocolError",
    "ScenarioError",
    "SegmentLostError",
    "ServeError",
    "WorkerCrashError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid parameter or combination of parameters was supplied."""


class CorpusError(ReproError):
    """A corpus could not be built, sampled, or loaded."""


class MessageParseError(ReproError):
    """Raw email text could not be parsed into an :class:`Email`."""


class TrainingError(ReproError):
    """The classifier was asked to do something inconsistent.

    The canonical example is unlearning a message that was never
    learned, which would corrupt token counts.
    """


class AttackError(ReproError):
    """An attack could not be constructed with the given knowledge."""


class DefenseError(ReproError):
    """A defense could not be applied (e.g. not enough calibration data)."""


class EngineError(ReproError):
    """The parallel execution engine was misconfigured or a worker failed."""


class _SupervisedMapError(EngineError):
    """Base for supervised-map failures that carry chunk provenance.

    ``chunk_starts`` are the task-order offsets of the chunks that
    never completed, ``attempts`` is how many times the supervisor
    retried the map before giving up, and ``provenance`` is a short
    rendering of the first unfinished task (for fold tasks that names
    the spec key, fold index and attack seed) — enough to re-run the
    failing unit standalone.
    """

    def __init__(
        self,
        message: str,
        *,
        chunk_starts: tuple[int, ...] = (),
        attempts: int = 0,
        provenance: str | None = None,
    ) -> None:
        detail = message
        if chunk_starts:
            detail += f" [unfinished chunk offsets: {list(chunk_starts)}]"
        if attempts:
            detail += f" [attempts: {attempts}]"
        if provenance:
            detail += f" [first unfinished task: {provenance}]"
        super().__init__(detail)
        self.chunk_starts = tuple(chunk_starts)
        self.attempts = attempts
        self.provenance = provenance


class WorkerCrashError(_SupervisedMapError):
    """A worker process died (pool broke) and the retry budget ran out."""


class MapTimeoutError(_SupervisedMapError):
    """A map's chunks missed their deadline and the retry budget ran out."""


class SegmentLostError(EngineError):
    """A shared-memory segment disappeared under a reader.

    Raised by attach when the segment name no longer exists — the
    publishing process died (its atexit/janitor reclaimed the name) or
    a fault-injection run unlinked it deliberately.  The supervision
    layer treats it as retryable infrastructure failure and ultimately
    degrades to in-process execution, where the owner's original
    mapping is still valid.
    """


class ExperimentError(ReproError):
    """An experiment driver received an invalid or inconsistent setup."""


class PersistenceError(ReproError):
    """A classifier database could not be saved or restored."""


class ScenarioError(ReproError):
    """A scenario definition, lookup, or override was invalid."""


class ServeError(ReproError):
    """The filter service could not start, stopped unexpectedly, or a
    client request could not be completed."""


class ProtocolError(ServeError):
    """A wire frame violated the serve protocol.

    Covers framing faults (truncated or oversized frames), payloads
    that are not JSON objects, and requests whose verb or fields do not
    match the grammar.  The daemon answers each with a one-line
    structured error envelope and keeps serving — a malformed client
    must never take the service down.
    """
