"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one type at an API boundary
without swallowing genuine programming errors (``TypeError``,
``KeyError``, ...).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CorpusError",
    "MessageParseError",
    "TrainingError",
    "AttackError",
    "DefenseError",
    "EngineError",
    "ExperimentError",
    "PersistenceError",
    "ScenarioError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid parameter or combination of parameters was supplied."""


class CorpusError(ReproError):
    """A corpus could not be built, sampled, or loaded."""


class MessageParseError(ReproError):
    """Raw email text could not be parsed into an :class:`Email`."""


class TrainingError(ReproError):
    """The classifier was asked to do something inconsistent.

    The canonical example is unlearning a message that was never
    learned, which would corrupt token counts.
    """


class AttackError(ReproError):
    """An attack could not be constructed with the given knowledge."""


class DefenseError(ReproError):
    """A defense could not be applied (e.g. not enough calibration data)."""


class EngineError(ReproError):
    """The parallel execution engine was misconfigured or a worker failed."""


class ExperimentError(ReproError):
    """An experiment driver received an invalid or inconsistent setup."""


class PersistenceError(ReproError):
    """A classifier database could not be saved or restored."""


class ScenarioError(ReproError):
    """A scenario definition, lookup, or override was invalid."""
