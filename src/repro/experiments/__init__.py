"""The paper's experimental protocol (Section 4) and defenses
evaluation (Section 5), as runnable experiment drivers.

One module per paper artifact:

* :mod:`repro.experiments.params` — Table 1 parameters,
* :mod:`repro.experiments.dictionary_exp` — Figure 1,
* :mod:`repro.experiments.focused_exp` — Figures 2 and 3 (and the
  Figure 4 token-shift data via :mod:`repro.analysis.token_shift`),
* :mod:`repro.experiments.roni_exp` — the Section 5.1 RONI numbers,
* :mod:`repro.experiments.threshold_exp` — Figure 5,

two beyond-the-paper drivers:

* :mod:`repro.experiments.goodword_exp` — Lowd & Meek evasion costs
  (the Exploratory/Integrity quadrant of the Section 3.1 taxonomy),
* :mod:`repro.experiments.retraining` — the multi-week retraining
  deployment simulation of the Section 2.1 threat model,

plus shared machinery:

* :mod:`repro.experiments.metrics` — three-way confusion accounting,
* :mod:`repro.experiments.crossval` — K-fold incremental attack
  sweeps (facade over the parallel :mod:`repro.engine`),
* :mod:`repro.experiments.results` — serializable result records,
* :mod:`repro.experiments.reporting` — ASCII rendering of results,
* :mod:`repro.experiments.paper_targets` — the paper's reported values
  for shape comparison.

All drivers take explicit size parameters with laptop-friendly
defaults; pass :func:`repro.experiments.params.paper_scale` configs to
run the full Table-1 sizes.  Every config accepts ``workers`` to fan
its independent units out across processes (results identical at any
worker count).

Since PR 3 each driver module is the experiment's *definition*
(config + result dataclasses + picklable fan-out workers) while the
orchestration lives in the declarative scenario layer
(:mod:`repro.scenarios`): ``run_*_experiment`` delegates to the
registered scenario through the generic
:func:`repro.scenarios.run_scenario` executor, bit-identically.
"""

from repro.experiments.metrics import ConfusionCounts
from repro.experiments.crossval import (
    AttackSweepPoint,
    attack_fraction_sweep,
    train_grouped,
    unlearn_grouped,
)
from repro.experiments.dictionary_exp import (
    DictionaryExperimentConfig,
    DictionaryExperimentResult,
    run_dictionary_experiment,
)
from repro.experiments.focused_exp import (
    FocusedExperimentConfig,
    FocusedKnowledgeResult,
    FocusedSizeResult,
    run_focused_knowledge_experiment,
    run_focused_size_experiment,
)
from repro.experiments.goodword_exp import (
    GoodWordExperimentConfig,
    GoodWordExperimentResult,
    run_goodword_experiment,
)
from repro.experiments.retraining import (
    RetrainingConfig,
    RetrainingResult,
    WeeklyOutcome,
    run_retraining_simulation,
)
from repro.experiments.roni_exp import (
    RoniExperimentConfig,
    RoniExperimentResult,
    run_roni_experiment,
)
from repro.experiments.threshold_exp import (
    ThresholdExperimentConfig,
    ThresholdExperimentResult,
    run_threshold_experiment,
)

__all__ = [
    "ConfusionCounts",
    "AttackSweepPoint",
    "attack_fraction_sweep",
    "train_grouped",
    "unlearn_grouped",
    "GoodWordExperimentConfig",
    "GoodWordExperimentResult",
    "run_goodword_experiment",
    "RetrainingConfig",
    "RetrainingResult",
    "WeeklyOutcome",
    "run_retraining_simulation",
    "DictionaryExperimentConfig",
    "DictionaryExperimentResult",
    "run_dictionary_experiment",
    "FocusedExperimentConfig",
    "FocusedKnowledgeResult",
    "FocusedSizeResult",
    "run_focused_knowledge_experiment",
    "run_focused_size_experiment",
    "RoniExperimentConfig",
    "RoniExperimentResult",
    "run_roni_experiment",
    "ThresholdExperimentConfig",
    "ThresholdExperimentResult",
    "run_threshold_experiment",
]
