"""Shared attack-payload ↔ dataset adapters.

Several experiment layers need to treat an
:class:`~repro.attacks.base.AttackBatch` as ordinary dataset members —
the threshold defense fits on "the poisoned training set, attack
messages included", the weekly retraining loop feeds attack arrivals
through the RONI gate, and the streaming engine does both per tick.
The adapter used to live in :mod:`repro.experiments.threshold_exp`,
which forced sibling experiments to import one experiment from
another; it lives here now, as shared experiment-layer plumbing
(:mod:`repro.experiments.threshold_exp` keeps a deprecated re-export
for old import paths).
"""

from __future__ import annotations

from repro.attacks.base import AttackBatch
from repro.corpus.dataset import LabeledMessage
from repro.spambayes.message import Email

__all__ = ["attack_messages_as_dataset"]


def attack_messages_as_dataset(batch: AttackBatch, start: int = 0) -> list[LabeledMessage]:
    """Materialize a batch as spam-labeled dataset members.

    Bodies stay empty — token caches are pre-seeded with the payload,
    which is all downstream training ever reads — so a thousand
    90k-token attack messages cost one shared frozenset, not gigabytes
    of rendered text.
    """
    messages: list[LabeledMessage] = []
    index = start
    for group in batch.groups:
        for _ in range(group.count):
            message = LabeledMessage(
                Email(body="", msgid=f"attack-{batch.attack_name}-{index:06d}"),
                is_spam=True,
            )
            message._tokens = group.training_tokens
            messages.append(message)
            index += 1
    return messages
