"""Cross-validated attack sweeps — the engine behind Figures 1 and 5.

The paper's protocol (Section 4.1): partition an N-message inbox into
K folds; for each fold, train on the other K-1 folds plus the attack
messages and classify the held-out fold; report rates pooled over
folds.  Attack strength is swept as "percent control of the training
set": a fraction ``f`` corresponds to ``round(N * f / (1 - f))``
attack messages (1% of a 10,000-message inbox = 101 messages, exactly
the paper's accounting).

The machinery lives in :mod:`repro.engine.sweep`; this module is the
experiment-layer facade and keeps the historical names importable.
:func:`attack_fraction_sweep` routes through the engine, which adds —
without changing any result —

* *fold models by subtraction* — one full-inbox model shared per
  sweep; each fold snapshots it, unlearns its held-out stripe, and
  restores afterwards, instead of retraining K times;
* *bulk scoring* — held-out folds score through
  :meth:`Classifier.score_many`;
* *process fan-out* — ``workers=N`` spreads folds across worker
  processes with pre-drawn per-fold seeds, bit-identical to
  ``workers=1`` and to the retained sequential reference
  (:func:`repro.engine.sweep.sequential_reference_sweep`).

The older optimizations still apply: *grouped training*
(:func:`train_grouped`) collapses identical token sets into one
``learn_repeated`` call, and *incremental contamination* sweeps
fractions in ascending order so attack batches are layered on top of
each fold's classifier batch by batch (exact, because learning only
sums counts).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.corpus.dataset import Dataset
from repro.attacks.base import Attack
from repro.engine.sweep import (
    AttackSweepPoint,
    IncrementalAttackTrainer,
    SweepSpec,
    attack_message_count,
    evaluate_dataset,
    run_attack_sweeps,
    train_grouped,
    unlearn_grouped,
)
from repro.spambayes.options import ClassifierOptions, DEFAULT_OPTIONS
from repro.spambayes.tokenizer import Tokenizer, DEFAULT_TOKENIZER

__all__ = [
    "AttackSweepPoint",
    "attack_message_count",
    "train_grouped",
    "unlearn_grouped",
    "evaluate_dataset",
    "attack_fraction_sweep",
]

# Historical private name; the threshold and focused drivers grew up
# importing it from here.
_IncrementalAttackTrainer = IncrementalAttackTrainer


def attack_fraction_sweep(
    inbox: Dataset,
    attack: Attack,
    fractions: Sequence[float],
    folds: int,
    rng: random.Random,
    options: ClassifierOptions = DEFAULT_OPTIONS,
    tokenizer: Tokenizer = DEFAULT_TOKENIZER,
    ham_only: bool = False,
    workers: int | None = 1,
) -> list[AttackSweepPoint]:
    """Sweep contamination levels for ``attack`` over a K-fold protocol.

    Returns one pooled :class:`AttackSweepPoint` per fraction, in the
    (ascending) order given.  ``fractions`` may start at 0.0 to include
    the clean baseline.  ``workers`` fans folds out across processes;
    results are identical at any value.
    """
    spec = SweepSpec(
        key=attack.name or "attack",
        attack=attack,
        fractions=tuple(fractions),
        ham_only=ham_only,
    )
    (result,) = run_attack_sweeps(
        inbox,
        [(spec, rng)],
        folds,
        options=options,
        tokenizer=tokenizer,
        workers=workers,
    )
    return result.points
