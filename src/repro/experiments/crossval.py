"""Cross-validated attack sweeps — the engine behind Figures 1 and 5.

The paper's protocol (Section 4.1): partition an N-message inbox into
K folds; for each fold, train on the other K-1 folds plus the attack
messages and classify the held-out fold; report rates pooled over
folds.  Attack strength is swept as "percent control of the training
set": a fraction ``f`` corresponds to ``round(N * f / (1 - f))``
attack messages (1% of a 10,000-message inbox = 101 messages, exactly
the paper's accounting).

Two optimizations keep paper-scale sweeps tractable without changing
any result:

* *grouped training* (:func:`train_grouped`) — identical token sets
  collapse into one ``learn_repeated`` call;
* *incremental contamination* — fractions are swept in ascending
  order, so each fold's classifier is trained once and attack messages
  are layered on top batch by batch; the classifier state at each
  point is identical to training from scratch because learning is
  order-independent (it only sums counts).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.attacks.base import Attack, AttackBatch
from repro.corpus.dataset import Dataset, LabeledMessage
from repro.errors import ExperimentError
from repro.experiments.metrics import ConfusionCounts
from repro.spambayes.classifier import Classifier
from repro.spambayes.filter import Label
from repro.spambayes.options import ClassifierOptions, DEFAULT_OPTIONS
from repro.spambayes.tokenizer import Tokenizer, DEFAULT_TOKENIZER

__all__ = [
    "AttackSweepPoint",
    "attack_message_count",
    "train_grouped",
    "evaluate_dataset",
    "attack_fraction_sweep",
]


def attack_message_count(base_size: int, fraction: float) -> int:
    """Attack messages needed for ``fraction`` control of training.

    ``fraction`` is attack/(base + attack), the paper's x-axis, so the
    count is ``base * f / (1 - f)`` rounded.
    """
    if not 0.0 <= fraction < 1.0:
        raise ExperimentError(f"attack fraction must be in [0, 1), got {fraction}")
    return round(base_size * fraction / (1.0 - fraction))


def train_grouped(
    classifier: Classifier,
    messages: Iterable[LabeledMessage],
    tokenizer: Tokenizer = DEFAULT_TOKENIZER,
) -> None:
    """Train ``messages``, collapsing identical token sets into one pass."""
    groups: dict[tuple[bool, frozenset[str]], int] = {}
    for message in messages:
        key = (message.is_spam, message.tokens(tokenizer))
        groups[key] = groups.get(key, 0) + 1
    for (is_spam, tokens), count in groups.items():
        classifier.learn_repeated(tokens, is_spam, count)


def evaluate_dataset(
    classifier: Classifier,
    messages: Iterable[LabeledMessage],
    tokenizer: Tokenizer = DEFAULT_TOKENIZER,
    ham_only: bool = False,
    cutoffs: tuple[float, float] | None = None,
) -> ConfusionCounts:
    """Classify ``messages`` and tally a confusion matrix.

    ``cutoffs`` overrides the classifier's (θ0, θ1) without touching
    its state — the dynamic-threshold experiment evaluates one trained
    classifier under several threshold fits.
    """
    if cutoffs is None:
        ham_cutoff, spam_cutoff = classifier.options.ham_cutoff, classifier.options.spam_cutoff
    else:
        ham_cutoff, spam_cutoff = cutoffs
    counts = ConfusionCounts()
    for message in messages:
        if ham_only and message.is_spam:
            continue
        score = classifier.score(message.tokens(tokenizer))
        if score <= ham_cutoff:
            label = Label.HAM
        elif score <= spam_cutoff:
            label = Label.UNSURE
        else:
            label = Label.SPAM
        counts.record(message.is_spam, label)
    return counts


@dataclass
class AttackSweepPoint:
    """Pooled test results at one contamination level."""

    attack_fraction: float
    attack_message_count: int
    confusion: ConfusionCounts


class _IncrementalAttackTrainer:
    """Feeds a fold's classifier ever more of one attack batch."""

    def __init__(self, classifier: Classifier, batch: AttackBatch) -> None:
        self._classifier = classifier
        self._groups = batch.groups
        self._group_index = 0
        self._used_in_group = 0
        self.trained = 0

    def advance_to(self, target: int) -> None:
        """Train messages until ``target`` of the batch are in effect."""
        if target < self.trained:
            raise ExperimentError(
                f"attack sweep must be ascending: asked for {target} after {self.trained}"
            )
        while self.trained < target:
            if self._group_index >= len(self._groups):
                raise ExperimentError(
                    f"attack batch exhausted at {self.trained} of {target} messages"
                )
            group = self._groups[self._group_index]
            available = group.count - self._used_in_group
            take = min(available, target - self.trained)
            self._classifier.learn_repeated(group.training_tokens, True, take)
            self._used_in_group += take
            self.trained += take
            if self._used_in_group == group.count:
                self._group_index += 1
                self._used_in_group = 0


def attack_fraction_sweep(
    inbox: Dataset,
    attack: Attack,
    fractions: Sequence[float],
    folds: int,
    rng: random.Random,
    options: ClassifierOptions = DEFAULT_OPTIONS,
    tokenizer: Tokenizer = DEFAULT_TOKENIZER,
    ham_only: bool = False,
) -> list[AttackSweepPoint]:
    """Sweep contamination levels for ``attack`` over a K-fold protocol.

    Returns one pooled :class:`AttackSweepPoint` per fraction, in the
    (ascending) order given.  ``fractions`` may start at 0.0 to include
    the clean baseline.
    """
    ordered = list(fractions)
    if ordered != sorted(ordered):
        raise ExperimentError("fractions must be ascending for incremental training")
    if not ordered:
        raise ExperimentError("need at least one fraction")
    base_size = len(inbox)
    counts = [attack_message_count(base_size, fraction) for fraction in ordered]
    max_count = counts[-1]
    points = [
        AttackSweepPoint(fraction, count, ConfusionCounts())
        for fraction, count in zip(ordered, counts)
    ]
    for fold_index, (train_set, test_set) in enumerate(inbox.k_folds(folds, rng)):
        classifier = Classifier(options)
        train_grouped(classifier, train_set, tokenizer)
        fold_rng = random.Random(rng.getrandbits(64))
        batch = attack.generate(max_count, fold_rng)
        trainer = _IncrementalAttackTrainer(classifier, batch)
        for point in points:
            trainer.advance_to(point.attack_message_count)
            fold_counts = evaluate_dataset(classifier, test_set, tokenizer, ham_only=ham_only)
            point.confusion.merge(fold_counts)
    return points
