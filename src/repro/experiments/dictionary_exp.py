"""Figure 1: dictionary attacks vs percent control of the training set.

Protocol (Section 4.2): an N-message inbox at a given spam prevalence,
K-fold cross-validation, and for each attack variant a sweep over
contamination fractions.  Reported per fraction: percent of test ham
classified as spam (dashed lines in the figure) and as spam-or-unsure
(solid lines), pooled over folds.

Variants, in the paper's legend order: *optimal* (every token the
victim can see), *usenet* (top-k Usenet words), *aspell* (the English
dictionary).

This module is the experiment's *definition* — its config, its result
shape, its public entry point.  Execution is the registered
``figure1-dictionary`` scenario
(:func:`repro.scenarios.protocols.run_dictionary_sweep` through the
generic :func:`repro.scenarios.run_scenario` executor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.attacks.base import Attack
from repro.attacks.variants import build_attack_variants as _build_attack_variants
from repro.corpus.trec import TrecStyleCorpus
from repro.corpus.vocabulary import VocabularyProfile, SMALL_PROFILE
from repro.errors import ExperimentError
from repro.experiments.crossval import AttackSweepPoint
from repro.experiments.results import CurvePoint, ExperimentRecord, Series
from repro.spambayes.options import ClassifierOptions, DEFAULT_OPTIONS

__all__ = [
    "DictionaryExperimentConfig",
    "DictionaryExperimentResult",
    "build_attack_variants",
    "run_dictionary_experiment",
]

PAPER_FRACTIONS = (0.0, 0.001, 0.005, 0.01, 0.02, 0.05, 0.10)
"""Table 1's dictionary-attack fractions, plus the clean baseline."""


@dataclass(frozen=True)
class DictionaryExperimentConfig:
    """Sizes and knobs for a Figure 1 run.

    The defaults are a laptop-scale rendition (inbox 1,000, 3 folds,
    1/10-scale vocabulary); :meth:`paper_scale` restores Table 1.
    """

    inbox_size: int = 1_000
    spam_prevalence: float = 0.50
    folds: int = 3
    attack_fractions: Sequence[float] = PAPER_FRACTIONS
    variants: Sequence[str] = ("optimal", "usenet", "aspell")
    profile: VocabularyProfile = SMALL_PROFILE
    corpus_ham: int = 700
    corpus_spam: int = 700
    seed: int = 0
    options: ClassifierOptions = DEFAULT_OPTIONS
    workers: int = 1
    """Worker processes for the fold fan-out (1 = sequential; results
    are identical at any value)."""

    def __post_init__(self) -> None:
        if self.inbox_size < self.folds:
            raise ExperimentError("inbox_size must be >= folds")
        needed_ham = round(self.inbox_size * (1.0 - self.spam_prevalence))
        needed_spam = round(self.inbox_size * self.spam_prevalence)
        if self.corpus_ham < needed_ham or self.corpus_spam < needed_spam:
            raise ExperimentError(
                "corpus too small for the requested inbox: needs "
                f"{needed_ham} ham / {needed_spam} spam, corpus has "
                f"{self.corpus_ham} / {self.corpus_spam}"
            )

    @classmethod
    def small_scale(cls, seed: int = 0, workers: int = 1) -> "DictionaryExperimentConfig":
        """The standard 1/10-scale run the CLI and benchmarks share."""
        return cls(
            inbox_size=1_000,
            folds=3,
            corpus_ham=700,
            corpus_spam=700,
            seed=seed,
            workers=workers,
        )

    @classmethod
    def paper_scale(cls, seed: int = 0, workers: int = 1) -> "DictionaryExperimentConfig":
        """Table 1's large configuration: 10,000-message inbox, 10 folds."""
        from repro.corpus.vocabulary import PAPER_PROFILE

        return cls(
            inbox_size=10_000,
            spam_prevalence=0.50,
            folds=10,
            profile=PAPER_PROFILE,
            corpus_ham=6_000,
            corpus_spam=6_000,
            seed=seed,
            workers=workers,
        )


@dataclass
class DictionaryExperimentResult:
    """Sweep outcomes per attack variant, ready for reporting."""

    config: DictionaryExperimentConfig
    sweeps: dict[str, list[AttackSweepPoint]] = field(default_factory=dict)

    def to_record(self) -> ExperimentRecord:
        series = []
        for variant, points in self.sweeps.items():
            series.append(
                Series(
                    name=variant,
                    points=[
                        CurvePoint.from_confusion(point.attack_fraction, point.confusion)
                        for point in points
                    ],
                )
            )
        return ExperimentRecord(
            experiment="figure1-dictionary",
            config={
                "inbox_size": self.config.inbox_size,
                "spam_prevalence": self.config.spam_prevalence,
                "folds": self.config.folds,
                "attack_fractions": list(self.config.attack_fractions),
                "profile": self.config.profile.name,
                "seed": self.config.seed,
            },
            series=series,
        )


def build_attack_variants(
    corpus: TrecStyleCorpus, variants: Sequence[str], seed: int = 0
) -> dict[str, Attack]:
    """Instantiate the named attack variants for ``corpus``.

    Historical Figure 1 entry point, now a facade over the shared
    catalogue (:func:`repro.attacks.variants.build_attack_variants`),
    so it accepts every catalogued name, not just the Figure 1 trio.
    """
    return _build_attack_variants(corpus, variants, seed=seed)


def run_dictionary_experiment(
    config: DictionaryExperimentConfig = DictionaryExperimentConfig(),
) -> DictionaryExperimentResult:
    """Run the Figure 1 experiment end to end.

    Delegates to the ``figure1-dictionary`` scenario; results are
    bit-identical to the historical inline driver at any worker count.
    """
    from repro.scenarios import run_scenario  # late: scenarios imports this module

    return run_scenario("figure1-dictionary", config=config).result
