"""Figures 2 and 3: the focused attack.

Protocol (Section 4.3): sample a clean inbox (paper: 5,000 messages,
50% spam) and train on it; pick target ham emails *not* in the inbox;
send attack emails built from per-token guesses of each target; retrain
with the attack included; classify the target.

Figure 2 varies the attacker's knowledge — the per-token guess
probability p ∈ {0.1, 0.3, 0.5, 0.9} with a fixed number of attack
emails — and reports the fraction of targets landing in each of
ham/unsure/spam.  Figure 3 fixes p = 0.5 and sweeps the number of
attack emails, reporting the fraction of targets misclassified as spam
and as unsure-or-spam.

Implementation notes: the experiment fans out through
:class:`repro.engine.runner.ParallelRunner` in two stages, both
bit-identical at any worker count:

1. *preparation* — each repetition (inbox sample + trained classifier
   + target pool) is one task; repetitions always had decorrelated
   labelled seed streams, so they parallelize as-is;
2. *evaluation* — each (repetition, target) is one task.  Attack
   batches are generated in the parent first, because all cells share
   one sequential attack rng stream; workers then layer each batch
   onto the repetition's classifier under a
   :meth:`Classifier.snapshot`, classify the target, and
   :meth:`~Classifier.restore` — the snapshotted state is exactly what
   the historical learn/unlearn pairing produced.

This module holds the experiment's definition — configs, results, and
the picklable worker functions the fan-out ships — while the
orchestration runs as the ``figure2-focused-knowledge`` /
``figure3-focused-size`` scenarios
(:mod:`repro.scenarios.protocols`).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Sequence

from repro.attacks.base import AttackBatch
from repro.corpus.dataset import LabeledMessage
from repro.corpus.trec import TrecStyleCorpus
from repro.corpus.vocabulary import VocabularyProfile, SMALL_PROFILE
from repro.engine.sweep import IncrementalAttackTrainer, train_grouped
from repro.errors import ExperimentError
from repro.experiments.results import CurvePoint, ExperimentRecord, Series
from repro.rng import SeedSpawner
from repro.spambayes.classifier import Classifier
from repro.spambayes.ndkernel import create_classifier
from repro.spambayes.filter import Label
from repro.spambayes.options import ClassifierOptions, DEFAULT_OPTIONS

__all__ = [
    "FocusedExperimentConfig",
    "FocusedKnowledgeResult",
    "FocusedSizeResult",
    "run_focused_knowledge_experiment",
    "run_focused_size_experiment",
]

PAPER_GUESS_PROBABILITIES = (0.1, 0.3, 0.5, 0.9)


@dataclass(frozen=True)
class FocusedExperimentConfig:
    """Sizes and knobs for the focused-attack experiments.

    Defaults are 1/5-scale (inbox 1,000, 60 attack emails — the same
    6% contamination as the paper's 300-of-5,000); :meth:`paper_scale`
    restores Section 4.3 exactly.
    """

    inbox_size: int = 1_000
    spam_prevalence: float = 0.50
    n_targets: int = 10
    repetitions: int = 2
    attack_count: int = 60
    guess_probabilities: Sequence[float] = PAPER_GUESS_PROBABILITIES
    size_sweep_fractions: Sequence[float] = (0.0, 0.005, 0.01, 0.02, 0.04, 0.06, 0.08, 0.10)
    size_sweep_guess_probability: float = 0.5
    profile: VocabularyProfile = SMALL_PROFILE
    corpus_ham: int = 700
    corpus_spam: int = 700
    seed: int = 0
    options: ClassifierOptions = DEFAULT_OPTIONS
    workers: int = 1
    """Worker processes for repetition/target fan-out (results
    identical at any value)."""

    def __post_init__(self) -> None:
        if self.n_targets < 1 or self.repetitions < 1:
            raise ExperimentError("need at least one target and one repetition")
        needed_ham = round(self.inbox_size * (1.0 - self.spam_prevalence)) + self.n_targets
        if self.corpus_ham < needed_ham:
            raise ExperimentError(
                f"corpus_ham={self.corpus_ham} too small: inbox + targets need {needed_ham}"
            )

    @classmethod
    def small_scale(cls, seed: int = 0, workers: int = 1) -> "FocusedExperimentConfig":
        """The standard 1/5-scale run the CLI and benchmarks share."""
        return cls(
            inbox_size=1_000,
            n_targets=10,
            repetitions=2,
            attack_count=60,
            corpus_ham=700,
            corpus_spam=700,
            seed=seed,
            workers=workers,
        )

    @classmethod
    def paper_scale(cls, seed: int = 0, workers: int = 1) -> "FocusedExperimentConfig":
        """Section 4.3 exactly: 5,000-message inbox, 300 attack emails,
        20 targets, 5 repetitions."""
        from repro.corpus.vocabulary import PAPER_PROFILE

        return cls(
            inbox_size=5_000,
            n_targets=20,
            repetitions=5,
            attack_count=300,
            profile=PAPER_PROFILE,
            corpus_ham=3_100,
            corpus_spam=3_100,
            seed=seed,
            workers=workers,
        )


@dataclass
class _Repetition:
    """One repetition's trained inbox state and target pool."""

    classifier: Classifier
    targets: list[LabeledMessage]
    header_pool: list


@dataclass(frozen=True)
class _PrepareContext:
    """Worker context for the repetition-preparation stage."""

    corpus: TrecStyleCorpus
    config: FocusedExperimentConfig
    spawner_seed: int


def _prepare_one_repetition(context: _PrepareContext, rep: int) -> _Repetition:
    config = context.config
    rep_rng = SeedSpawner(context.spawner_seed).rng(f"rep[{rep}]")
    inbox = context.corpus.dataset.sample_inbox(
        config.inbox_size, config.spam_prevalence, rep_rng
    )
    inbox.tokenize_all()
    inbox_ids = {message.msgid for message in inbox}
    candidates = [m for m in context.corpus.dataset.ham if m.msgid not in inbox_ids]
    if len(candidates) < config.n_targets:
        raise ExperimentError(
            f"only {len(candidates)} ham outside the inbox; need {config.n_targets} targets"
        )
    targets = rep_rng.sample(candidates, config.n_targets)
    classifier = create_classifier(config.options)
    train_grouped(classifier, inbox)
    header_pool = [message.email for message in inbox.spam]
    return _Repetition(classifier, targets, header_pool)


def _label_of_ids(classifier: Classifier, target_ids) -> Label:
    score = classifier.score_ids(target_ids)
    if score <= classifier.options.ham_cutoff:
        return Label.HAM
    if score <= classifier.options.spam_cutoff:
        return Label.UNSURE
    return Label.SPAM


@dataclass(frozen=True)
class _EvalContext:
    """Worker context for the cell-evaluation stage.

    Each repetition's classifier carries its interning table; the
    tasks' ``target_ids`` were encoded against those tables in the
    parent *before* this context was built, so the IDs are valid in
    every worker (tables are append-only — attack batches trained
    worker-side only ever extend them).
    """

    classifiers: tuple[Classifier, ...]
    counts: tuple[int, ...] = ()


@dataclass(frozen=True)
class _KnowledgeTask:
    """One (repetition, target): its batches, one per guess probability."""

    rep_index: int
    target_ids: "array"
    batches: tuple[AttackBatch, ...]


def _run_knowledge_cell(context: _EvalContext, task: _KnowledgeTask) -> tuple[bool, list[str]]:
    classifier = context.classifiers[task.rep_index]
    pre_attack_ham = _label_of_ids(classifier, task.target_ids) is Label.HAM
    labels: list[str] = []
    for batch in task.batches:
        snap = classifier.snapshot()
        try:
            # ID-native: the batch encodes once against the repetition
            # classifier's table and trains as ID arrays.
            batch.train_into_ids(classifier)
            labels.append(_label_of_ids(classifier, task.target_ids).value)
        finally:
            classifier.restore(snap)
    return pre_attack_ham, labels


@dataclass(frozen=True)
class _SizeTask:
    """One (repetition, target): the full-size batch, swept ascending."""

    rep_index: int
    target_ids: "array"
    batch: AttackBatch


def _run_size_cell(context: _EvalContext, task: _SizeTask) -> list[str]:
    classifier = context.classifiers[task.rep_index]
    snap = classifier.snapshot()
    try:
        trainer = IncrementalAttackTrainer(classifier, task.batch)
        labels: list[str] = []
        for count in context.counts:
            trainer.advance_to(count)
            labels.append(_label_of_ids(classifier, task.target_ids).value)
        return labels
    finally:
        classifier.restore(snap)


@dataclass
class FocusedKnowledgeResult:
    """Figure 2: post-attack target label mix per guess probability."""

    config: FocusedExperimentConfig
    label_counts: dict[float, dict[str, int]] = field(default_factory=dict)
    pre_attack_ham: int = 0
    total_targets: int = 0

    def fractions(self, probability: float) -> dict[str, float]:
        counts = self.label_counts[probability]
        total = sum(counts.values())
        return {label: count / total for label, count in counts.items()} if total else {}

    def attack_success_rate(self, probability: float) -> float:
        """Fraction of targets no longer classified as ham."""
        fracs = self.fractions(probability)
        return fracs.get("unsure", 0.0) + fracs.get("spam", 0.0)

    def to_record(self) -> ExperimentRecord:
        series = [
            Series(
                name=label,
                points=[
                    CurvePoint(
                        x=p,
                        ham_as_spam_rate=self.fractions(p).get("spam", 0.0),
                        ham_misclassified_rate=self.attack_success_rate(p),
                    )
                    for p in sorted(self.label_counts)
                ],
            )
            for label in ("ham", "unsure", "spam")
        ]
        return ExperimentRecord(
            experiment="figure2-focused-knowledge",
            config={
                "inbox_size": self.config.inbox_size,
                "attack_count": self.config.attack_count,
                "n_targets": self.config.n_targets,
                "repetitions": self.config.repetitions,
                "seed": self.config.seed,
            },
            series=series,
            extras={
                "label_counts": {str(p): c for p, c in self.label_counts.items()},
                "pre_attack_ham": self.pre_attack_ham,
                "total_targets": self.total_targets,
            },
        )


def run_focused_knowledge_experiment(
    config: FocusedExperimentConfig = FocusedExperimentConfig(),
) -> FocusedKnowledgeResult:
    """Run the Figure 2 experiment (the ``figure2-focused-knowledge``
    scenario); bit-identical to the historical inline driver."""
    from repro.scenarios import run_scenario  # late: scenarios imports this module

    return run_scenario("figure2-focused-knowledge", config=config).result


@dataclass
class FocusedSizeResult:
    """Figure 3: target misclassification vs number of attack emails."""

    config: FocusedExperimentConfig
    points: list[CurvePoint] = field(default_factory=list)

    def to_record(self) -> ExperimentRecord:
        return ExperimentRecord(
            experiment="figure3-focused-size",
            config={
                "inbox_size": self.config.inbox_size,
                "guess_probability": self.config.size_sweep_guess_probability,
                "n_targets": self.config.n_targets,
                "repetitions": self.config.repetitions,
                "seed": self.config.seed,
            },
            series=[Series(name="target", points=self.points)],
        )


def run_focused_size_experiment(
    config: FocusedExperimentConfig = FocusedExperimentConfig(),
) -> FocusedSizeResult:
    """Run the Figure 3 experiment (p fixed, attack size swept) — the
    ``figure3-focused-size`` scenario; bit-identical to the historical
    inline driver."""
    from repro.scenarios import run_scenario  # late: scenarios imports this module

    return run_scenario("figure3-focused-size", config=config).result
