"""Evasion-cost experiment for the Exploratory good-word attacks.

Lowd & Meek's cost metric for Exploratory Integrity attacks: *how many
good words must be added to a spam message before the filter passes
it?*  This experiment measures that distribution for both of our
knowledge models (blind common-word padding vs score-oracle padding)
against a clean filter and against a filter hardened by retraining —
giving the paper's related-work contrast (Section 6) a quantitative
footing inside this reproduction.

Output: per attacker model, the evasion rate as a function of the
word budget, and the median words-to-evade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.attacks.goodword import CommonWordGoodWordAttack, OracleGoodWordAttack
from repro.corpus.trec import TrecStyleCorpus
from repro.corpus.vocabulary import VocabularyProfile, SMALL_PROFILE
from repro.corpus.wordlists import build_usenet_wordlist
from repro.errors import ExperimentError
from repro.experiments.crossval import train_grouped
from repro.experiments.results import CurvePoint, ExperimentRecord, Series
from repro.rng import SeedSpawner
from repro.spambayes.classifier import Classifier
from repro.spambayes.options import ClassifierOptions, DEFAULT_OPTIONS
from repro.spambayes.tokenizer import DEFAULT_TOKENIZER

__all__ = ["GoodWordExperimentConfig", "GoodWordExperimentResult", "run_goodword_experiment"]


@dataclass(frozen=True)
class GoodWordExperimentConfig:
    """Sizes and knobs for the evasion-cost experiment."""

    inbox_size: int = 1_000
    spam_prevalence: float = 0.50
    n_test_spam: int = 60
    word_budgets: Sequence[int] = (0, 10, 25, 50, 100, 200, 400)
    oracle_candidates: int = 3_000
    profile: VocabularyProfile = SMALL_PROFILE
    corpus_ham: int = 700
    corpus_spam: int = 700
    seed: int = 0
    options: ClassifierOptions = DEFAULT_OPTIONS

    def __post_init__(self) -> None:
        if list(self.word_budgets) != sorted(set(self.word_budgets)):
            raise ExperimentError("word_budgets must be strictly ascending")
        if self.n_test_spam < 1:
            raise ExperimentError("need at least one test spam")


@dataclass
class GoodWordExperimentResult:
    """Evasion rates per attacker model and word budget."""

    config: GoodWordExperimentConfig
    evasion: dict[str, list[tuple[int, float]]] = field(default_factory=dict)
    """model name -> [(budget, fraction of spam evading)]"""
    median_words_to_evade: dict[str, int | None] = field(default_factory=dict)
    """None when more than half the spam never evades within budget."""

    def to_record(self) -> ExperimentRecord:
        series = [
            Series(
                name=model,
                points=[
                    CurvePoint(x=float(budget), ham_as_spam_rate=0.0,
                               ham_misclassified_rate=rate)
                    for budget, rate in points
                ],
            )
            for model, points in self.evasion.items()
        ]
        return ExperimentRecord(
            experiment="goodword-evasion-cost",
            config={
                "inbox_size": self.config.inbox_size,
                "n_test_spam": self.config.n_test_spam,
                "word_budgets": list(self.config.word_budgets),
                "seed": self.config.seed,
            },
            series=series,
            extras={"median_words_to_evade": self.median_words_to_evade},
        )


def run_goodword_experiment(
    config: GoodWordExperimentConfig = GoodWordExperimentConfig(),
) -> GoodWordExperimentResult:
    """Measure evasion rate vs word budget for both knowledge models."""
    spawner = SeedSpawner(config.seed).spawn("goodword-experiment")
    corpus = TrecStyleCorpus.generate(
        n_ham=config.corpus_ham,
        n_spam=config.corpus_spam,
        profile=config.profile,
        seed=spawner.child_seed("corpus"),
    )
    inbox = corpus.dataset.sample_inbox(
        config.inbox_size, config.spam_prevalence, spawner.rng("inbox")
    )
    inbox.tokenize_all()
    classifier = Classifier(config.options)
    train_grouped(classifier, inbox)

    inbox_ids = {m.msgid for m in inbox}
    test_spam = [m for m in corpus.dataset.spam if m.msgid not in inbox_ids]
    if len(test_spam) < config.n_test_spam:
        raise ExperimentError(
            f"need {config.n_test_spam} held-out spam, only {len(test_spam)} available"
        )
    test_spam = test_spam[: config.n_test_spam]
    # Only spam the clean filter actually catches is worth evading.
    spam_cutoff = config.options.spam_cutoff
    caught = [
        m for m in test_spam
        if classifier.score(m.tokens()) > spam_cutoff
    ]
    if not caught:
        raise ExperimentError("clean filter catches no test spam; nothing to evade")

    usenet = build_usenet_wordlist(corpus.vocabulary, seed=config.seed)
    attackers = {
        "common-word (blind)": CommonWordGoodWordAttack(usenet.words),
        "oracle (Lowd-Meek)": OracleGoodWordAttack(
            classifier, usenet.words[: config.oracle_candidates]
        ),
    }

    result = GoodWordExperimentResult(config=config)
    for model_name, attacker in attackers.items():
        evasion_curve: list[tuple[int, float]] = []
        words_needed: list[int | None] = []
        per_message_evaded_at: dict[str, int | None] = {m.msgid: None for m in caught}
        for budget in config.word_budgets:
            evaded = 0
            for message in caught:
                padded = attacker.pad(message.email, budget).padded
                score = classifier.score(DEFAULT_TOKENIZER.tokenize(padded))
                if score <= spam_cutoff:
                    evaded += 1
                    if per_message_evaded_at[message.msgid] is None:
                        per_message_evaded_at[message.msgid] = budget
            evasion_curve.append((budget, evaded / len(caught)))
        result.evasion[model_name] = evasion_curve
        # Median words-to-evade, with "never evaded within budget"
        # treated as +infinity: a None median means most spam resisted.
        costs = sorted(per_message_evaded_at.values(), key=lambda c: float("inf") if c is None else c)
        median = costs[(len(costs) - 1) // 2]
        result.median_words_to_evade[model_name] = median
    return result
