"""Evasion-cost experiment for the Exploratory good-word attacks.

Lowd & Meek's cost metric for Exploratory Integrity attacks: *how many
good words must be added to a spam message before the filter passes
it?*  This experiment measures that distribution for both of our
knowledge models (blind common-word padding vs score-oracle padding)
against a clean filter and against a filter hardened by retraining —
giving the paper's related-work contrast (Section 6) a quantitative
footing inside this reproduction.

Output: per attacker model, the evasion rate as a function of the
word budget, and the median words-to-evade.

This module holds the experiment's definition (config, result, the
picklable evasion worker); orchestration runs as the
``goodword-evasion`` scenario (:mod:`repro.scenarios.protocols`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.attacks.goodword import CommonWordGoodWordAttack, OracleGoodWordAttack
from repro.corpus.vocabulary import VocabularyProfile, SMALL_PROFILE
from repro.errors import ExperimentError
from repro.spambayes.message import Email
from repro.experiments.results import CurvePoint, ExperimentRecord, Series
from repro.spambayes.classifier import Classifier
from repro.spambayes.options import ClassifierOptions, DEFAULT_OPTIONS
from repro.spambayes.tokenizer import DEFAULT_TOKENIZER

__all__ = ["GoodWordExperimentConfig", "GoodWordExperimentResult", "run_goodword_experiment"]


@dataclass(frozen=True)
class GoodWordExperimentConfig:
    """Sizes and knobs for the evasion-cost experiment."""

    inbox_size: int = 1_000
    spam_prevalence: float = 0.50
    n_test_spam: int = 60
    word_budgets: Sequence[int] = (0, 10, 25, 50, 100, 200, 400)
    oracle_candidates: int = 3_000
    profile: VocabularyProfile = SMALL_PROFILE
    corpus_ham: int = 700
    corpus_spam: int = 700
    seed: int = 0
    options: ClassifierOptions = DEFAULT_OPTIONS
    workers: int = 1
    """Worker processes for the per-message fan-out (results identical
    at any value)."""

    def __post_init__(self) -> None:
        if list(self.word_budgets) != sorted(set(self.word_budgets)):
            raise ExperimentError("word_budgets must be strictly ascending")
        if self.n_test_spam < 1:
            raise ExperimentError("need at least one test spam")


@dataclass
class GoodWordExperimentResult:
    """Evasion rates per attacker model and word budget."""

    config: GoodWordExperimentConfig
    evasion: dict[str, list[tuple[int, float]]] = field(default_factory=dict)
    """model name -> [(budget, fraction of spam evading)]"""
    median_words_to_evade: dict[str, int | None] = field(default_factory=dict)
    """None when more than half the spam never evades within budget."""

    def to_record(self) -> ExperimentRecord:
        series = [
            Series(
                name=model,
                points=[
                    CurvePoint(x=float(budget), ham_as_spam_rate=0.0,
                               ham_misclassified_rate=rate)
                    for budget, rate in points
                ],
            )
            for model, points in self.evasion.items()
        ]
        return ExperimentRecord(
            experiment="goodword-evasion-cost",
            config={
                "inbox_size": self.config.inbox_size,
                "n_test_spam": self.config.n_test_spam,
                "word_budgets": list(self.config.word_budgets),
                "seed": self.config.seed,
            },
            series=series,
            extras={"median_words_to_evade": self.median_words_to_evade},
        )


@dataclass(frozen=True)
class _GoodWordContext:
    """Read-only worker context: the trained filter and the attackers."""

    classifier: Classifier
    attackers: dict[str, CommonWordGoodWordAttack | OracleGoodWordAttack]
    budgets: tuple[int, ...]
    spam_cutoff: float


def _evade_one_message(context: _GoodWordContext, email: Email) -> dict[str, list[bool]]:
    """Per attacker model: did this spam evade at each word budget?"""
    outcome: dict[str, list[bool]] = {}
    for model_name, attacker in context.attackers.items():
        flags = []
        for budget in context.budgets:
            padded = attacker.pad(email, budget).padded
            score = context.classifier.score(DEFAULT_TOKENIZER.tokenize(padded))
            flags.append(score <= context.spam_cutoff)
        outcome[model_name] = flags
    return outcome


def run_goodword_experiment(
    config: GoodWordExperimentConfig = GoodWordExperimentConfig(),
) -> GoodWordExperimentResult:
    """Measure evasion rate vs word budget for both knowledge models —
    the ``goodword-evasion`` scenario; bit-identical to the historical
    inline driver."""
    from repro.scenarios import run_scenario  # late: scenarios imports this module

    return run_scenario("goodword-evasion", config=config).result
