"""Three-way confusion accounting.

SpamBayes' *unsure* label breaks the usual binary confusion matrix:
Section 2.3 is explicit that evaluation "must also consider
spam-as-unsure and ham-as-unsure emails", and every figure in the
paper reports two curves — ham-as-spam (dashed) and
ham-as-(spam-or-unsure) (solid).  :class:`ConfusionCounts` is the
2 (true) × 3 (predicted) matrix with exactly those derived rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.spambayes.filter import Label

__all__ = ["ConfusionCounts"]


@dataclass
class ConfusionCounts:
    """Counts of (true class, predicted label) outcomes."""

    ham_as_ham: int = 0
    ham_as_unsure: int = 0
    ham_as_spam: int = 0
    spam_as_ham: int = 0
    spam_as_unsure: int = 0
    spam_as_spam: int = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(self, is_spam: bool, label: Label) -> None:
        """Tally one classified message."""
        if is_spam:
            if label is Label.HAM:
                self.spam_as_ham += 1
            elif label is Label.UNSURE:
                self.spam_as_unsure += 1
            else:
                self.spam_as_spam += 1
        else:
            if label is Label.HAM:
                self.ham_as_ham += 1
            elif label is Label.UNSURE:
                self.ham_as_unsure += 1
            else:
                self.ham_as_spam += 1

    def merge(self, other: "ConfusionCounts") -> None:
        """Accumulate ``other`` into this matrix (cross-fold pooling)."""
        self.ham_as_ham += other.ham_as_ham
        self.ham_as_unsure += other.ham_as_unsure
        self.ham_as_spam += other.ham_as_spam
        self.spam_as_ham += other.spam_as_ham
        self.spam_as_unsure += other.spam_as_unsure
        self.spam_as_spam += other.spam_as_spam

    @classmethod
    def pooled(cls, parts: Iterable["ConfusionCounts"]) -> "ConfusionCounts":
        total = cls()
        for part in parts:
            total.merge(part)
        return total

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------

    @property
    def ham_total(self) -> int:
        return self.ham_as_ham + self.ham_as_unsure + self.ham_as_spam

    @property
    def spam_total(self) -> int:
        return self.spam_as_ham + self.spam_as_unsure + self.spam_as_spam

    @property
    def total(self) -> int:
        return self.ham_total + self.spam_total

    # ------------------------------------------------------------------
    # The paper's rates
    # ------------------------------------------------------------------

    @property
    def ham_as_spam_rate(self) -> float:
        """False positives proper — the figures' dashed lines."""
        return self.ham_as_spam / self.ham_total if self.ham_total else 0.0

    @property
    def ham_misclassified_rate(self) -> float:
        """Ham as spam *or* unsure — the figures' solid lines."""
        if not self.ham_total:
            return 0.0
        return (self.ham_as_spam + self.ham_as_unsure) / self.ham_total

    @property
    def ham_as_unsure_rate(self) -> float:
        return self.ham_as_unsure / self.ham_total if self.ham_total else 0.0

    @property
    def spam_as_spam_rate(self) -> float:
        return self.spam_as_spam / self.spam_total if self.spam_total else 0.0

    @property
    def spam_as_unsure_rate(self) -> float:
        return self.spam_as_unsure / self.spam_total if self.spam_total else 0.0

    @property
    def spam_as_ham_rate(self) -> float:
        """False negatives (Integrity violations — not this paper's goal)."""
        return self.spam_as_ham / self.spam_total if self.spam_total else 0.0

    @property
    def errors(self) -> int:
        """Messages not classified as their true class (unsure counts)."""
        return self.total - self.ham_as_ham - self.spam_as_spam

    def as_dict(self) -> dict[str, int]:
        return {
            "ham_as_ham": self.ham_as_ham,
            "ham_as_unsure": self.ham_as_unsure,
            "ham_as_spam": self.ham_as_spam,
            "spam_as_ham": self.spam_as_ham,
            "spam_as_unsure": self.spam_as_unsure,
            "spam_as_spam": self.spam_as_spam,
        }

    @classmethod
    def from_dict(cls, data: dict[str, int]) -> "ConfusionCounts":
        return cls(**{key: int(value) for key, value in data.items()})
