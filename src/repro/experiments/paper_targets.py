"""The paper's reported numbers, for shape comparison.

Our substrate is a synthetic corpus, so absolute rates will not match
the paper digit-for-digit; what must hold is the *shape*: orderings,
saturation points, and the qualitative claims the paper states in
prose.  This module collects those claims as checkable data; the
benchmark harness prints measured values alongside them and the test
suite asserts the shape predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
__all__ = ["PaperClaim", "FIGURE1_CLAIMS", "FIGURE2_CLAIMS", "FIGURE3_CLAIMS", "RONI_CLAIMS", "FIGURE5_CLAIMS", "ALL_CLAIMS"]


@dataclass(frozen=True)
class PaperClaim:
    """One qualitative claim from the paper's evaluation."""

    artifact: str
    claim: str
    paper_value: str


FIGURE1_CLAIMS = (
    PaperClaim(
        artifact="Figure 1",
        claim="attack strength ordering is optimal >= usenet >= aspell at every fraction",
        paper_value="optimal (black) above usenet (blue) above aspell (green)",
    ),
    PaperClaim(
        artifact="Figure 1",
        claim="each attack renders the filter unusable at 1% control",
        paper_value="ham misclassified (spam-or-unsure) high at 1%; usenet ~36%+ as spam",
    ),
    PaperClaim(
        artifact="Figure 1",
        claim="solid (spam-or-unsure) lines dominate dashed (spam-only) lines",
        paper_value="unsure flooding precedes outright false positives",
    ),
    PaperClaim(
        artifact="Figure 1",
        claim="optimal attack saturates: all ham misclassified within a few percent control",
        paper_value="optimal curve at ~100% by low single-digit fractions",
    ),
)

FIGURE2_CLAIMS = (
    PaperClaim(
        artifact="Figure 2",
        claim="attack success increases monotonically with guess probability p",
        paper_value="bars shift from ham to spam as p goes 0.1 -> 0.9",
    ),
    PaperClaim(
        artifact="Figure 2",
        claim="p=0.3 already changes classification on a majority of targets",
        paper_value="~60% of targets leave ham at p=0.3 (300 attack emails)",
    ),
    PaperClaim(
        artifact="Figure 2",
        claim="with near-exact knowledge the target is misclassified ~90% of the time",
        paper_value="p=0.9: ~90% of targets as spam (abstract: 90%)",
    ),
)

FIGURE3_CLAIMS = (
    PaperClaim(
        artifact="Figure 3",
        claim="target misclassification rises with the number of attack emails",
        paper_value="monotone-increasing curves",
    ),
    PaperClaim(
        artifact="Figure 3",
        claim="a ~2% attack already misclassifies roughly a third of targets",
        paper_value="100 attack emails on 5,000: target misclassified 32% of the time",
    ),
)

RONI_CLAIMS = (
    PaperClaim(
        artifact="Section 5.1",
        claim="dictionary-attack and non-attack impact distributions are separable",
        paper_value="attack >= 6.8 ham-as-ham lost; non-attack spam <= 4.4",
    ),
    PaperClaim(
        artifact="Section 5.1",
        claim="RONI identifies 100% of dictionary attack emails",
        paper_value="100% detection",
    ),
    PaperClaim(
        artifact="Section 5.1",
        claim="RONI flags no non-attack emails",
        paper_value="0% false positives",
    ),
)

FIGURE5_CLAIMS = (
    PaperClaim(
        artifact="Figure 5",
        claim="with the dynamic threshold, ham is (almost) never classified as spam",
        paper_value="defended dashed lines at ~0 at all attack levels",
    ),
    PaperClaim(
        artifact="Figure 5",
        claim="defended ham misclassification stays well below the undefended filter",
        paper_value="defended solid lines far below no-defense solid line",
    ),
    PaperClaim(
        artifact="Figure 5",
        claim="the cost: almost all spam becomes unsure under attack",
        paper_value="spam-as-unsure ~100% even at 1% contamination",
    ),
    PaperClaim(
        artifact="Figure 5",
        claim="threshold-.05 has a wider unsure band than threshold-.10",
        paper_value="Threshold-.05 wider unsure range than Threshold-.10",
    ),
)

ALL_CLAIMS = FIGURE1_CLAIMS + FIGURE2_CLAIMS + FIGURE3_CLAIMS + RONI_CLAIMS + FIGURE5_CLAIMS
