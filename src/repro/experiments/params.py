"""Table 1 of the paper: the experimental parameters, as data.

Keeping the table as structured constants means (a) the benchmark that
regenerates Table 1 can simply print it, (b) tests can assert that the
paper-scale experiment configurations really use these values, and
(c) the scaled-down defaults elsewhere are visibly *derived* from the
paper values rather than invented.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Table1Row",
    "TABLE1",
    "DICTIONARY_PARAMS",
    "FOCUSED_PARAMS",
    "RONI_PARAMS",
    "THRESHOLD_PARAMS",
]


@dataclass(frozen=True, slots=True)
class Table1Row:
    """One column of the paper's Table 1 (one experiment's parameters)."""

    experiment: str
    training_set_sizes: tuple[int, ...]
    test_set_sizes: tuple[int, ...]
    spam_prevalences: tuple[float, ...]
    attack_fractions: tuple[float, ...]
    validation: str
    target_emails: int | None = None

    def as_cells(self) -> dict[str, str]:
        """Render the row as printable table cells."""
        def fmt_sizes(values: tuple) -> str:
            return ", ".join(f"{v:,}" if isinstance(v, int) else f"{v:g}" for v in values)

        return {
            "Parameter": self.experiment,
            "Training set size": fmt_sizes(self.training_set_sizes) or "N/A",
            "Test set size": fmt_sizes(self.test_set_sizes) or "N/A",
            "Spam prevalence": fmt_sizes(self.spam_prevalences),
            "Attack fraction": fmt_sizes(self.attack_fractions),
            "Folds of validation": self.validation,
            "Target emails": str(self.target_emails) if self.target_emails else "N/A",
        }


DICTIONARY_PARAMS = Table1Row(
    experiment="Dictionary Attack",
    training_set_sizes=(2_000, 10_000),
    test_set_sizes=(200, 1_000),
    spam_prevalences=(0.50, 0.75),
    attack_fractions=(0.001, 0.005, 0.01, 0.02, 0.05, 0.10),
    validation="10",
)

FOCUSED_PARAMS = Table1Row(
    experiment="Focused Attack",
    training_set_sizes=(5_000,),
    test_set_sizes=(),
    spam_prevalences=(0.50,),
    attack_fractions=tuple(round(0.02 * i, 2) for i in range(1, 26)),
    validation="5 repetitions",
    target_emails=20,
)

RONI_PARAMS = Table1Row(
    experiment="RONI Defense",
    training_set_sizes=(20,),
    test_set_sizes=(50,),
    spam_prevalences=(0.50,),
    attack_fractions=(0.05,),
    validation="5 repetitions",
)

THRESHOLD_PARAMS = Table1Row(
    experiment="Threshold Defense",
    training_set_sizes=(2_000, 10_000),
    test_set_sizes=(200, 1_000),
    spam_prevalences=(0.50,),
    attack_fractions=(0.001, 0.01, 0.05, 0.10),
    validation="5",
)

TABLE1 = (DICTIONARY_PARAMS, FOCUSED_PARAMS, RONI_PARAMS, THRESHOLD_PARAMS)
"""The full Table 1, column order as printed in the paper."""
