"""Rendering experiment results as the paper's rows and figures.

Each ``render_*`` function takes the corresponding experiment result
and returns printable text: a data table (the numbers behind the
figure) followed by an ASCII rendition of the figure itself.  The
benchmark harness prints these, so a benchmark run's stdout doubles as
the reproduction artifact referenced by EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.plots import ascii_bar_chart, ascii_line_chart
from repro.experiments.dictionary_exp import DictionaryExperimentResult
from repro.experiments.focused_exp import FocusedKnowledgeResult, FocusedSizeResult
from repro.experiments.params import TABLE1, Table1Row
from repro.experiments.results import RateStats, ReplicatedRecord
from repro.experiments.roni_exp import RoniExperimentResult
from repro.experiments.threshold_exp import ThresholdExperimentResult
from repro.stream.runner import StreamResult

__all__ = [
    "format_table",
    "render_table1",
    "render_dictionary_result",
    "render_focused_knowledge_result",
    "render_focused_size_result",
    "render_replicated_record",
    "render_roni_result",
    "render_stream_result",
    "render_threshold_result",
]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Plain monospace table with padded columns."""
    materialized = [list(map(str, row)) for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))
    parts = [line(headers), line(["-" * width for width in widths])]
    parts.extend(line(row) for row in materialized)
    return "\n".join(parts)


def render_table1(rows: Sequence[Table1Row] = TABLE1) -> str:
    """Table 1 exactly as structured in :mod:`repro.experiments.params`."""
    field_order = (
        "Training set size",
        "Test set size",
        "Spam prevalence",
        "Attack fraction",
        "Folds of validation",
        "Target emails",
    )
    headers = ["Parameter"] + [row.experiment for row in rows]
    cells = [row.as_cells() for row in rows]
    table_rows = [[field] + [cell[field] for cell in cells] for field in field_order]
    return format_table(headers, table_rows)


def render_dictionary_result(result: DictionaryExperimentResult) -> str:
    """Figure 1's table and chart."""
    headers = ["variant", "attack %", "messages", "ham-as-spam", "ham-as-spam|unsure"]
    rows = []
    chart_series: dict[str, list[tuple[float, float]]] = {}
    for variant, points in result.sweeps.items():
        for point in points:
            rows.append(
                [
                    variant,
                    f"{point.attack_fraction:.1%}",
                    point.attack_message_count,
                    f"{point.confusion.ham_as_spam_rate:.1%}",
                    f"{point.confusion.ham_misclassified_rate:.1%}",
                ]
            )
        chart_series[f"{variant} (solid)"] = [
            (point.attack_fraction * 100, point.confusion.ham_misclassified_rate)
            for point in points
        ]
    chart = ascii_line_chart(
        chart_series,
        title="Figure 1: percent of test ham misclassified vs percent control",
        x_label="percent control of training set",
        y_label="fraction of test ham misclassified",
    )
    return format_table(headers, rows) + "\n\n" + chart


def render_focused_knowledge_result(result: FocusedKnowledgeResult) -> str:
    """Figure 2's table and bar chart."""
    headers = ["guess p", "ham", "unsure", "spam", "attack success"]
    rows = []
    bars = {}
    for probability in sorted(result.label_counts):
        fractions = result.fractions(probability)
        rows.append(
            [
                f"{probability:.1f}",
                f"{fractions.get('ham', 0.0):.0%}",
                f"{fractions.get('unsure', 0.0):.0%}",
                f"{fractions.get('spam', 0.0):.0%}",
                f"{result.attack_success_rate(probability):.0%}",
            ]
        )
        bars[f"p={probability:.1f}"] = {
            "ham": fractions.get("ham", 0.0),
            "unsure": fractions.get("unsure", 0.0),
            "spam": fractions.get("spam", 0.0),
        }
    chart = ascii_bar_chart(
        bars, title="Figure 2: target label mix vs probability of guessing target tokens"
    )
    return format_table(headers, rows) + "\n\n" + chart


def render_focused_size_result(result: FocusedSizeResult) -> str:
    """Figure 3's table and chart."""
    headers = ["attack %", "targets as spam", "targets as spam|unsure"]
    rows = [
        [
            f"{point.x:.1%}",
            f"{point.ham_as_spam_rate:.0%}",
            f"{point.ham_misclassified_rate:.0%}",
        ]
        for point in result.points
    ]
    chart = ascii_line_chart(
        {
            "as spam (dashed)": [(p.x * 100, p.ham_as_spam_rate) for p in result.points],
            "as spam|unsure (solid)": [
                (p.x * 100, p.ham_misclassified_rate) for p in result.points
            ],
        },
        title="Figure 3: percent of target ham misclassified vs percent control (p=0.5)",
        x_label="percent control of training set",
        y_label="fraction of targets misclassified",
    )
    return format_table(headers, rows) + "\n\n" + chart


def render_roni_result(result: RoniExperimentResult) -> str:
    """Section 5.1's numbers."""
    threshold = result.config.roni.ham_as_ham_threshold
    headers = ["query kind", "n", "min impact", "mean impact", "max impact"]
    rows = []
    for variant, impacts in result.attack_impacts.items():
        rows.append(
            [
                f"attack:{variant}",
                len(impacts),
                f"{min(impacts):.2f}",
                f"{sum(impacts) / len(impacts):.2f}",
                f"{max(impacts):.2f}",
            ]
        )
    spam_impacts = result.nonattack_spam_impacts
    rows.append(
        [
            "non-attack spam",
            len(spam_impacts),
            f"{min(spam_impacts):.2f}",
            f"{sum(spam_impacts) / len(spam_impacts):.2f}",
            f"{max(spam_impacts):.2f}",
        ]
    )
    summary = (
        f"\nseparability: min attack impact {result.min_attack_impact:.2f} vs "
        f"max non-attack impact {result.max_nonattack_impact:.2f} "
        f"({'SEPARABLE' if result.separable else 'NOT separable'})\n"
        f"at threshold {threshold}: detection {result.detection_rate(threshold):.0%}, "
        f"false positives {result.false_positive_rate(threshold):.0%}\n"
        f"(paper: attack >= 6.8, non-attack <= 4.4, 100% detection, 0% FP; "
        f"impacts are mean ham-as-ham messages lost on a "
        f"{result.config.roni.validation_size}-message validation set)"
    )
    return format_table(headers, rows) + summary


def render_stream_result(result: StreamResult) -> str:
    """A stream's per-tick trail: table plus the degradation curve.

    One row per tick (arrival and gate counters, the held-out rates,
    fitted cutoffs when the threshold defense ran) and an ASCII chart
    of held-out ham misclassification over time — with the
    counterfactual clean curve alongside when the spec measured it.
    """
    spec = result.spec
    with_clean = all(o.clean_confusion is not None for o in result.ticks)
    with_cutoffs = any(o.ham_cutoff is not None for o in result.ticks)
    headers = [
        "tick",
        "trained",
        "attack sent/trained/rej",
        "legit rej",
        "ham-as-spam",
        "ham-as-spam|unsure",
        "spam-as-spam",
    ]
    if with_clean:
        headers.append("clean ham|unsure")
    if with_cutoffs:
        headers.append("fitted (θ0, θ1)")
    rows = []
    for outcome in result.ticks:
        row = [
            outcome.tick,
            outcome.trained_messages,
            f"{outcome.attack_sent}/{outcome.attack_trained}/{outcome.attack_rejected}",
            outcome.legitimate_rejected,
            f"{outcome.confusion.ham_as_spam_rate:.1%}",
            f"{outcome.confusion.ham_misclassified_rate:.1%}",
            f"{outcome.confusion.spam_as_spam_rate:.1%}",
        ]
        if with_clean:
            row.append(f"{outcome.clean_confusion.ham_misclassified_rate:.1%}")
        if with_cutoffs:
            row.append(
                "-"
                if outcome.ham_cutoff is None
                else f"({outcome.ham_cutoff:.2f}, {outcome.spam_cutoff:.2f})"
            )
        rows.append(row)
    chart_series = {
        "ham-as-spam|unsure": [
            (float(o.tick), o.confusion.ham_misclassified_rate) for o in result.ticks
        ]
    }
    if with_clean:
        chart_series["clean counterfactual"] = [
            (float(o.tick), o.clean_confusion.ham_misclassified_rate)
            for o in result.ticks
        ]
    chart = ascii_line_chart(
        chart_series,
        title=f"stream: held-out ham misclassification over {spec.ticks} ticks "
        f"({spec.attack_variant} {spec.ramp}, defense={spec.defense})",
        x_label="tick (retraining period)",
        y_label="fraction of held-out ham misclassified",
    )
    return format_table(headers, rows) + "\n\n" + chart


def _error_bar(stats: RateStats) -> str:
    """``mean ±ci95`` as percentages — the error-bar cell."""
    return f"{stats.mean:7.1%} ±{stats.ci95:.1%}"


def render_replicated_record(record: ReplicatedRecord) -> str:
    """A pooled multi-seed record: error-bar table plus mean curves.

    Works for any scenario — the columns are the canonical rates, the
    rows every (series, x) cell, each rendered as ``mean ±ci95`` over
    the replica seeds (Student-t 95% interval) with the sample std
    alongside.  Scenarios whose record carries no series (the RONI
    gate's distribution record) render the replica summary line only.
    """
    n = record.n_replicas
    header = (
        f"{record.experiment}: pooled over {n} seed(s)"
        + (f", scenario {record.config['scenario']}" if "scenario" in record.config else "")
    )
    if not record.stats:
        return header + "\n(no curve series to pool; see per-replica records)"
    headers = [
        "series",
        "x",
        "ham-as-spam",
        "ham-as-spam|unsure",
        "spam-as-spam",
        "spam-as-unsure",
        "std(ham|unsure)",
    ]
    rows = []
    chart_series: dict[str, list[tuple[float, float]]] = {}
    for stats in record.stats:
        for point in stats.points:
            rows.append(
                [
                    stats.name,
                    f"{point.x:g}",
                    _error_bar(point.rate("ham_as_spam_rate")),
                    _error_bar(point.rate("ham_misclassified_rate")),
                    _error_bar(point.rate("spam_as_spam_rate")),
                    _error_bar(point.rate("spam_as_unsure_rate")),
                    f"{point.rate('ham_misclassified_rate').std:.3f}",
                ]
            )
        chart_series[stats.name] = [
            (point.x, point.rate("ham_misclassified_rate").mean)
            for point in stats.points
        ]
    chart = ascii_line_chart(
        chart_series,
        title=f"{record.experiment}: mean over {n} seeds (±95% CI in table)",
        x_label="x",
        y_label="mean rate",
    )
    return header + "\n\n" + format_table(headers, rows) + "\n\n" + chart


def render_threshold_result(result: ThresholdExperimentResult) -> str:
    """Figure 5's table and chart."""
    headers = [
        "arm",
        "attack %",
        "ham-as-spam",
        "ham-as-spam|unsure",
        "spam-as-unsure",
    ]
    rows = []
    chart_series: dict[str, list[tuple[float, float]]] = {}
    for arm, points in result.series.items():
        for point in points:
            rows.append(
                [
                    arm,
                    f"{point.x:.1%}",
                    f"{point.ham_as_spam_rate:.1%}",
                    f"{point.ham_misclassified_rate:.1%}",
                    f"{point.spam_as_unsure_rate:.1%}",
                ]
            )
        chart_series[arm] = [(p.x * 100, p.ham_misclassified_rate) for p in points]
    chart = ascii_line_chart(
        chart_series,
        title="Figure 5: ham misclassified (spam|unsure) vs percent control",
        x_label="percent control of training set",
        y_label="fraction of test ham misclassified",
    )
    fits = "\n".join(
        f"  {arm}: " + "  ".join(f"f={f:.3f}: θ=({t0:.3f},{t1:.3f})" for f, t0, t1 in triples)
        for arm, triples in result.fitted_thresholds.items()
    )
    return format_table(headers, rows) + "\n\n" + chart + "\n\nfitted thresholds:\n" + fits
