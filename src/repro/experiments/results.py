"""Serializable experiment results.

Every driver returns a result object that (a) renders itself as the
paper's rows/series via :mod:`repro.experiments.reporting`, and
(b) round-trips through JSON so benchmark runs can be archived and
compared across machines.  The JSON layer is deliberately dumb —
plain dicts, no pickle — so archived results stay readable forever.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ExperimentError
from repro.experiments.metrics import ConfusionCounts

__all__ = ["CurvePoint", "Series", "ExperimentRecord", "save_record", "load_record"]


@dataclass(frozen=True, slots=True)
class CurvePoint:
    """One (x, rates) point on a figure curve."""

    x: float
    ham_as_spam_rate: float
    ham_misclassified_rate: float
    spam_as_spam_rate: float = 0.0
    spam_as_unsure_rate: float = 0.0

    @classmethod
    def from_confusion(cls, x: float, confusion: ConfusionCounts) -> "CurvePoint":
        return cls(
            x=x,
            ham_as_spam_rate=confusion.ham_as_spam_rate,
            ham_misclassified_rate=confusion.ham_misclassified_rate,
            spam_as_spam_rate=confusion.spam_as_spam_rate,
            spam_as_unsure_rate=confusion.spam_as_unsure_rate,
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "x": self.x,
            "ham_as_spam_rate": self.ham_as_spam_rate,
            "ham_misclassified_rate": self.ham_misclassified_rate,
            "spam_as_spam_rate": self.spam_as_spam_rate,
            "spam_as_unsure_rate": self.spam_as_unsure_rate,
        }

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> "CurvePoint":
        return cls(**{key: float(value) for key, value in data.items()})


@dataclass
class Series:
    """A named curve (one line of a figure)."""

    name: str
    points: list[CurvePoint] = field(default_factory=list)

    def xs(self) -> list[float]:
        return [point.x for point in self.points]

    def values(self, attribute: str) -> list[float]:
        return [getattr(point, attribute) for point in self.points]

    def as_dict(self) -> dict[str, Any]:
        return {"name": self.name, "points": [point.as_dict() for point in self.points]}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Series":
        return cls(
            name=str(data["name"]),
            points=[CurvePoint.from_dict(point) for point in data["points"]],
        )


@dataclass
class ExperimentRecord:
    """A complete, archivable experiment outcome."""

    experiment: str
    config: dict[str, Any]
    series: list[Series] = field(default_factory=list)
    extras: dict[str, Any] = field(default_factory=dict)

    def series_named(self, name: str) -> Series:
        for series in self.series:
            if series.name == name:
                return series
        raise ExperimentError(f"no series named {name!r} in {self.experiment}")

    def as_dict(self) -> dict[str, Any]:
        return {
            "experiment": self.experiment,
            "config": self.config,
            "series": [series.as_dict() for series in self.series],
            "extras": self.extras,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ExperimentRecord":
        return cls(
            experiment=str(data["experiment"]),
            config=dict(data["config"]),
            series=[Series.from_dict(series) for series in data["series"]],
            extras=dict(data.get("extras", {})),
        )


def save_record(record: ExperimentRecord, path: str | Path) -> None:
    """Write a record as pretty-printed JSON."""
    Path(path).write_text(json.dumps(record.as_dict(), indent=2), encoding="utf-8")


def load_record(path: str | Path) -> ExperimentRecord:
    """Read a record written by :func:`save_record`."""
    return ExperimentRecord.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
