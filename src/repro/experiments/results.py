"""Serializable experiment results.

Every driver returns a result object that (a) renders itself as the
paper's rows/series via :mod:`repro.experiments.reporting`, and
(b) round-trips through JSON so benchmark runs can be archived and
compared across machines.  The JSON layer is deliberately dumb —
plain dicts, no pickle — so archived results stay readable forever.

Two record shapes live here:

* :class:`ExperimentRecord` — one run's outcome: named
  :class:`Series` of :class:`CurvePoint`\\s plus free-form extras;
* :class:`ReplicatedRecord` — a *pooled* outcome over N seeds
  (:func:`repro.engine.replicate.replicate_scenario`): the per-seed
  records verbatim, plus :class:`SeriesStats` — per-x mean, sample
  std and a 95% confidence interval over seeds for every rate — which
  is what the paper's error bars are.

**Forward compatibility is part of the format.**  Loaders ignore
unknown keys instead of crashing: an archive written by a newer
revision (which may add fields, exactly as ``ReplicatedRecord`` did)
stays readable by older code, and vice versa.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Sequence

from repro.errors import ExperimentError
from repro.experiments.metrics import ConfusionCounts

__all__ = [
    "CurvePoint",
    "Series",
    "ExperimentRecord",
    "RateStats",
    "PointStats",
    "SeriesStats",
    "ReplicatedRecord",
    "RATE_FIELDS",
    "save_record",
    "load_record",
    "load_replicated_record",
]

RATE_FIELDS: tuple[str, ...] = (
    "ham_as_spam_rate",
    "ham_misclassified_rate",
    "spam_as_spam_rate",
    "spam_as_unsure_rate",
)
"""The per-point rates every curve carries (the :class:`CurvePoint`
fields other than ``x``), in canonical order."""


@dataclass(frozen=True, slots=True)
class CurvePoint:
    """One (x, rates) point on a figure curve."""

    x: float
    ham_as_spam_rate: float
    ham_misclassified_rate: float
    spam_as_spam_rate: float = 0.0
    spam_as_unsure_rate: float = 0.0

    @classmethod
    def from_confusion(cls, x: float, confusion: ConfusionCounts) -> "CurvePoint":
        return cls(
            x=x,
            ham_as_spam_rate=confusion.ham_as_spam_rate,
            ham_misclassified_rate=confusion.ham_misclassified_rate,
            spam_as_spam_rate=confusion.spam_as_spam_rate,
            spam_as_unsure_rate=confusion.spam_as_unsure_rate,
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "x": self.x,
            "ham_as_spam_rate": self.ham_as_spam_rate,
            "ham_misclassified_rate": self.ham_misclassified_rate,
            "spam_as_spam_rate": self.spam_as_spam_rate,
            "spam_as_unsure_rate": self.spam_as_unsure_rate,
        }

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> "CurvePoint":
        """Load a point, ignoring keys this revision does not know.

        Unknown keys are *dropped*, not errors: archives written by a
        newer revision (extra rates, annotation fields) must stay
        loadable — the alternative is every field addition silently
        invalidating every existing archive.
        """
        known = _CURVE_POINT_FIELDS
        return cls(**{key: float(value) for key, value in data.items() if key in known})


_CURVE_POINT_FIELDS = frozenset(f.name for f in fields(CurvePoint))


@dataclass
class Series:
    """A named curve (one line of a figure)."""

    name: str
    points: list[CurvePoint] = field(default_factory=list)

    def xs(self) -> list[float]:
        return [point.x for point in self.points]

    def values(self, attribute: str) -> list[float]:
        return [getattr(point, attribute) for point in self.points]

    def as_dict(self) -> dict[str, Any]:
        return {"name": self.name, "points": [point.as_dict() for point in self.points]}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Series":
        """Load a series; keys beyond ``name``/``points`` are ignored."""
        return cls(
            name=str(data["name"]),
            points=[CurvePoint.from_dict(point) for point in data["points"]],
        )


@dataclass
class ExperimentRecord:
    """A complete, archivable experiment outcome."""

    experiment: str
    config: dict[str, Any]
    series: list[Series] = field(default_factory=list)
    extras: dict[str, Any] = field(default_factory=dict)

    def series_named(self, name: str) -> Series:
        for series in self.series:
            if series.name == name:
                return series
        raise ExperimentError(f"no series named {name!r} in {self.experiment}")

    def as_dict(self) -> dict[str, Any]:
        return {
            "experiment": self.experiment,
            "config": self.config,
            "series": [series.as_dict() for series in self.series],
            "extras": self.extras,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ExperimentRecord":
        return cls(
            experiment=str(data["experiment"]),
            config=dict(data["config"]),
            series=[Series.from_dict(series) for series in data["series"]],
            extras=dict(data.get("extras", {})),
        )


# ----------------------------------------------------------------------
# Pooled statistics over replicated runs
# ----------------------------------------------------------------------

# Two-sided 95% Student-t critical values (0.975 quantile) by degrees
# of freedom.  Replications pool a handful of seeds, where the normal
# approximation understates the interval badly (df=7 → 2.36, not
# 1.96); past the table a Cornish–Fisher expansion in 1/df carries the
# quantile smoothly toward the normal value (accurate to <0.1% at
# df>30, where the expansion terms are already small).
_T_CRITICAL_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}
_Z_CRITICAL_95 = 1.959964


def _t_critical_95(df: int) -> float:
    """The two-sided 95% critical value for ``df`` degrees of freedom.

    Exact table through df=30; beyond it, the Cornish–Fisher series
    for the Student-t quantile in powers of 1/df (e.g. df=31 → 2.040
    vs the published 2.040) — a pure function, so serialized records
    stay deterministic.
    """
    if df < 1:
        return 0.0
    exact = _T_CRITICAL_95.get(df)
    if exact is not None:
        return exact
    z = _Z_CRITICAL_95
    z3 = z ** 3
    z5 = z ** 5
    z7 = z ** 7
    return (
        z
        + (z3 + z) / (4 * df)
        + (5 * z5 + 16 * z3 + 3 * z) / (96 * df ** 2)
        + (3 * z7 + 19 * z5 + 17 * z3 - 15 * z) / (384 * df ** 3)
    )


@dataclass(frozen=True, slots=True)
class RateStats:
    """Mean / spread of one rate across replicas.

    ``std`` is the sample standard deviation (ddof=1; 0.0 for a single
    replica) and ``ci95`` the half-width of the two-sided 95%
    Student-t confidence interval of the mean — the error bar.
    """

    mean: float
    std: float
    ci95: float

    @classmethod
    def from_samples(cls, values: Sequence[float]) -> "RateStats":
        n = len(values)
        if n == 0:
            raise ExperimentError("RateStats needs at least one sample")
        mean = sum(values) / n
        if n < 2:
            return cls(mean=mean, std=0.0, ci95=0.0)
        variance = sum((value - mean) ** 2 for value in values) / (n - 1)
        std = math.sqrt(variance)
        ci95 = _t_critical_95(n - 1) * std / math.sqrt(n)
        return cls(mean=mean, std=std, ci95=ci95)

    def as_dict(self) -> dict[str, float]:
        return {"mean": self.mean, "std": self.std, "ci95": self.ci95}

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> "RateStats":
        return cls(
            mean=float(data["mean"]),
            std=float(data["std"]),
            ci95=float(data["ci95"]),
        )


@dataclass(frozen=True, slots=True)
class PointStats:
    """Pooled statistics at one x: a :class:`RateStats` per rate."""

    x: float
    n: int
    rates: dict[str, RateStats]

    def rate(self, name: str) -> RateStats:
        try:
            return self.rates[name]
        except KeyError:
            raise ExperimentError(f"no rate named {name!r} at x={self.x}") from None

    def as_dict(self) -> dict[str, Any]:
        return {
            "x": self.x,
            "n": self.n,
            "rates": {name: stats.as_dict() for name, stats in self.rates.items()},
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PointStats":
        return cls(
            x=float(data["x"]),
            n=int(data["n"]),
            rates={
                str(name): RateStats.from_dict(stats)
                for name, stats in data["rates"].items()
            },
        )


@dataclass
class SeriesStats:
    """One curve pooled over replicas: per-x mean/std/CI for each rate."""

    name: str
    points: list[PointStats] = field(default_factory=list)

    @classmethod
    def pool(cls, replicas: Sequence[Series]) -> "SeriesStats":
        """Pool same-named series from N replica records.

        Every replica must carry the same curve: same name, same xs in
        the same order — anything else means the runs are not
        replications of one experiment, and pooling them would produce
        a statistically meaningless record.
        """
        if not replicas:
            raise ExperimentError("cannot pool zero replica series")
        name = replicas[0].name
        xs = replicas[0].xs()
        for series in replicas[1:]:
            if series.name != name:
                raise ExperimentError(
                    f"cannot pool series {series.name!r} with {name!r}"
                )
            if series.xs() != xs:
                raise ExperimentError(
                    f"replicas of series {name!r} disagree on x values: "
                    f"{series.xs()} vs {xs}"
                )
        points = []
        for index, x in enumerate(xs):
            rates = {
                rate: RateStats.from_samples(
                    [getattr(series.points[index], rate) for series in replicas]
                )
                for rate in RATE_FIELDS
            }
            points.append(PointStats(x=x, n=len(replicas), rates=rates))
        return cls(name=name, points=points)

    def xs(self) -> list[float]:
        return [point.x for point in self.points]

    def means(self, rate: str) -> list[float]:
        return [point.rate(rate).mean for point in self.points]

    def as_dict(self) -> dict[str, Any]:
        return {"name": self.name, "points": [point.as_dict() for point in self.points]}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SeriesStats":
        return cls(
            name=str(data["name"]),
            points=[PointStats.from_dict(point) for point in data["points"]],
        )


@dataclass
class ReplicatedRecord:
    """A pooled, archivable outcome of one scenario run at many seeds.

    ``config`` describes the replication itself (scenario name, the
    replica seeds in order, overrides) and is deliberately free of
    anything execution-dependent — no worker counts, no timings — so
    the serialized record is byte-identical however the replication
    was scheduled.  ``replicas`` holds every per-seed
    :class:`ExperimentRecord` verbatim (seed i's record is exactly
    what a single run at that seed produces); ``stats`` is the pooled
    per-series view the error bars render from.
    """

    experiment: str
    config: dict[str, Any]
    stats: list[SeriesStats] = field(default_factory=list)
    replicas: list[ExperimentRecord] = field(default_factory=list)
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    def stats_named(self, name: str) -> SeriesStats:
        for stats in self.stats:
            if stats.name == name:
                return stats
        raise ExperimentError(f"no pooled series named {name!r} in {self.experiment}")

    @classmethod
    def pool(
        cls,
        replicas: Sequence[ExperimentRecord],
        *,
        experiment: str | None = None,
        config: dict[str, Any] | None = None,
        extras: dict[str, Any] | None = None,
    ) -> "ReplicatedRecord":
        """Pool N per-seed records into one replicated record.

        Statistics are computed per series name over the replicas'
        curves; records whose protocol emits no series (the RONI gate's
        distribution record) pool into an empty ``stats`` list but keep
        every replica for downstream analysis.
        """
        if not replicas:
            raise ExperimentError("cannot pool zero replica records")
        names = [series.name for series in replicas[0].series]
        stats = [
            SeriesStats.pool([record.series_named(name) for record in replicas])
            for name in names
        ]
        return cls(
            experiment=experiment or replicas[0].experiment,
            config=dict(config or {}),
            stats=stats,
            replicas=list(replicas),
            extras=dict(extras or {}),
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "experiment": self.experiment,
            "config": self.config,
            "stats": [stats.as_dict() for stats in self.stats],
            "replicas": [record.as_dict() for record in self.replicas],
            "extras": self.extras,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ReplicatedRecord":
        return cls(
            experiment=str(data["experiment"]),
            config=dict(data["config"]),
            stats=[SeriesStats.from_dict(stats) for stats in data.get("stats", [])],
            replicas=[
                ExperimentRecord.from_dict(record)
                for record in data.get("replicas", [])
            ],
            extras=dict(data.get("extras", {})),
        )


def save_record(record: "ExperimentRecord | ReplicatedRecord", path: str | Path) -> None:
    """Write a record as pretty-printed JSON.

    The serialization is deterministic — dict construction order is
    dataclass field order, floats render via ``repr`` — so two runs
    that produce equal records produce byte-identical files.
    """
    Path(path).write_text(json.dumps(record.as_dict(), indent=2), encoding="utf-8")


def load_record(path: str | Path) -> ExperimentRecord:
    """Read a record written by :func:`save_record`."""
    return ExperimentRecord.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def load_replicated_record(path: str | Path) -> ReplicatedRecord:
    """Read a :class:`ReplicatedRecord` written by :func:`save_record`."""
    return ReplicatedRecord.from_dict(
        json.loads(Path(path).read_text(encoding="utf-8"))
    )
