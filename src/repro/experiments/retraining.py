"""Multi-week retraining simulation (the Section 2.1 deployment model).

The paper's threat model is an organization that "retrains SpamBayes
periodically (e.g., weekly)" on everyone's received email.  The
figure experiments compress that into one poisoned training set; this
module plays the loop out over time so the *dynamics* are visible:

* weeks of clean mail accumulate a healthy filter,
* the attacker starts mailing dictionary payloads in week ``k``,
* each weekly retrain ingests arrivals (attack email trained as spam,
  per the contamination assumption),
* optionally, a RONI gate — recalibrated each week on previously
  accepted mail — screens every arrival before it is trained.

The per-week output (held-out ham/spam rates, attack messages trained
vs. rejected) shows the filter degrading week by week without the
defense and shrugging the attack off with it.  Used by
``examples/retraining_simulation.py`` and the durability tests.

Since the streaming engine landed, this module is the *definition*
(config and result shapes) plus two executables:

* :func:`run_retraining_simulation` — a thin delegation onto
  :class:`repro.stream.StreamRunner` (the weekly loop is a
  constant-ramp :class:`~repro.stream.spec.StreamSpec`);
* :func:`sequential_reference_retraining` — the original inline
  weekly loop, retained verbatim as the executable specification.
  ``tests/test_stream_vs_retraining.py`` holds the two side by side
  and asserts the weekly outcomes identical, field for field, under
  both defenses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus.dataset import Dataset, LabeledMessage
from repro.corpus.trec import TrecStyleCorpus
from repro.corpus.vocabulary import VocabularyProfile, SMALL_PROFILE
from repro.defenses.roni import RoniConfig, RoniDefense
from repro.errors import ExperimentError
from repro.experiments.attack_data import attack_messages_as_dataset
from repro.experiments.crossval import evaluate_dataset, train_grouped
from repro.experiments.dictionary_exp import build_attack_variants
from repro.experiments.metrics import ConfusionCounts
from repro.rng import SeedSpawner
from repro.spambayes.classifier import Classifier
from repro.spambayes.options import ClassifierOptions, DEFAULT_OPTIONS

__all__ = [
    "RetrainingConfig",
    "WeeklyOutcome",
    "RetrainingResult",
    "run_retraining_simulation",
    "sequential_reference_retraining",
]


@dataclass(frozen=True)
class RetrainingConfig:
    """Shape of the weekly retraining scenario."""

    weeks: int = 8
    ham_per_week: int = 60
    spam_per_week: int = 60
    attack_start_week: int = 4
    attack_per_week: int = 12
    attack_variant: str = "usenet"
    defense: str = "none"
    """"none" or "roni"."""
    roni: RoniConfig = RoniConfig()
    roni_calibration_size: int = 120
    test_size: int = 200
    profile: VocabularyProfile = SMALL_PROFILE
    seed: int = 0
    options: ClassifierOptions = DEFAULT_OPTIONS

    def __post_init__(self) -> None:
        if self.weeks < 1:
            raise ExperimentError("need at least one week")
        if self.defense not in ("none", "roni"):
            raise ExperimentError(f"unknown defense {self.defense!r}")
        if not 1 <= self.attack_start_week:
            raise ExperimentError("attack_start_week must be >= 1")


@dataclass
class WeeklyOutcome:
    """State of the world after one week's retrain."""

    week: int
    trained_messages: int
    attack_sent: int
    attack_trained: int
    attack_rejected: int
    legitimate_rejected: int
    confusion: ConfusionCounts


@dataclass
class RetrainingResult:
    config: RetrainingConfig
    weeks: list[WeeklyOutcome] = field(default_factory=list)

    def week(self, number: int) -> WeeklyOutcome:
        for outcome in self.weeks:
            if outcome.week == number:
                return outcome
        raise ExperimentError(f"no week {number} in result")

    def final_ham_misclassification(self) -> float:
        return self.weeks[-1].confusion.ham_misclassified_rate


def run_retraining_simulation(config: RetrainingConfig = RetrainingConfig()) -> RetrainingResult:
    """Play the weekly loop and return per-week outcomes.

    Delegates to the streaming engine: the weekly loop is exactly a
    constant-ramp :class:`~repro.stream.spec.StreamSpec`
    (:meth:`~repro.stream.spec.StreamSpec.from_retraining`), and the
    stream runner inherits this loop's seed-stream labels — so the
    outcomes are identical, field for field, to the retained
    :func:`sequential_reference_retraining`.
    """
    # Late import: repro.stream imports the experiments layer.
    from repro.stream import StreamRunner, StreamSpec

    stream_result = StreamRunner(StreamSpec.from_retraining(config)).run()
    result = RetrainingResult(config=config)
    result.weeks = [
        WeeklyOutcome(
            week=outcome.tick,
            trained_messages=outcome.trained_messages,
            attack_sent=outcome.attack_sent,
            attack_trained=outcome.attack_trained,
            attack_rejected=outcome.attack_rejected,
            legitimate_rejected=outcome.legitimate_rejected,
            confusion=outcome.confusion,
        )
        for outcome in stream_result.ticks
    ]
    return result


def sequential_reference_retraining(
    config: RetrainingConfig = RetrainingConfig(),
) -> RetrainingResult:
    """The original strictly sequential weekly loop, verbatim.

    Retained as the executable specification of the Section 2.1
    dynamics: ``tests/test_stream_vs_retraining.py`` runs it against
    the stream-engine delegation and asserts every weekly outcome
    identical, under both defenses.  New callers should use
    :func:`run_retraining_simulation` (or a richer
    :class:`~repro.stream.spec.StreamSpec` directly).
    """
    spawner = SeedSpawner(config.seed).spawn("retraining")
    needed_ham = config.weeks * config.ham_per_week + config.test_size
    needed_spam = config.weeks * config.spam_per_week + config.test_size
    corpus = TrecStyleCorpus.generate(
        n_ham=needed_ham,
        n_spam=needed_spam,
        profile=config.profile,
        seed=spawner.child_seed("corpus"),
    )
    ham_stream = corpus.dataset.ham
    spam_stream = corpus.dataset.spam
    test = Dataset(
        ham_stream[-config.test_size // 2 :] + spam_stream[-config.test_size // 2 :],
        name="held-out",
    )
    test.tokenize_all()
    ham_stream = ham_stream[: -config.test_size // 2]
    spam_stream = spam_stream[: -config.test_size // 2]

    attack = build_attack_variants(corpus, (config.attack_variant,), seed=config.seed)[
        config.attack_variant
    ]
    classifier = Classifier(config.options)
    accepted_history: list[LabeledMessage] = []
    result = RetrainingResult(config=config)

    for week in range(1, config.weeks + 1):
        week_rng = spawner.rng(f"week[{week}]")
        start_ham = (week - 1) * config.ham_per_week
        start_spam = (week - 1) * config.spam_per_week
        arrivals: list[LabeledMessage] = list(
            ham_stream[start_ham : start_ham + config.ham_per_week]
        ) + list(spam_stream[start_spam : start_spam + config.spam_per_week])
        attack_sent = config.attack_per_week if week >= config.attack_start_week else 0
        attack_arrivals: list[LabeledMessage] = []
        if attack_sent:
            batch = attack.generate(attack_sent, week_rng)
            attack_arrivals = attack_messages_as_dataset(batch, start=week * 10_000)

        attack_trained = attack_rejected = legitimate_rejected = 0
        if config.defense == "roni" and len(accepted_history) >= (
            config.roni.train_size + config.roni.validation_size
        ):
            calibration_pool = Dataset(accepted_history, name=f"accepted-through-week{week - 1}")
            sample_size = min(config.roni_calibration_size, len(calibration_pool))
            pool = calibration_pool.subset(
                week_rng.sample(range(len(calibration_pool)), sample_size)
            )
            defense = RoniDefense(pool, week_rng, config=config.roni, options=config.options)
            to_train: list[LabeledMessage] = []
            for message in arrivals:
                if defense.judge(message).rejected:
                    legitimate_rejected += 1
                else:
                    to_train.append(message)
            for message in attack_arrivals:
                if defense.judge(message).rejected:
                    attack_rejected += 1
                else:
                    to_train.append(message)
                    attack_trained += 1
        else:
            # No gate (or not enough history to calibrate one yet).
            to_train = arrivals + attack_arrivals
            attack_trained = len(attack_arrivals)

        train_grouped(classifier, to_train)
        attack_ids = {id(message) for message in attack_arrivals}
        accepted_history.extend(m for m in to_train if id(m) not in attack_ids)
        confusion = evaluate_dataset(classifier, test)
        result.weeks.append(
            WeeklyOutcome(
                week=week,
                trained_messages=classifier.nspam + classifier.nham,
                attack_sent=attack_sent,
                attack_trained=attack_trained,
                attack_rejected=attack_rejected,
                legitimate_rejected=legitimate_rejected,
                confusion=confusion,
            )
        )
    return result
