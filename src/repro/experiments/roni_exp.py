"""Section 5.1: evaluating the RONI defense.

The paper measures the incremental impact (drop in correctly
classified ham on a 50-message validation set, averaged over five
20-message training resamples) of:

* 120 random non-attack spam messages, and
* 15 repetitions each of seven dictionary-attack variants,

and reports *complete separability*: every dictionary attack email
costs at least 6.8 ham-as-ham messages on average, every non-attack
spam at most 4.4, so a threshold between identifies 100% of attack
emails with zero false positives.

The paper does not enumerate its seven variants beyond "variants of
the dictionary attacks in Section 3.2"; ours are the three named
attacks plus truncations of the Usenet list and an informed
(empirical-distribution) attack — resolved through the shared
catalogue (:func:`repro.attacks.variants.build_attack_variants`) and
configurable here.  Because the catalogue also knows the ``focused``
variant, the same protocol doubles as the ``focused-vs-roni``
cross-product scenario.

This module holds the experiment's definition (config, result, the
picklable measurement workers); orchestration runs as the
``roni-defense`` scenario (:mod:`repro.scenarios.protocols`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.attacks.base import Attack
from repro.corpus.dataset import Dataset, LabeledMessage
from repro.corpus.vocabulary import VocabularyProfile, SMALL_PROFILE
from repro.defenses.roni import RoniConfig, RoniDefense
from repro.errors import ExperimentError
from repro.experiments.results import ExperimentRecord
from repro.rng import SeedSpawner
from repro.spambayes.options import ClassifierOptions, DEFAULT_OPTIONS
from repro.spambayes.token_table import TokenTable

__all__ = ["RoniExperimentConfig", "RoniExperimentResult", "run_roni_experiment"]

PAPER_VARIANTS = (
    "optimal",
    "usenet",
    "usenet-half",
    "usenet-quarter",
    "usenet-tenth",
    "aspell",
    "informed",
)
"""Our seven dictionary-attack variants (the paper's are unnamed)."""


@dataclass(frozen=True)
class RoniExperimentConfig:
    """Sizes and knobs for the RONI evaluation."""

    pool_size: int = 400
    spam_prevalence: float = 0.50
    roni: RoniConfig = RoniConfig()
    n_nonattack_spam: int = 120
    repetitions_per_variant: int = 15
    variants: Sequence[str] = PAPER_VARIANTS
    informed_budget: int = 1_000
    profile: VocabularyProfile = SMALL_PROFILE
    corpus_ham: int = 400
    corpus_spam: int = 400
    seed: int = 0
    options: ClassifierOptions = DEFAULT_OPTIONS
    workers: int = 1
    """Worker processes for the per-repetition fan-out (results
    identical at any value)."""

    def __post_init__(self) -> None:
        if self.n_nonattack_spam < 1:
            raise ExperimentError("need at least one non-attack spam query")
        if self.repetitions_per_variant < 1:
            raise ExperimentError("need at least one repetition per variant")

    @classmethod
    def small_scale(cls, seed: int = 0, workers: int = 1) -> "RoniExperimentConfig":
        """The standard reduced run the CLI and benchmarks share."""
        return cls(
            pool_size=400,
            n_nonattack_spam=60,
            repetitions_per_variant=6,
            corpus_ham=400,
            corpus_spam=400,
            seed=seed,
            workers=workers,
        )

    @classmethod
    def paper_scale(cls, seed: int = 0, workers: int = 1) -> "RoniExperimentConfig":
        """The paper's counts: 120 non-attack spam, 15 reps per variant."""
        return cls(
            pool_size=1_000,
            n_nonattack_spam=120,
            repetitions_per_variant=15,
            corpus_ham=1_200,
            corpus_spam=1_200,
            seed=seed,
            workers=workers,
        )


@dataclass
class RoniExperimentResult:
    """Impact distributions and detection statistics."""

    config: RoniExperimentConfig
    attack_impacts: dict[str, list[float]] = field(default_factory=dict)
    nonattack_spam_impacts: list[float] = field(default_factory=list)

    # ------------------------------------------------------------------
    # The paper's summary statistics
    # ------------------------------------------------------------------

    @property
    def min_attack_impact(self) -> float:
        """Smallest mean ham-as-ham decrease over all attack emails
        (paper: 6.8)."""
        return min(min(values) for values in self.attack_impacts.values())

    @property
    def max_nonattack_impact(self) -> float:
        """Largest mean ham-as-ham decrease over non-attack spam
        (paper: 4.4)."""
        return max(self.nonattack_spam_impacts)

    @property
    def separable(self) -> bool:
        """True when a single threshold separates attacks from spam."""
        return self.min_attack_impact > self.max_nonattack_impact

    def detection_rate(self, threshold: float) -> float:
        """Fraction of attack emails with impact >= threshold."""
        impacts = [v for values in self.attack_impacts.values() for v in values]
        return sum(1 for v in impacts if v >= threshold) / len(impacts)

    def false_positive_rate(self, threshold: float) -> float:
        """Fraction of non-attack spam with impact >= threshold."""
        return (
            sum(1 for v in self.nonattack_spam_impacts if v >= threshold)
            / len(self.nonattack_spam_impacts)
        )

    def to_record(self) -> ExperimentRecord:
        threshold = self.config.roni.ham_as_ham_threshold
        return ExperimentRecord(
            experiment="roni-defense",
            config={
                "pool_size": self.config.pool_size,
                "train_size": self.config.roni.train_size,
                "validation_size": self.config.roni.validation_size,
                "trials": self.config.roni.trials,
                "threshold": threshold,
                "seed": self.config.seed,
            },
            extras={
                "attack_impacts": self.attack_impacts,
                "nonattack_spam_impacts": self.nonattack_spam_impacts,
                "min_attack_impact": self.min_attack_impact,
                "max_nonattack_impact": self.max_nonattack_impact,
                "separable": self.separable,
                "detection_rate": self.detection_rate(threshold),
                "false_positive_rate": self.false_positive_rate(threshold),
            },
        )


@dataclass(frozen=True)
class _RoniContext:
    """Read-only worker context: the pool (pre-encoded), the attacks,
    the knobs.

    ``table`` is the pool's interning table: every defense built inside
    a worker shares it, so pool messages are encoded once per process
    no matter how many calibrations are drawn.
    """

    pool: Dataset
    table: TokenTable
    attacks: dict[str, Attack]
    config: RoniExperimentConfig
    spawner_seed: int


def _measure_attack_repetition(context: _RoniContext, rep: int) -> list[float]:
    """One calibration; one email of each variant measured against it.

    Repetitions always had their own labelled seed streams
    (``defense[rep]`` / ``attack[rep]``), so each is an independent,
    deterministic unit regardless of which process runs it.
    """
    spawner = SeedSpawner(context.spawner_seed)
    defense = RoniDefense(
        context.pool,
        spawner.rng(f"defense[{rep}]"),
        config=context.config.roni,
        options=context.config.options,
        table=context.table,
    )
    attack_rng = spawner.rng(f"attack[{rep}]")
    impacts = []
    for attack in context.attacks.values():
        batch = attack.generate(1, attack_rng)
        # ID-native: the batch's payload enters the gate as the encoded
        # array AttackBatch.encode produced — no string re-interning.
        measurement = defense.measure_batch(batch)[0]
        impacts.append(measurement.ham_as_ham_decrease)
    return impacts


def _measure_spam_batch(
    context: _RoniContext, task: tuple[int, tuple[LabeledMessage, ...]]
) -> list[float]:
    """One dedicated calibration measuring a slice of non-attack spam.

    The slice goes through :meth:`RoniDefense.measure_many`: encoded
    once, then swept trial-by-trial through the bulk scoring kernel.
    """
    rep, queries = task
    defense = RoniDefense(
        context.pool,
        SeedSpawner(context.spawner_seed).rng(f"spam-defense[{rep}]"),
        config=context.config.roni,
        options=context.config.options,
        table=context.table,
    )
    return [
        measurement.ham_as_ham_decrease
        for measurement in defense.measure_many(list(queries))
    ]


def run_roni_experiment(
    config: RoniExperimentConfig = RoniExperimentConfig(),
) -> RoniExperimentResult:
    """Run the Section 5.1 evaluation end to end — the ``roni-defense``
    scenario; bit-identical to the historical inline driver."""
    from repro.scenarios import run_scenario  # late: scenarios imports this module

    return run_scenario("roni-defense", config=config).result
