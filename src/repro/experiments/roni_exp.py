"""Section 5.1: evaluating the RONI defense.

The paper measures the incremental impact (drop in correctly
classified ham on a 50-message validation set, averaged over five
20-message training resamples) of:

* 120 random non-attack spam messages, and
* 15 repetitions each of seven dictionary-attack variants,

and reports *complete separability*: every dictionary attack email
costs at least 6.8 ham-as-ham messages on average, every non-attack
spam at most 4.4, so a threshold between identifies 100% of attack
emails with zero false positives.

The paper does not enumerate its seven variants beyond "variants of
the dictionary attacks in Section 3.2"; ours are the three named
attacks plus truncations of the Usenet list and an informed
(empirical-distribution) attack — documented in DESIGN.md §3 and
configurable here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.attacks.dictionary import (
    AspellDictionaryAttack,
    DictionaryAttack,
    OptimalDictionaryAttack,
    UsenetDictionaryAttack,
)
from repro.attacks.knowledge import EmpiricalHamDistribution, budgeted_attack
from repro.corpus.dataset import Dataset, LabeledMessage
from repro.corpus.trec import TrecStyleCorpus
from repro.corpus.vocabulary import VocabularyProfile, SMALL_PROFILE
from repro.defenses.roni import RoniConfig, RoniDefense
from repro.engine.runner import ParallelRunner
from repro.errors import ExperimentError
from repro.experiments.results import ExperimentRecord
from repro.rng import SeedSpawner
from repro.spambayes.options import ClassifierOptions, DEFAULT_OPTIONS
from repro.spambayes.token_table import TokenTable

__all__ = ["RoniExperimentConfig", "RoniExperimentResult", "run_roni_experiment"]

PAPER_VARIANTS = (
    "optimal",
    "usenet",
    "usenet-half",
    "usenet-quarter",
    "usenet-tenth",
    "aspell",
    "informed",
)
"""Our seven dictionary-attack variants (the paper's are unnamed)."""


@dataclass(frozen=True)
class RoniExperimentConfig:
    """Sizes and knobs for the RONI evaluation."""

    pool_size: int = 400
    spam_prevalence: float = 0.50
    roni: RoniConfig = RoniConfig()
    n_nonattack_spam: int = 120
    repetitions_per_variant: int = 15
    variants: Sequence[str] = PAPER_VARIANTS
    informed_budget: int = 1_000
    profile: VocabularyProfile = SMALL_PROFILE
    corpus_ham: int = 400
    corpus_spam: int = 400
    seed: int = 0
    options: ClassifierOptions = DEFAULT_OPTIONS
    workers: int = 1
    """Worker processes for the per-repetition fan-out (results
    identical at any value)."""

    def __post_init__(self) -> None:
        if self.n_nonattack_spam < 1:
            raise ExperimentError("need at least one non-attack spam query")
        if self.repetitions_per_variant < 1:
            raise ExperimentError("need at least one repetition per variant")

    @classmethod
    def small_scale(cls, seed: int = 0, workers: int = 1) -> "RoniExperimentConfig":
        """The standard reduced run the CLI and benchmarks share."""
        return cls(
            pool_size=400,
            n_nonattack_spam=60,
            repetitions_per_variant=6,
            corpus_ham=400,
            corpus_spam=400,
            seed=seed,
            workers=workers,
        )

    @classmethod
    def paper_scale(cls, seed: int = 0, workers: int = 1) -> "RoniExperimentConfig":
        """The paper's counts: 120 non-attack spam, 15 reps per variant."""
        return cls(
            pool_size=1_000,
            n_nonattack_spam=120,
            repetitions_per_variant=15,
            corpus_ham=1_200,
            corpus_spam=1_200,
            seed=seed,
            workers=workers,
        )


@dataclass
class RoniExperimentResult:
    """Impact distributions and detection statistics."""

    config: RoniExperimentConfig
    attack_impacts: dict[str, list[float]] = field(default_factory=dict)
    nonattack_spam_impacts: list[float] = field(default_factory=list)

    # ------------------------------------------------------------------
    # The paper's summary statistics
    # ------------------------------------------------------------------

    @property
    def min_attack_impact(self) -> float:
        """Smallest mean ham-as-ham decrease over all attack emails
        (paper: 6.8)."""
        return min(min(values) for values in self.attack_impacts.values())

    @property
    def max_nonattack_impact(self) -> float:
        """Largest mean ham-as-ham decrease over non-attack spam
        (paper: 4.4)."""
        return max(self.nonattack_spam_impacts)

    @property
    def separable(self) -> bool:
        """True when a single threshold separates attacks from spam."""
        return self.min_attack_impact > self.max_nonattack_impact

    def detection_rate(self, threshold: float) -> float:
        """Fraction of attack emails with impact >= threshold."""
        impacts = [v for values in self.attack_impacts.values() for v in values]
        return sum(1 for v in impacts if v >= threshold) / len(impacts)

    def false_positive_rate(self, threshold: float) -> float:
        """Fraction of non-attack spam with impact >= threshold."""
        return (
            sum(1 for v in self.nonattack_spam_impacts if v >= threshold)
            / len(self.nonattack_spam_impacts)
        )

    def to_record(self) -> ExperimentRecord:
        threshold = self.config.roni.ham_as_ham_threshold
        return ExperimentRecord(
            experiment="roni-defense",
            config={
                "pool_size": self.config.pool_size,
                "train_size": self.config.roni.train_size,
                "validation_size": self.config.roni.validation_size,
                "trials": self.config.roni.trials,
                "threshold": threshold,
                "seed": self.config.seed,
            },
            extras={
                "attack_impacts": self.attack_impacts,
                "nonattack_spam_impacts": self.nonattack_spam_impacts,
                "min_attack_impact": self.min_attack_impact,
                "max_nonattack_impact": self.max_nonattack_impact,
                "separable": self.separable,
                "detection_rate": self.detection_rate(threshold),
                "false_positive_rate": self.false_positive_rate(threshold),
            },
        )


def _build_variants(
    corpus: TrecStyleCorpus, config: RoniExperimentConfig
) -> dict[str, DictionaryAttack]:
    usenet = UsenetDictionaryAttack.from_vocabulary(corpus.vocabulary, seed=config.seed)
    full = usenet.wordlist
    attacks: dict[str, DictionaryAttack] = {}
    for variant in config.variants:
        if variant == "optimal":
            attacks[variant] = OptimalDictionaryAttack.from_vocabulary(corpus.vocabulary)
        elif variant == "usenet":
            attacks[variant] = usenet
        elif variant == "usenet-half":
            attacks[variant] = UsenetDictionaryAttack(full, top_k=len(full) // 2)
        elif variant == "usenet-quarter":
            attacks[variant] = UsenetDictionaryAttack(full, top_k=len(full) // 4)
        elif variant == "usenet-tenth":
            attacks[variant] = UsenetDictionaryAttack(full, top_k=len(full) // 10)
        elif variant == "aspell":
            attacks[variant] = AspellDictionaryAttack.from_vocabulary(corpus.vocabulary)
        elif variant == "informed":
            distribution = EmpiricalHamDistribution(
                (message.email for message in corpus.dataset.ham[:200])
            )
            attacks[variant] = budgeted_attack(distribution, budget=config.informed_budget)
        else:
            raise ExperimentError(f"unknown RONI attack variant {variant!r}")
    return attacks


@dataclass(frozen=True)
class _RoniContext:
    """Read-only worker context: the pool (pre-encoded), the attacks,
    the knobs.

    ``table`` is the pool's interning table: every defense built inside
    a worker shares it, so pool messages are encoded once per process
    no matter how many calibrations are drawn.
    """

    pool: Dataset
    table: TokenTable
    attacks: dict[str, DictionaryAttack]
    config: RoniExperimentConfig
    spawner_seed: int


def _measure_attack_repetition(context: _RoniContext, rep: int) -> list[float]:
    """One calibration; one email of each variant measured against it.

    Repetitions always had their own labelled seed streams
    (``defense[rep]`` / ``attack[rep]``), so each is an independent,
    deterministic unit regardless of which process runs it.
    """
    spawner = SeedSpawner(context.spawner_seed)
    defense = RoniDefense(
        context.pool,
        spawner.rng(f"defense[{rep}]"),
        config=context.config.roni,
        options=context.config.options,
        table=context.table,
    )
    attack_rng = spawner.rng(f"attack[{rep}]")
    impacts = []
    for attack in context.attacks.values():
        batch = attack.generate(1, attack_rng)
        tokens = batch.groups[0].training_tokens
        measurement = defense.measure_tokens(tokens, is_spam=True)
        impacts.append(measurement.ham_as_ham_decrease)
    return impacts


def _measure_spam_batch(
    context: _RoniContext, task: tuple[int, tuple[LabeledMessage, ...]]
) -> list[float]:
    """One dedicated calibration measuring a slice of non-attack spam.

    The slice goes through :meth:`RoniDefense.measure_many`: encoded
    once, then swept trial-by-trial through the bulk scoring kernel.
    """
    rep, queries = task
    defense = RoniDefense(
        context.pool,
        SeedSpawner(context.spawner_seed).rng(f"spam-defense[{rep}]"),
        config=context.config.roni,
        options=context.config.options,
        table=context.table,
    )
    return [
        measurement.ham_as_ham_decrease
        for measurement in defense.measure_many(list(queries))
    ]


def run_roni_experiment(
    config: RoniExperimentConfig = RoniExperimentConfig(),
) -> RoniExperimentResult:
    """Run the Section 5.1 evaluation end to end."""
    spawner = SeedSpawner(config.seed).spawn("roni-experiment")
    corpus = TrecStyleCorpus.generate(
        n_ham=config.corpus_ham,
        n_spam=config.corpus_spam,
        profile=config.profile,
        seed=spawner.child_seed("corpus"),
    )
    pool = corpus.dataset.sample_inbox(
        config.pool_size, config.spam_prevalence, spawner.rng("pool")
    )
    pool.tokenize_all()
    table = pool.encode()
    pool_ids = {message.msgid for message in pool}
    spam_outside = [m for m in corpus.dataset.spam if m.msgid not in pool_ids]
    if len(spam_outside) < config.n_nonattack_spam:
        raise ExperimentError(
            f"need {config.n_nonattack_spam} non-attack spam outside the pool, "
            f"only {len(spam_outside)} available"
        )
    attacks = _build_variants(corpus, config)
    result = RoniExperimentResult(config=config)
    result.attack_impacts = {variant: [] for variant in attacks}
    context = _RoniContext(pool, table, attacks, config, spawner.seed)
    runner = ParallelRunner(config.workers)

    # Attack emails: a fresh RONI calibration per repetition, one email
    # of each variant measured against it.
    per_rep = runner.map(
        _measure_attack_repetition, context, list(range(config.repetitions_per_variant))
    )
    for impacts in per_rep:
        for variant, impact in zip(attacks, impacts):
            result.attack_impacts[variant].append(impact)

    # Non-attack spam: measured against a dedicated calibration, in
    # round-robin batches so no single resample biases the distribution.
    queries = spawner.rng("query-choice").sample(spam_outside, config.n_nonattack_spam)
    per_defense = max(1, config.n_nonattack_spam // config.repetitions_per_variant)
    batches = [
        (rep, tuple(queries[start : start + per_defense]))
        for rep, start in enumerate(range(0, len(queries), per_defense))
    ]
    for impacts in runner.map(_measure_spam_batch, context, batches):
        result.nonattack_spam_impacts.extend(impacts)
    return result
