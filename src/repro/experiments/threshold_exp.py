"""Figure 5: the dynamic threshold defense under dictionary attack.

For each contamination level the experiment compares three filters
that share *exactly the same trained state* (the poisoned token
counts) and differ only in thresholds:

* *no-defense* — the static θ0 = 0.15, θ1 = 0.9;
* *threshold-.05* — θ fitted with the g-quantile 0.05 (wide unsure);
* *threshold-.10* — θ fitted with the g-quantile 0.10 (narrower).

Reported per level: ham-as-spam and ham-as-(spam-or-unsure) on held-out
test folds (the figure's dashed/solid lines), plus spam-as-unsure —
the defense's cost, which the paper calls out in its closing paragraph
(nearly all spam lands in unsure even at 1% contamination).

The threshold fit sees what a deployed defense would see: the poisoned
training set, attack messages included and labeled spam.

Folds run through :class:`repro.engine.runner.ParallelRunner`: each
fold is one task carrying its index lists plus a pre-drawn block of
seeds (one for the attack batch, one per fraction × quantile for the
threshold fits) replaying the sequential rng draw order, so
``workers=N`` reproduces ``workers=1`` bit for bit.  Fold classifiers
are derived from a shared full-inbox model by snapshot/unlearn/restore
rather than retrained.

This module holds the experiment's definition (config, result, the
picklable fold worker); orchestration runs as the
``figure5-threshold`` scenario — and, with a one-line attack-variant
override, as cross-products like ``aspell-vs-threshold``
(:mod:`repro.scenarios.protocols`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.attacks.base import Attack
from repro.corpus.dataset import Dataset
from repro.corpus.vocabulary import VocabularyProfile, SMALL_PROFILE
from repro.defenses.threshold import DynamicThresholdConfig, DynamicThresholdDefense
from repro.engine.sweep import (
    IncrementalAttackTrainer,
    evaluate_dataset,
    unlearn_grouped,
)
from repro.experiments.attack_data import attack_messages_as_dataset
from repro.experiments.metrics import ConfusionCounts
from repro.experiments.results import CurvePoint, ExperimentRecord, Series
from repro.spambayes.classifier import Classifier
from repro.spambayes.options import ClassifierOptions, DEFAULT_OPTIONS
from repro.spambayes.tokenizer import Tokenizer

__all__ = [
    "ThresholdExperimentConfig",
    "ThresholdExperimentResult",
    "run_threshold_experiment",
    "attack_messages_as_dataset",
]

PAPER_FRACTIONS = (0.0, 0.001, 0.01, 0.05, 0.10)


@dataclass(frozen=True)
class ThresholdExperimentConfig:
    """Sizes and knobs for a Figure 5 run (defaults are 1/10 scale)."""

    inbox_size: int = 1_000
    spam_prevalence: float = 0.50
    folds: int = 3
    attack_fractions: Sequence[float] = PAPER_FRACTIONS
    attack_variant: str = "usenet"
    quantiles: Sequence[float] = (0.05, 0.10)
    profile: VocabularyProfile = SMALL_PROFILE
    corpus_ham: int = 700
    corpus_spam: int = 700
    seed: int = 0
    options: ClassifierOptions = DEFAULT_OPTIONS
    workers: int = 1
    """Worker processes for the fold fan-out (results identical at any
    value)."""

    @classmethod
    def small_scale(cls, seed: int = 0, workers: int = 1) -> "ThresholdExperimentConfig":
        """The standard 1/10-scale run the CLI and benchmarks share."""
        return cls(
            inbox_size=1_000,
            folds=3,
            corpus_ham=700,
            corpus_spam=700,
            seed=seed,
            workers=workers,
        )

    @classmethod
    def paper_scale(cls, seed: int = 0, workers: int = 1) -> "ThresholdExperimentConfig":
        """Table 1: 10,000-message inbox, 5 folds."""
        from repro.corpus.vocabulary import PAPER_PROFILE

        return cls(
            inbox_size=10_000,
            folds=5,
            profile=PAPER_PROFILE,
            corpus_ham=6_000,
            corpus_spam=6_000,
            seed=seed,
            workers=workers,
        )


@dataclass
class ThresholdExperimentResult:
    """One series per defense arm ("no-defense", "threshold-0.05", ...)."""

    config: ThresholdExperimentConfig
    series: dict[str, list[CurvePoint]] = field(default_factory=dict)
    fitted_thresholds: dict[str, list[tuple[float, float, float]]] = field(default_factory=dict)
    """Per arm: (fraction, θ0, θ1) fits averaged over folds."""

    def to_record(self) -> ExperimentRecord:
        return ExperimentRecord(
            experiment="figure5-threshold-defense",
            config={
                "inbox_size": self.config.inbox_size,
                "folds": self.config.folds,
                "attack_variant": self.config.attack_variant,
                "quantiles": list(self.config.quantiles),
                "seed": self.config.seed,
            },
            series=[Series(name=name, points=points) for name, points in self.series.items()],
            extras={"fitted_thresholds": self.fitted_thresholds},
        )


# ``attack_messages_as_dataset`` moved to
# :mod:`repro.experiments.attack_data` (shared plumbing — retraining
# and the streaming engine use it too).  The re-export above keeps the
# historical ``threshold_exp`` import path working; new code should
# import from ``repro.experiments.attack_data``.


@dataclass(frozen=True)
class _FoldTask:
    """One fold's work: index lists plus the pre-drawn seed block.

    ``seeds[0]`` feeds the attack batch; the rest feed the threshold
    fits in (fraction-major, quantile-minor) order — exactly the draw
    order of the sequential loop.
    """

    train_indices: tuple[int, ...]
    test_indices: tuple[int, ...]
    seeds: tuple[int, ...]


@dataclass(frozen=True)
class _FoldContext:
    """Read-only worker context for the threshold fold tasks."""

    inbox: Dataset
    attack: Attack
    counts: tuple[int, ...]
    quantiles: tuple[float, ...]
    options: ClassifierOptions
    tokenizer: Tokenizer
    full_model: Classifier


def _run_threshold_fold(
    context: _FoldContext, task: _FoldTask
) -> tuple[list[ConfusionCounts], list[list[tuple[float, float, ConfusionCounts]]]]:
    """One fold: static-threshold confusions per fraction, plus per
    fraction × quantile the fitted (θ0, θ1) and its confusion."""
    inbox = context.inbox
    test_set = [inbox[i] for i in task.test_indices]
    train_messages = [inbox[i] for i in task.train_indices]
    classifier = context.full_model
    snap = classifier.snapshot()
    try:
        unlearn_grouped(classifier, test_set, context.tokenizer)
        seeds = iter(task.seeds)
        batch = context.attack.generate(context.counts[-1], random.Random(next(seeds)))
        trainer = IncrementalAttackTrainer(classifier, batch)
        attack_messages = attack_messages_as_dataset(batch)
        static_arm: list[ConfusionCounts] = []
        fitted_arms: list[list[tuple[float, float, ConfusionCounts]]] = []
        for count in context.counts:
            trainer.advance_to(count)
            static_arm.append(evaluate_dataset(classifier, test_set, context.tokenizer))
            poisoned = Dataset(
                train_messages + attack_messages[:count],
                name="poisoned-training",
            )
            per_quantile: list[tuple[float, float, ConfusionCounts]] = []
            for quantile in context.quantiles:
                defense = DynamicThresholdDefense(
                    config=DynamicThresholdConfig(quantile=quantile),
                    options=context.options,
                )
                fit = defense.fit(poisoned, random.Random(next(seeds)))
                confusion = evaluate_dataset(
                    classifier,
                    test_set,
                    context.tokenizer,
                    cutoffs=(fit.ham_cutoff, fit.spam_cutoff),
                )
                per_quantile.append((fit.ham_cutoff, fit.spam_cutoff, confusion))
            fitted_arms.append(per_quantile)
        return static_arm, fitted_arms
    finally:
        classifier.restore(snap)


def run_threshold_experiment(
    config: ThresholdExperimentConfig = ThresholdExperimentConfig(),
) -> ThresholdExperimentResult:
    """Run the Figure 5 experiment end to end — the
    ``figure5-threshold`` scenario; bit-identical to the historical
    inline driver."""
    from repro.scenarios import run_scenario  # late: scenarios imports this module

    return run_scenario("figure5-threshold", config=config).result
