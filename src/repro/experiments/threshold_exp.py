"""Figure 5: the dynamic threshold defense under dictionary attack.

For each contamination level the experiment compares three filters
that share *exactly the same trained state* (the poisoned token
counts) and differ only in thresholds:

* *no-defense* — the static θ0 = 0.15, θ1 = 0.9;
* *threshold-.05* — θ fitted with the g-quantile 0.05 (wide unsure);
* *threshold-.10* — θ fitted with the g-quantile 0.10 (narrower).

Reported per level: ham-as-spam and ham-as-(spam-or-unsure) on held-out
test folds (the figure's dashed/solid lines), plus spam-as-unsure —
the defense's cost, which the paper calls out in its closing paragraph
(nearly all spam lands in unsure even at 1% contamination).

The threshold fit sees what a deployed defense would see: the poisoned
training set, attack messages included and labeled spam.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.attacks.base import AttackBatch
from repro.corpus.dataset import Dataset, LabeledMessage
from repro.corpus.trec import TrecStyleCorpus
from repro.corpus.vocabulary import VocabularyProfile, SMALL_PROFILE
from repro.defenses.threshold import DynamicThresholdConfig, DynamicThresholdDefense
from repro.errors import ExperimentError
from repro.experiments.crossval import (
    _IncrementalAttackTrainer,
    attack_message_count,
    evaluate_dataset,
    train_grouped,
)
from repro.experiments.dictionary_exp import build_attack_variants
from repro.experiments.results import CurvePoint, ExperimentRecord, Series
from repro.rng import SeedSpawner
from repro.spambayes.classifier import Classifier
from repro.spambayes.message import Email
from repro.spambayes.options import ClassifierOptions, DEFAULT_OPTIONS

__all__ = [
    "ThresholdExperimentConfig",
    "ThresholdExperimentResult",
    "run_threshold_experiment",
    "attack_messages_as_dataset",
]

PAPER_FRACTIONS = (0.0, 0.001, 0.01, 0.05, 0.10)


@dataclass(frozen=True)
class ThresholdExperimentConfig:
    """Sizes and knobs for a Figure 5 run (defaults are 1/10 scale)."""

    inbox_size: int = 1_000
    spam_prevalence: float = 0.50
    folds: int = 3
    attack_fractions: Sequence[float] = PAPER_FRACTIONS
    attack_variant: str = "usenet"
    quantiles: Sequence[float] = (0.05, 0.10)
    profile: VocabularyProfile = SMALL_PROFILE
    corpus_ham: int = 700
    corpus_spam: int = 700
    seed: int = 0
    options: ClassifierOptions = DEFAULT_OPTIONS

    @classmethod
    def paper_scale(cls, seed: int = 0) -> "ThresholdExperimentConfig":
        """Table 1: 10,000-message inbox, 5 folds."""
        from repro.corpus.vocabulary import PAPER_PROFILE

        return cls(
            inbox_size=10_000,
            folds=5,
            profile=PAPER_PROFILE,
            corpus_ham=6_000,
            corpus_spam=6_000,
            seed=seed,
        )


@dataclass
class ThresholdExperimentResult:
    """One series per defense arm ("no-defense", "threshold-0.05", ...)."""

    config: ThresholdExperimentConfig
    series: dict[str, list[CurvePoint]] = field(default_factory=dict)
    fitted_thresholds: dict[str, list[tuple[float, float, float]]] = field(default_factory=dict)
    """Per arm: (fraction, θ0, θ1) fits averaged over folds."""

    def to_record(self) -> ExperimentRecord:
        return ExperimentRecord(
            experiment="figure5-threshold-defense",
            config={
                "inbox_size": self.config.inbox_size,
                "folds": self.config.folds,
                "attack_variant": self.config.attack_variant,
                "quantiles": list(self.config.quantiles),
                "seed": self.config.seed,
            },
            series=[Series(name=name, points=points) for name, points in self.series.items()],
            extras={"fitted_thresholds": self.fitted_thresholds},
        )


def attack_messages_as_dataset(batch: AttackBatch, start: int = 0) -> list[LabeledMessage]:
    """Materialize a batch as spam-labeled dataset members.

    Bodies stay empty — token caches are pre-seeded with the payload,
    which is all downstream training ever reads — so a thousand
    90k-token attack messages cost one shared frozenset, not gigabytes
    of rendered text.
    """
    messages: list[LabeledMessage] = []
    index = start
    for group in batch.groups:
        for _ in range(group.count):
            message = LabeledMessage(
                Email(body="", msgid=f"attack-{batch.attack_name}-{index:06d}"),
                is_spam=True,
            )
            message._tokens = group.training_tokens
            messages.append(message)
            index += 1
    return messages


def run_threshold_experiment(
    config: ThresholdExperimentConfig = ThresholdExperimentConfig(),
) -> ThresholdExperimentResult:
    """Run the Figure 5 experiment end to end."""
    fractions = list(config.attack_fractions)
    if fractions != sorted(fractions):
        raise ExperimentError("attack_fractions must be ascending")
    spawner = SeedSpawner(config.seed).spawn("threshold-experiment")
    corpus = TrecStyleCorpus.generate(
        n_ham=config.corpus_ham,
        n_spam=config.corpus_spam,
        profile=config.profile,
        seed=spawner.child_seed("corpus"),
    )
    inbox = corpus.dataset.sample_inbox(
        config.inbox_size, config.spam_prevalence, spawner.rng("inbox")
    )
    inbox.tokenize_all()
    attack = build_attack_variants(corpus, (config.attack_variant,), seed=config.seed)[
        config.attack_variant
    ]
    counts = [attack_message_count(config.inbox_size, f) for f in fractions]
    arms = ["no-defense"] + [f"threshold-{q:.2f}" for q in config.quantiles]
    result = ThresholdExperimentResult(config=config)
    accumulators: dict[str, list] = {arm: [None] * len(fractions) for arm in arms}
    threshold_fits: dict[str, list[list[tuple[float, float]]]] = {
        arm: [[] for _ in fractions] for arm in arms[1:]
    }
    fold_rng = spawner.rng("folds")
    for train_set, test_set in inbox.k_folds(config.folds, fold_rng):
        classifier = Classifier(config.options)
        train_grouped(classifier, train_set)
        batch = attack.generate(counts[-1], random.Random(fold_rng.getrandbits(64)))
        trainer = _IncrementalAttackTrainer(classifier, batch)
        attack_messages = attack_messages_as_dataset(batch)
        for index, count in enumerate(counts):
            trainer.advance_to(count)
            # Arm 1: static thresholds.
            confusion = evaluate_dataset(classifier, test_set)
            if accumulators["no-defense"][index] is None:
                accumulators["no-defense"][index] = confusion
            else:
                accumulators["no-defense"][index].merge(confusion)
            # Defended arms: fit thresholds on the poisoned training set.
            poisoned = Dataset(
                train_set.messages + attack_messages[:count],
                name="poisoned-training",
            )
            for quantile in config.quantiles:
                arm = f"threshold-{quantile:.2f}"
                defense = DynamicThresholdDefense(
                    config=DynamicThresholdConfig(quantile=quantile),
                    options=config.options,
                )
                fit = defense.fit(poisoned, random.Random(fold_rng.getrandbits(64)))
                threshold_fits[arm][index].append((fit.ham_cutoff, fit.spam_cutoff))
                confusion = evaluate_dataset(
                    classifier, test_set, cutoffs=(fit.ham_cutoff, fit.spam_cutoff)
                )
                if accumulators[arm][index] is None:
                    accumulators[arm][index] = confusion
                else:
                    accumulators[arm][index].merge(confusion)
    for arm in arms:
        result.series[arm] = [
            CurvePoint.from_confusion(fraction, confusion)
            for fraction, confusion in zip(fractions, accumulators[arm])
        ]
    for arm, fits_per_fraction in threshold_fits.items():
        result.fitted_thresholds[arm] = [
            (
                fraction,
                sum(theta0 for theta0, _ in fits) / len(fits),
                sum(theta1 for _, theta1 in fits) / len(fits),
            )
            for fraction, fits in zip(fractions, fits_per_fraction)
        ]
    return result
