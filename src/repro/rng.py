"""Deterministic randomness plumbing.

Every stochastic component in this library draws from a
:class:`random.Random` instance that was *spawned* from a named root
seed. Spawning hashes the parent seed together with a string label, so:

* two runs with the same root seed are bit-identical,
* sibling components (e.g. "ham generator" vs "spam generator") get
  decorrelated streams even though they share a root, and
* adding a new consumer never perturbs the streams of existing ones
  (unlike sharing a single ``Random`` and interleaving draws).

The scheme is intentionally simple — SHA-256 of ``parent_seed || label``
— rather than numpy's ``SeedSequence``, because the hot paths use the
stdlib ``random`` module (generating token sets, shuffling folds) and we
want zero numpy dependency in the core engine.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator

__all__ = ["spawn_seed", "spawn_rng", "SeedSpawner", "DEFAULT_SEED"]

DEFAULT_SEED = 20080415
"""Default root seed (the LEET'08 workshop date) used across examples."""


def spawn_seed(parent_seed: int, label: str) -> int:
    """Derive a child seed from ``parent_seed`` and a string ``label``.

    The derivation is a SHA-256 hash truncated to 64 bits, which is
    stable across Python versions and platforms (``hash()`` is not,
    because of string-hash randomization).
    """
    digest = hashlib.sha256(f"{parent_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def spawn_rng(parent_seed: int, label: str) -> random.Random:
    """Return a fresh ``random.Random`` seeded from ``(parent_seed, label)``."""
    return random.Random(spawn_seed(parent_seed, label))


class SeedSpawner:
    """A root seed that hands out named, decorrelated child streams.

    >>> spawner = SeedSpawner(1234)
    >>> ham_rng = spawner.rng("ham")
    >>> spam_rng = spawner.rng("spam")
    >>> spawner.rng("ham").random() == ham_rng.random()  # same stream
    False

    Repeated requests for the same label return *new* generator objects
    positioned at the start of the same stream, so a component can be
    re-created mid-experiment and replay its own randomness.
    """

    def __init__(self, seed: int = DEFAULT_SEED) -> None:
        self.seed = int(seed)

    def child_seed(self, label: str) -> int:
        """Derive the child seed for ``label`` without building an RNG."""
        return spawn_seed(self.seed, label)

    def rng(self, label: str) -> random.Random:
        """Return a ``random.Random`` for ``label``, always at stream start."""
        return random.Random(self.child_seed(label))

    def spawn(self, label: str) -> "SeedSpawner":
        """Return a sub-spawner rooted at the child seed for ``label``."""
        return SeedSpawner(self.child_seed(label))

    def indexed(self, label: str, count: int) -> Iterator[random.Random]:
        """Yield ``count`` decorrelated RNGs labelled ``label[0..count)``.

        Useful for per-fold or per-repetition streams where each index
        must be independent of how many siblings exist.
        """
        for index in range(count):
            yield self.rng(f"{label}[{index}]")

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SeedSpawner(seed={self.seed})"
