"""Declarative experiment scenarios: spec → registry → executor.

The paper's experiments — and every composed attack × defense study
since — are *scenarios*: a frozen :class:`ScenarioSpec` (protocol,
config dataclass, default overrides, attack/defense coordinates) in a
process-safe registry, executed by one generic :func:`run_scenario`.

    from repro.scenarios import run_scenario, list_scenarios

    for spec in list_scenarios():
        print(spec.name, "-", spec.title)
    outcome = run_scenario("figure1-dictionary", overrides={"folds": 2})
    print(outcome.record_dict())

The historical ``run_*_experiment`` entry points delegate here, and
``python -m repro run-scenario <name> [--set key=value ...]`` exposes
the same path from a shell.  Adding a new composition is a ~20-line
:func:`register_scenario` call — see
:mod:`repro.scenarios.builtin` for the catalogue and
``docs/experiments.md`` for a how-to.

Any registered scenario also replicates over seeds with zero
per-scenario code: :func:`replicate_scenario` (the
:mod:`repro.engine.replicate` layer, re-exported here; CLI
``python -m repro replicate <name> --seeds N``) runs it at N derived
root seeds — flattened into one shared worker pool — and pools the
records into a :class:`~repro.experiments.results.ReplicatedRecord`
with per-point mean/std/95%-CI error bars.
"""

from repro.engine.replicate import replica_seeds, replicate_scenario
from repro.scenarios.builtin import BUILTIN_SCENARIOS, register_builtin_scenarios
from repro.scenarios.executor import ScenarioOutcome, run_scenario
from repro.scenarios.protocols import PROTOCOLS, PreparedInbox, prepare_inbox
from repro.scenarios.registry import (
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_names,
)
from repro.scenarios.spec import ScenarioSpec

register_builtin_scenarios()

__all__ = [
    "BUILTIN_SCENARIOS",
    "PROTOCOLS",
    "PreparedInbox",
    "ScenarioOutcome",
    "ScenarioSpec",
    "get_scenario",
    "list_scenarios",
    "prepare_inbox",
    "register_builtin_scenarios",
    "register_scenario",
    "replica_seeds",
    "replicate_scenario",
    "run_scenario",
    "scenario_names",
]
