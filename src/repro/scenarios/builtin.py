"""The built-in scenario catalogue.

Five paper artifacts, one beyond-the-paper evasion study, the
time-ordered ``stream-*`` family (:mod:`repro.stream`), and the
cross-product scenarios the declarative registry makes cheap: each
registration is a :class:`~repro.scenarios.spec.ScenarioSpec` naming a
protocol, a config dataclass and a handful of default overrides —
~20 lines buys a new attack × defense combination that previously
required a bespoke driver.

Registration happens when :mod:`repro.scenarios` is imported, so every
process — parent, engine worker, CLI, CI — sees the identical
catalogue.
"""

from __future__ import annotations

from repro.experiments.dictionary_exp import DictionaryExperimentConfig
from repro.experiments.focused_exp import FocusedExperimentConfig
from repro.experiments.goodword_exp import GoodWordExperimentConfig
from repro.experiments.roni_exp import PAPER_VARIANTS, RoniExperimentConfig
from repro.experiments.threshold_exp import ThresholdExperimentConfig
from repro.scenarios.registry import register_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.stream.spec import StreamSpec

__all__ = ["BUILTIN_SCENARIOS", "register_builtin_scenarios"]

BUILTIN_SCENARIOS: tuple[ScenarioSpec, ...] = (
    # ------------------------------------------------------------------
    # The paper's artifacts
    # ------------------------------------------------------------------
    ScenarioSpec(
        name="figure1-dictionary",
        title="Dictionary attacks vs percent control of the training set",
        protocol="dictionary-sweep",
        config_type=DictionaryExperimentConfig,
        attack_grid=("optimal", "usenet", "aspell"),
        metrics=("ham_as_spam_rate", "ham_misclassified_rate"),
        paper_artifact="Figure 1",
        description="K-fold contamination sweep per dictionary variant, "
        "ham misclassification pooled over folds (Section 4.2).",
    ),
    ScenarioSpec(
        name="figure2-focused-knowledge",
        title="Focused attack vs attacker knowledge (guess probability)",
        protocol="focused-knowledge",
        config_type=FocusedExperimentConfig,
        attack_grid=("focused",),
        metrics=("target_label_mix", "attack_success_rate"),
        paper_artifact="Figure 2",
        description="Per-target attacks at p in {0.1, 0.3, 0.5, 0.9}; "
        "fraction of targets landing ham/unsure/spam (Section 4.3).",
    ),
    ScenarioSpec(
        name="figure3-focused-size",
        title="Focused attack vs number of attack emails",
        protocol="focused-size",
        config_type=FocusedExperimentConfig,
        attack_grid=("focused",),
        metrics=("ham_as_spam_rate", "ham_misclassified_rate"),
        paper_artifact="Figure 3",
        description="p fixed at 0.5, attack size swept as a fraction of "
        "the training set (Section 4.3).",
    ),
    ScenarioSpec(
        name="roni-defense",
        title="RONI incremental-impact separation of dictionary attacks",
        protocol="roni-gate",
        config_type=RoniExperimentConfig,
        attack_grid=PAPER_VARIANTS,
        defense_stack=("roni",),
        metrics=("min_attack_impact", "max_nonattack_impact", "detection_rate"),
        paper_artifact="Section 5.1",
        description="Ham-as-ham impact distributions of seven dictionary "
        "variants vs non-attack spam under the RONI gate.",
    ),
    ScenarioSpec(
        name="figure5-threshold",
        title="Dynamic threshold defense under the usenet dictionary attack",
        protocol="threshold-arms",
        config_type=ThresholdExperimentConfig,
        attack_grid=("usenet",),
        defense_stack=("dynamic-threshold",),
        metrics=("ham_as_spam_rate", "ham_misclassified_rate", "spam_as_unsure_rate"),
        paper_artifact="Figure 5",
        description="Static vs g-quantile-fitted thresholds over the same "
        "poisoned models (Section 5.2).",
    ),
    # ------------------------------------------------------------------
    # Beyond the paper
    # ------------------------------------------------------------------
    ScenarioSpec(
        name="goodword-evasion",
        title="Good-word evasion cost (Lowd & Meek)",
        protocol="goodword-evasion",
        config_type=GoodWordExperimentConfig,
        attack_grid=("goodword-common", "goodword-oracle"),
        metrics=("evasion_rate", "median_words_to_evade"),
        description="Words-to-evade distribution for blind common-word vs "
        "score-oracle padding (Exploratory/Integrity quadrant).",
    ),
    # ------------------------------------------------------------------
    # Cross-product scenarios: new attack × defense compositions that
    # are registrations, not drivers.
    # ------------------------------------------------------------------
    ScenarioSpec(
        name="aspell-vs-threshold",
        title="Dynamic threshold defense under the aspell dictionary attack",
        protocol="threshold-arms",
        config_type=ThresholdExperimentConfig,
        defaults={"attack_variant": "aspell"},
        attack_grid=("aspell",),
        defense_stack=("dynamic-threshold",),
        metrics=("ham_as_spam_rate", "ham_misclassified_rate", "spam_as_unsure_rate"),
        description="Figure 5's protocol crossed with the weaker aspell "
        "dictionary: does the defense's margin grow when the attack "
        "misses colloquial ham vocabulary?",
    ),
    ScenarioSpec(
        name="dictionary-vs-none",
        title="Undefended baseline: the usenet dictionary attack, no defense",
        protocol="dictionary-sweep",
        config_type=DictionaryExperimentConfig,
        defaults={"variants": ("usenet",)},
        attack_grid=("usenet",),
        metrics=("ham_as_spam_rate", "ham_misclassified_rate"),
        description="The single-variant undefended contamination sweep — "
        "the control arm every defense scenario is compared against, and "
        "the standard subject of multi-seed replications "
        "(repro replicate dictionary-vs-none --seeds 8).",
    ),
    ScenarioSpec(
        name="focused-vs-roni",
        title="RONI gate vs the targeted focused attack",
        protocol="roni-gate",
        config_type=RoniExperimentConfig,
        defaults={"variants": ("focused", "usenet")},
        attack_grid=("focused", "usenet"),
        defense_stack=("roni",),
        metrics=("min_attack_impact", "max_nonattack_impact", "separable"),
        description="The paper's Section 5.1 caveat made runnable: focused "
        "attack email damages one future message, not the broad validation "
        "ham RONI watches — so the gate that separates dictionary attacks "
        "perfectly should fail to flag it.",
    ),
    # ------------------------------------------------------------------
    # The streaming family: time-ordered Section 2.1 deployments
    # (repro.stream).  x is the tick (week) number, so `repro
    # replicate stream-*` pools per-tick error bars over seeds.
    # ------------------------------------------------------------------
    ScenarioSpec(
        name="stream-dictionary-ramp",
        title="Linearly ramping usenet dictionary attack, undefended",
        protocol="stream",
        config_type=StreamSpec,
        defaults={
            "ramp": "linear",
            "ramp_ticks": 4,
            "attack_per_tick": 24,
            "measure_clean": True,
        },
        attack_grid=("usenet",),
        metrics=("ham_as_spam_rate", "ham_misclassified_rate", "clean_delta"),
        description="A cautious attacker ramps 6 -> 24 messages/tick over "
        "four retrains; the stream-clean counterfactual series (the clean "
        "twin trained only on accepted non-attack mail) isolates the damage.",
    ),
    ScenarioSpec(
        name="stream-dictionary-vs-roni",
        title="Constant usenet dictionary stream vs the RONI gate",
        protocol="stream",
        config_type=StreamSpec,
        defaults={
            "ticks": 6,
            "ham_per_tick": 40,
            "spam_per_tick": 40,
            "attack_start_tick": 3,
            "attack_per_tick": 10,
            "defense": "roni",
            "roni_calibration_size": 100,
            "test_size": 120,
        },
        attack_grid=("usenet",),
        defense_stack=("roni",),
        metrics=("ham_misclassified_rate", "attack_rejected", "legitimate_rejected"),
        description="The Section 2.1 deployment defended: the gate "
        "recalibrates each tick on accepted mail and should reject the "
        "dictionary stream wholesale once warmed up.",
    ),
    ScenarioSpec(
        name="stream-focused-vs-roni",
        title="Focused attack stream vs the RONI gate",
        protocol="stream",
        config_type=StreamSpec,
        defaults={
            "ticks": 6,
            "ham_per_tick": 40,
            "spam_per_tick": 40,
            "attack_start_tick": 3,
            "attack_per_tick": 10,
            "attack_variant": "focused",
            "defense": "roni",
            "roni_calibration_size": 100,
            "test_size": 120,
        },
        attack_grid=("focused",),
        defense_stack=("roni",),
        metrics=("ham_misclassified_rate", "attack_rejected"),
        description="The Section 5.1 caveat over time: focused attack "
        "email targets one future message, so the broad-validation gate "
        "that stops dictionary streams should keep letting it through.",
    ),
    ScenarioSpec(
        name="stream-usenet-burst",
        title="One-tick usenet dictionary burst, undefended",
        protocol="stream",
        config_type=StreamSpec,
        defaults={"ramp": "burst", "ramp_ticks": 4, "attack_per_tick": 12},
        attack_grid=("usenet",),
        metrics=("ham_as_spam_rate", "ham_misclassified_rate"),
        description="The constant campaign's whole budget (4 ticks x 12 "
        "messages) lands in a single retraining period — how fast does "
        "the filter fall, and does it recover as clean mail keeps "
        "arriving?",
    ),
    ScenarioSpec(
        name="stream-threshold-over-time",
        title="Per-tick refitted thresholds under a constant dictionary stream",
        protocol="stream",
        config_type=StreamSpec,
        defaults={"defense": "threshold", "threshold_quantile": 0.10},
        attack_grid=("usenet",),
        defense_stack=("dynamic-threshold",),
        metrics=("ham_misclassified_rate", "spam_as_unsure_rate"),
        description="Figure 5's defense deployed the way Section 2.1 "
        "implies: (θ0, θ1) refitted after every retrain on the poisoned "
        "history, the held-out evaluation run under the fitted cutoffs.",
    ),
    ScenarioSpec(
        name="stream-clean-control",
        title="Attack-free control stream",
        protocol="stream",
        config_type=StreamSpec,
        defaults={"attack_per_tick": 0},
        metrics=("ham_as_spam_rate", "ham_misclassified_rate"),
        description="The undefended stream with no attacker: the "
        "per-tick baseline every stream-* scenario's curves are read "
        "against (and the natural subject of replicate error bars).",
    ),
)


def register_builtin_scenarios() -> None:
    """Register the catalogue (idempotent — safe on re-import)."""
    for spec in BUILTIN_SCENARIOS:
        register_scenario(spec)
