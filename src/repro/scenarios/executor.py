"""The generic scenario executor.

``run_scenario`` is the one entry point every experiment now runs
through: resolve the scenario (by name or spec), materialize its
config (defaults → overrides → seed/workers), dispatch to the
registered protocol, and wrap the outcome with its serializable
record.  The historical ``run_*_experiment`` functions are thin
delegations into this path, so "the Figure 1 driver" and
``repro run-scenario figure1-dictionary`` are the same code executing
the same seed streams — bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ScenarioError
from repro.scenarios.protocols import PROTOCOLS
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ScenarioSpec

__all__ = ["ScenarioOutcome", "run_scenario"]


@dataclass
class ScenarioOutcome:
    """What one scenario run produced.

    ``result`` is the protocol's native result object (e.g.
    :class:`~repro.experiments.dictionary_exp.DictionaryExperimentResult`);
    ``record`` is its serializable
    :class:`~repro.experiments.results.ExperimentRecord`, when the
    result type provides one.
    """

    spec: ScenarioSpec
    config: Any
    result: Any
    record: Any | None

    def record_dict(self) -> dict | None:
        """The record as a plain dict (JSON-ready), if available."""
        return None if self.record is None else self.record.as_dict()


def run_scenario(
    scenario: str | ScenarioSpec,
    *,
    config: Any | None = None,
    overrides: Mapping[str, Any] | None = None,
    seed: int | None = None,
    workers: int | None = None,
) -> ScenarioOutcome:
    """Execute a registered scenario and return its outcome.

    ``scenario`` is a registry name or a :class:`ScenarioSpec`.  Either
    pass a ready-made ``config`` (it must be an instance of the spec's
    ``config_type``; this is the path the ``run_*_experiment``
    compatibility wrappers use), or let the executor build one from the
    spec's defaults plus ``overrides``/``seed``/``workers``.  Mixing
    both is an error — a pre-built config already fixes every knob.
    ``overrides`` may name any config field; when it names ``seed`` or
    ``workers``, the mapping entry wins over the same-named keyword
    (the mapping is the more specific user intent).
    """
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    protocol = PROTOCOLS.get(spec.protocol)
    if protocol is None:
        raise ScenarioError(
            f"scenario {spec.name!r} names unknown protocol {spec.protocol!r}; "
            f"known: {', '.join(sorted(PROTOCOLS))}"
        )
    if config is not None:
        if overrides or seed is not None or workers is not None:
            raise ScenarioError(
                "pass either a ready-made config or overrides/seed/workers, not both"
            )
        if not isinstance(config, spec.config_type):
            raise ScenarioError(
                f"scenario {spec.name!r} needs a {spec.config_type.__name__}, "
                f"got {type(config).__name__}"
            )
    else:
        merged = dict(overrides or {})
        if seed is not None and "seed" not in merged:
            merged["seed"] = seed
        if workers is not None and "workers" not in merged:
            merged["workers"] = workers
        config = spec.build_config(**merged)
    result = protocol(config)
    to_record = getattr(result, "to_record", None)
    record = to_record() if callable(to_record) else None
    return ScenarioOutcome(spec=spec, config=config, result=result, record=record)
