"""The protocol implementations behind every registered scenario.

The paper's five "experiments" are one protocol family — build a
corpus, sample the victim's mail, layer an attack grid, optionally
defend, pool metrics — instantiated with different fan-out shapes.
This module is where those instantiations live, collapsed out of the
five bespoke drivers:

* a shared **preparation stage** (:func:`prepare_inbox`) that every
  pool-based protocol runs: seed-spawn, generate the corpus, sample
  the inbox/pool, tokenize, encode against one shared
  :class:`~repro.spambayes.token_table.TokenTable`;
* one **protocol function** per fan-out shape, registered in
  :data:`PROTOCOLS` under the name scenario specs declare.

Each protocol takes the experiment config dataclass its historical
driver took and returns the same result object, reproducing the
driver's output bit for bit — the seed-stream labels, rng draw order
and engine calls are preserved exactly (`tests/test_scenarios.py` and
``benchmarks/bench_scenario_overhead.py`` hold executor and drivers
side by side).  The experiment modules keep their config/result
types, worker functions and contexts (worker functions must stay at a
stable pickle path for the process fan-out); what moved here is the
orchestration that used to be copy-pasted five times.

Attack grids resolve through the shared catalogue
(:func:`repro.attacks.variants.build_attack_variants`), so a scenario
can cross any catalogued attack with any protocol — e.g. the
``focused`` variant inside the RONI gate protocol — without a new
driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, TYPE_CHECKING

from repro.attacks.focused import FocusedAttack
from repro.attacks.variants import build_attack_variants
from repro.corpus.dataset import Dataset
from repro.corpus.trec import TrecStyleCorpus
from repro.engine.runner import ParallelRunner
from repro.engine.seeding import drawn_seeds
from repro.engine.sweep import SweepSpec, attack_message_count, run_attack_sweeps, train_grouped
from repro.errors import ExperimentError
from repro.experiments import dictionary_exp, focused_exp, goodword_exp, roni_exp, threshold_exp
from repro.experiments.metrics import ConfusionCounts
from repro.experiments.results import CurvePoint
from repro.rng import SeedSpawner
from repro.spambayes.classifier import Classifier
from repro.spambayes.ndkernel import create_classifier
from repro.spambayes.filter import Label
from repro.spambayes.tokenizer import DEFAULT_TOKENIZER
from repro.stream.runner import run_stream_experiment

if TYPE_CHECKING:
    from repro.spambayes.token_table import TokenTable

__all__ = ["PROTOCOLS", "PreparedInbox", "prepare_inbox"]


# ----------------------------------------------------------------------
# The shared preparation stage
# ----------------------------------------------------------------------


@dataclass
class PreparedInbox:
    """Everything the pool-based protocols share after preparation."""

    spawner: SeedSpawner
    corpus: TrecStyleCorpus
    inbox: Dataset
    table: "TokenTable"


def prepare_inbox(
    config: Any,
    *,
    spawn_label: str,
    sample_label: str = "inbox",
    size_attr: str = "inbox_size",
) -> PreparedInbox:
    """Corpus → inbox → tokenize → encode, under the historical labels.

    ``spawn_label`` and ``sample_label`` are the experiment's seed
    stream names ("dictionary-experiment"/"inbox",
    "roni-experiment"/"pool", ...) — they are part of each scenario's
    identity, because every downstream draw descends from them.
    """
    spawner = SeedSpawner(config.seed).spawn(spawn_label)
    corpus = TrecStyleCorpus.generate(
        n_ham=config.corpus_ham,
        n_spam=config.corpus_spam,
        profile=config.profile,
        seed=spawner.child_seed("corpus"),
    )
    inbox = corpus.dataset.sample_inbox(
        getattr(config, size_attr), config.spam_prevalence, spawner.rng(sample_label)
    )
    inbox.tokenize_all()
    # Encode once: the full model, every fold worker, every defense and
    # every evaluation reuses these arrays and this table.
    table = inbox.encode()
    return PreparedInbox(spawner, corpus, inbox, table)


# ----------------------------------------------------------------------
# Figure 1: K-fold dictionary-attack contamination sweeps
# ----------------------------------------------------------------------


def run_dictionary_sweep(
    config: "dictionary_exp.DictionaryExperimentConfig",
) -> "dictionary_exp.DictionaryExperimentResult":
    """K-fold contamination sweep per attack variant, pooled over folds."""
    prepared = prepare_inbox(config, spawn_label="dictionary-experiment")
    attacks = build_attack_variants(prepared.corpus, config.variants, seed=config.seed)
    result = dictionary_exp.DictionaryExperimentResult(config=config)
    specs = [
        (
            SweepSpec(key=variant, attack=attack, fractions=tuple(config.attack_fractions)),
            prepared.spawner.rng(f"sweep:{variant}"),
        )
        for variant, attack in attacks.items()
    ]
    for sweep in run_attack_sweeps(
        prepared.inbox,
        specs,
        config.folds,
        options=config.options,
        workers=config.workers,
        table=prepared.table,
    ):
        result.sweeps[sweep.key] = sweep.points
    return result


# ----------------------------------------------------------------------
# Figures 2 and 3: the targeted (focused) protocol
# ----------------------------------------------------------------------


def _prepare_repetitions(
    config: "focused_exp.FocusedExperimentConfig",
) -> list["focused_exp._Repetition"]:
    """The focused protocol's preparation stage.

    Unlike the pool-based protocols, each repetition samples its own
    inbox and trains its own classifier — so preparation is itself a
    fan-out (one task per repetition, each with its labelled seed
    stream).
    """
    spawner = SeedSpawner(config.seed).spawn("focused-experiment")
    corpus = TrecStyleCorpus.generate(
        n_ham=config.corpus_ham,
        n_spam=config.corpus_spam,
        profile=config.profile,
        seed=spawner.child_seed("corpus"),
    )
    context = focused_exp._PrepareContext(corpus, config, spawner.seed)
    return ParallelRunner(config.workers).map(
        focused_exp._prepare_one_repetition, context, list(range(config.repetitions))
    )


def run_focused_knowledge(
    config: "focused_exp.FocusedExperimentConfig",
) -> "focused_exp.FocusedKnowledgeResult":
    """Figure 2: post-attack target label mix per guess probability."""
    repetitions = _prepare_repetitions(config)
    attack_rng = SeedSpawner(config.seed).spawn("focused-knowledge").rng("attacks")
    # Batch generation consumes the one shared attack stream, so it
    # stays in the parent, in the historical rep -> target -> p order.
    tasks: list[focused_exp._KnowledgeTask] = []
    for rep_index, repetition in enumerate(repetitions):
        for target in repetition.targets:
            batches = []
            for probability in config.guess_probabilities:
                attack = FocusedAttack(
                    target.email,
                    guess_probability=probability,
                    header_pool=repetition.header_pool,
                )
                batches.append(attack.generate(config.attack_count, attack_rng))
            target_ids = target.token_ids(repetition.classifier.table, DEFAULT_TOKENIZER)
            tasks.append(focused_exp._KnowledgeTask(rep_index, target_ids, tuple(batches)))
    context = focused_exp._EvalContext(tuple(rep.classifier for rep in repetitions))
    outcomes = ParallelRunner(config.workers).map(
        focused_exp._run_knowledge_cell, context, tasks
    )

    result = focused_exp.FocusedKnowledgeResult(config=config)
    for probability in config.guess_probabilities:
        result.label_counts[probability] = {"ham": 0, "unsure": 0, "spam": 0}
    for pre_attack_ham, labels in outcomes:
        result.total_targets += 1
        if pre_attack_ham:
            result.pre_attack_ham += 1
        for probability, label in zip(config.guess_probabilities, labels):
            result.label_counts[probability][label] += 1
    return result


def run_focused_size(
    config: "focused_exp.FocusedExperimentConfig",
) -> "focused_exp.FocusedSizeResult":
    """Figure 3: target misclassification vs number of attack emails."""
    fractions = list(config.size_sweep_fractions)
    if fractions != sorted(fractions):
        raise ExperimentError("size_sweep_fractions must be ascending")
    repetitions = _prepare_repetitions(config)
    attack_rng = SeedSpawner(config.seed).spawn("focused-size").rng("attacks")
    counts = [attack_message_count(config.inbox_size, f) for f in fractions]
    tasks: list[focused_exp._SizeTask] = []
    for rep_index, repetition in enumerate(repetitions):
        for target in repetition.targets:
            attack = FocusedAttack(
                target.email,
                guess_probability=config.size_sweep_guess_probability,
                header_pool=repetition.header_pool,
            )
            batch = attack.generate(counts[-1] if counts else 0, attack_rng)
            target_ids = target.token_ids(repetition.classifier.table, DEFAULT_TOKENIZER)
            tasks.append(focused_exp._SizeTask(rep_index, target_ids, batch))
    context = focused_exp._EvalContext(
        tuple(rep.classifier for rep in repetitions), counts=tuple(counts)
    )
    outcomes = ParallelRunner(config.workers).map(focused_exp._run_size_cell, context, tasks)

    as_spam = [0] * len(fractions)
    as_filtered = [0] * len(fractions)  # spam or unsure
    total = 0
    for labels in outcomes:
        total += 1
        for index, label in enumerate(labels):
            if label == Label.SPAM.value:
                as_spam[index] += 1
            if label != Label.HAM.value:
                as_filtered[index] += 1
    result = focused_exp.FocusedSizeResult(config=config)
    for index, fraction in enumerate(fractions):
        result.points.append(
            CurvePoint(
                x=fraction,
                ham_as_spam_rate=as_spam[index] / total if total else 0.0,
                ham_misclassified_rate=as_filtered[index] / total if total else 0.0,
            )
        )
    return result


# ----------------------------------------------------------------------
# Good-word evasion costs (Exploratory/Integrity quadrant)
# ----------------------------------------------------------------------


def run_goodword_evasion(
    config: "goodword_exp.GoodWordExperimentConfig",
) -> "goodword_exp.GoodWordExperimentResult":
    """Evasion rate vs word budget for both attacker knowledge models."""
    from repro.corpus.wordlists import build_usenet_wordlist
    from repro.attacks.goodword import CommonWordGoodWordAttack, OracleGoodWordAttack

    prepared = prepare_inbox(config, spawn_label="goodword-experiment")
    classifier = create_classifier(config.options, table=prepared.table)
    train_grouped(classifier, prepared.inbox)

    inbox_ids = {m.msgid for m in prepared.inbox}
    test_spam = [m for m in prepared.corpus.dataset.spam if m.msgid not in inbox_ids]
    if len(test_spam) < config.n_test_spam:
        raise ExperimentError(
            f"need {config.n_test_spam} held-out spam, only {len(test_spam)} available"
        )
    test_spam = test_spam[: config.n_test_spam]
    # Only spam the clean filter actually catches is worth evading.
    # One encoded bulk pass instead of a per-message score loop.
    spam_cutoff = config.options.spam_cutoff
    test_scores = classifier.score_many_ids(
        [m.token_ids(prepared.table) for m in test_spam]
    )
    caught = [
        m for m, score in zip(test_spam, test_scores) if score > spam_cutoff
    ]
    if not caught:
        raise ExperimentError("clean filter catches no test spam; nothing to evade")

    usenet = build_usenet_wordlist(prepared.corpus.vocabulary, seed=config.seed)
    attackers = {
        "common-word (blind)": CommonWordGoodWordAttack(usenet.words),
        "oracle (Lowd-Meek)": OracleGoodWordAttack(
            classifier, usenet.words[: config.oracle_candidates]
        ),
    }

    # Each caught spam is one task: padding and scoring draw no
    # randomness, so any execution order (and any worker count) tallies
    # the same curves.
    context = goodword_exp._GoodWordContext(
        classifier, attackers, tuple(config.word_budgets), spam_cutoff
    )
    per_message = ParallelRunner(config.workers).map(
        goodword_exp._evade_one_message, context, [message.email for message in caught]
    )

    result = goodword_exp.GoodWordExperimentResult(config=config)
    budgets = list(config.word_budgets)
    for model_name in attackers:
        evaded_per_budget = [0] * len(budgets)
        evaded_at: list[int | None] = []
        for outcome in per_message:
            flags = outcome[model_name]
            first_evading = None
            for index, evaded in enumerate(flags):
                if evaded:
                    evaded_per_budget[index] += 1
                    if first_evading is None:
                        first_evading = budgets[index]
            evaded_at.append(first_evading)
        result.evasion[model_name] = [
            (budget, count / len(caught)) for budget, count in zip(budgets, evaded_per_budget)
        ]
        # Median words-to-evade, with "never evaded within budget"
        # treated as +infinity: a None median means most spam resisted.
        costs = sorted(evaded_at, key=lambda c: float("inf") if c is None else c)
        result.median_words_to_evade[model_name] = costs[(len(costs) - 1) // 2]
    return result


# ----------------------------------------------------------------------
# Section 5.1: the RONI gate calibration protocol
# ----------------------------------------------------------------------


def run_roni_gate(
    config: "roni_exp.RoniExperimentConfig",
) -> "roni_exp.RoniExperimentResult":
    """Impact distributions of attack vs non-attack mail under RONI."""
    prepared = prepare_inbox(
        config, spawn_label="roni-experiment", sample_label="pool", size_attr="pool_size"
    )
    pool = prepared.inbox
    pool_ids = {message.msgid for message in pool}
    spam_outside = [m for m in prepared.corpus.dataset.spam if m.msgid not in pool_ids]
    if len(spam_outside) < config.n_nonattack_spam:
        raise ExperimentError(
            f"need {config.n_nonattack_spam} non-attack spam outside the pool, "
            f"only {len(spam_outside)} available"
        )
    attacks = build_attack_variants(
        prepared.corpus,
        config.variants,
        seed=config.seed,
        informed_budget=config.informed_budget,
        pool=pool,
    )
    result = roni_exp.RoniExperimentResult(config=config)
    result.attack_impacts = {variant: [] for variant in attacks}
    context = roni_exp._RoniContext(
        pool, prepared.table, attacks, config, prepared.spawner.seed
    )
    runner = ParallelRunner(config.workers)

    # Attack emails: a fresh RONI calibration per repetition, one email
    # of each variant measured against it.
    per_rep = runner.map(
        roni_exp._measure_attack_repetition,
        context,
        list(range(config.repetitions_per_variant)),
    )
    for impacts in per_rep:
        for variant, impact in zip(attacks, impacts):
            result.attack_impacts[variant].append(impact)

    # Non-attack spam: measured against a dedicated calibration, in
    # round-robin batches so no single resample biases the distribution.
    queries = prepared.spawner.rng("query-choice").sample(
        spam_outside, config.n_nonattack_spam
    )
    per_defense = max(1, config.n_nonattack_spam // config.repetitions_per_variant)
    batches = [
        (rep, tuple(queries[start : start + per_defense]))
        for rep, start in enumerate(range(0, len(queries), per_defense))
    ]
    for impacts in runner.map(roni_exp._measure_spam_batch, context, batches):
        result.nonattack_spam_impacts.extend(impacts)
    return result


# ----------------------------------------------------------------------
# Figure 5: static vs fitted threshold arms over a poisoned sweep
# ----------------------------------------------------------------------


def run_threshold_arms(
    config: "threshold_exp.ThresholdExperimentConfig",
) -> "threshold_exp.ThresholdExperimentResult":
    """Dictionary contamination sweep under the threshold defense arms."""
    fractions = list(config.attack_fractions)
    if fractions != sorted(fractions):
        raise ExperimentError("attack_fractions must be ascending")
    prepared = prepare_inbox(config, spawn_label="threshold-experiment")
    attack = build_attack_variants(
        prepared.corpus, (config.attack_variant,), seed=config.seed
    )[config.attack_variant]
    counts = [attack_message_count(config.inbox_size, f) for f in fractions]
    quantiles = tuple(config.quantiles)
    arms = ["no-defense"] + [f"threshold-{q:.2f}" for q in quantiles]

    # Plan fold tasks, replaying the sequential draw order on the fold
    # rng: the k-fold shuffle, then per fold one batch seed followed by
    # one fit seed per fraction × quantile.
    fold_rng = prepared.spawner.rng("folds")
    pairs = prepared.inbox.k_fold_indices(config.folds, fold_rng)
    seeds_per_fold = 1 + len(fractions) * len(quantiles)
    tasks = [
        threshold_exp._FoldTask(
            tuple(train_idx), tuple(test_idx), tuple(drawn_seeds(fold_rng, seeds_per_fold))
        )
        for train_idx, test_idx in pairs
    ]
    # The inbox's shared table: the full model's count columns, the
    # pre-encoded message arrays and every fold worker all index by it.
    full_model = create_classifier(config.options, table=prepared.table)
    train_grouped(full_model, prepared.inbox)
    context = threshold_exp._FoldContext(
        inbox=prepared.inbox,
        attack=attack,
        counts=tuple(counts),
        quantiles=quantiles,
        options=config.options,
        tokenizer=DEFAULT_TOKENIZER,
        full_model=full_model,
    )
    fold_outcomes = ParallelRunner(config.workers).map(
        threshold_exp._run_threshold_fold, context, tasks
    )

    result = threshold_exp.ThresholdExperimentResult(config=config)
    accumulators: dict[str, list[ConfusionCounts]] = {
        arm: [ConfusionCounts() for _ in fractions] for arm in arms
    }
    threshold_fits: dict[str, list[list[tuple[float, float]]]] = {
        arm: [[] for _ in fractions] for arm in arms[1:]
    }
    for static_arm, fitted_arms in fold_outcomes:
        for index, confusion in enumerate(static_arm):
            accumulators["no-defense"][index].merge(confusion)
        for index, per_quantile in enumerate(fitted_arms):
            for quantile, (theta0, theta1, confusion) in zip(quantiles, per_quantile):
                arm = f"threshold-{quantile:.2f}"
                threshold_fits[arm][index].append((theta0, theta1))
                accumulators[arm][index].merge(confusion)
    for arm in arms:
        result.series[arm] = [
            CurvePoint.from_confusion(fraction, confusion)
            for fraction, confusion in zip(fractions, accumulators[arm])
        ]
    for arm, fits_per_fraction in threshold_fits.items():
        result.fitted_thresholds[arm] = [
            (
                fraction,
                sum(theta0 for theta0, _ in fits) / len(fits),
                sum(theta1 for _, theta1 in fits) / len(fits),
            )
            for fraction, fits in zip(fractions, fits_per_fraction)
        ]
    return result


PROTOCOLS: dict[str, Callable[[Any], Any]] = {
    "dictionary-sweep": run_dictionary_sweep,
    "focused-knowledge": run_focused_knowledge,
    "focused-size": run_focused_size,
    "goodword-evasion": run_goodword_evasion,
    "roni-gate": run_roni_gate,
    "threshold-arms": run_threshold_arms,
    # The streaming engine lives in its own subsystem
    # (repro.stream): a stream is one sequential task, fanned out
    # whole under the shared worker pool (see run_stream_experiment).
    "stream": run_stream_experiment,
}
"""Protocol name -> executor function, as scenario specs declare them."""
