"""The process-safe scenario registry.

One flat ``name -> ScenarioSpec`` mapping.  Process safety here means
*reproducibility across processes*, which the engine's worker fan-out
requires: the registry is populated deterministically at import time
(:mod:`repro.scenarios.builtin` registers the paper scenarios when the
package is imported), specs are immutable, and registration is guarded
by a lock plus a duplicate check — so every process that imports
:mod:`repro.scenarios` sees the identical catalogue, and a scenario
name means the same experiment everywhere (parent, worker, CLI, CI).

Registration validates the spec's ``protocol`` against the executor's
protocol table at registration time, not first-run time, so a typo in
a new scenario fails at import.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable

from repro.errors import ScenarioError
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
]

_REGISTRY: dict[str, ScenarioSpec] = {}
_LOCK = threading.Lock()


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Add ``spec`` to the registry; returns it (decorator-friendly).

    Duplicate names are an error — scenarios are global coordinates,
    and silently replacing one would make the same name mean different
    experiments in different processes.
    """
    from repro.scenarios.protocols import PROTOCOLS  # late: avoids import cycle

    if spec.protocol not in PROTOCOLS:
        raise ScenarioError(
            f"scenario {spec.name!r} names unknown protocol {spec.protocol!r}; "
            f"known: {', '.join(sorted(PROTOCOLS))}"
        )
    with _LOCK:
        existing = _REGISTRY.get(spec.name)
        if existing is not None:
            if existing == spec:  # idempotent re-registration (re-imports)
                return existing
            raise ScenarioError(f"scenario {spec.name!r} is already registered")
        _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario by name; unknown names list the catalogue."""
    with _LOCK:
        spec = _REGISTRY.get(name)
    if spec is None:
        raise ScenarioError(
            f"unknown scenario {name!r}; registered: {', '.join(scenario_names())}"
        )
    return spec


def scenario_names() -> list[str]:
    """Sorted names of every registered scenario."""
    with _LOCK:
        return sorted(_REGISTRY)


def list_scenarios(
    predicate: Callable[[ScenarioSpec], bool] | None = None,
) -> list[ScenarioSpec]:
    """Registered specs sorted by name, optionally filtered."""
    with _LOCK:
        specs: Iterable[ScenarioSpec] = [_REGISTRY[name] for name in sorted(_REGISTRY)]
    if predicate is not None:
        specs = [spec for spec in specs if predicate(spec)]
    return list(specs)
