"""The declarative scenario specification.

A :class:`ScenarioSpec` is everything needed to reproduce one
experiment *by name*: which protocol runs it, which config dataclass
parameterizes it (corpus sizes, attack grid, fold plan, seed — the
experiment configs are themselves frozen declarative objects), the
default overrides that distinguish this scenario from its siblings,
and the attack/defense/metric coordinates used for listing and
validation.

Specs are frozen and carry no live objects — no corpora, classifiers
or RNGs — so a registry of them is cheap to import in every worker
process and a spec can be rendered, diffed or logged without running
anything.  Execution lives in :mod:`repro.scenarios.executor`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping

from repro.errors import ReproError, ScenarioError

__all__ = ["ScenarioSpec"]


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, declarative experiment definition.

    ``protocol`` names an entry in
    :data:`repro.scenarios.protocols.PROTOCOLS`; ``config_type`` is the
    experiment config dataclass the protocol consumes; ``defaults`` are
    field overrides applied on top of ``config_type``'s own defaults
    (this is what makes a cross-product scenario a ~20-line
    registration instead of a new driver).  ``attack_grid``,
    ``defense_stack`` and ``metrics`` are the scenario's declared
    coordinates — surfaced by ``repro list-scenarios`` and usable for
    filtering; they describe, they do not drive.
    """

    name: str
    title: str
    protocol: str
    config_type: type
    defaults: Mapping[str, Any] = field(default_factory=dict)
    attack_grid: tuple[str, ...] = ()
    defense_stack: tuple[str, ...] = ()
    metrics: tuple[str, ...] = ()
    paper_artifact: str | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or any(ch.isspace() for ch in self.name):
            raise ScenarioError(f"scenario name must be a non-empty token, got {self.name!r}")
        if not dataclasses.is_dataclass(self.config_type):
            raise ScenarioError(
                f"scenario {self.name!r}: config_type must be a dataclass, "
                f"got {self.config_type!r}"
            )
        self._check_fields(self.defaults, "default")
        # Freeze the defaults mapping so a registered spec cannot be
        # mutated behind the registry's back.
        object.__setattr__(self, "defaults", MappingProxyType(dict(self.defaults)))

    # ------------------------------------------------------------------
    # Config construction
    # ------------------------------------------------------------------

    @property
    def config_fields(self) -> tuple[str, ...]:
        """The override keys this scenario's config accepts."""
        return tuple(f.name for f in dataclasses.fields(self.config_type) if f.init)

    def _check_fields(self, mapping: Mapping[str, Any], kind: str) -> None:
        unknown = sorted(set(mapping) - set(self.config_fields))
        if unknown:
            raise ScenarioError(
                f"scenario {self.name!r}: unknown {kind} field(s) "
                f"{', '.join(unknown)}; config {self.config_type.__name__} "
                f"accepts: {', '.join(self.config_fields)}"
            )

    def validate_overrides(self, overrides: Mapping[str, Any]) -> None:
        """Raise :class:`ScenarioError` for keys the config rejects.

        For callers that materialize configs themselves (the CLI's
        ``--scale paper`` path) but still want the registry's friendly
        unknown-field diagnostics instead of a raw ``TypeError``.
        """
        self._check_fields(overrides, "override")

    def build_config(self, **overrides: Any) -> Any:
        """Materialize the scenario's config.

        Precedence, lowest to highest: ``config_type`` field defaults,
        the spec's ``defaults``, then ``overrides`` — every config
        field (including ``seed`` and ``workers``) is overridable.
        Unknown override names raise :class:`ScenarioError` (listing
        the accepted fields); value validation is the config
        dataclass's own ``__post_init__`` — its :class:`ReproError`
        diagnostics pass through untouched, while a value of the wrong
        *type* (a ``--set folds=banana`` string hitting an integer
        comparison) is converted from the raw ``TypeError`` /
        ``ValueError`` into a :class:`ScenarioError` naming the
        scenario, so user input mistakes never surface as tracebacks.
        """
        merged: dict[str, Any] = dict(self.defaults)
        merged.update(overrides)
        self._check_fields(merged, "override")
        try:
            return self.config_type(**merged)
        except ReproError:
            raise
        except (TypeError, ValueError) as exc:
            raise ScenarioError(
                f"scenario {self.name!r}: invalid config value(s): {exc}"
            ) from exc

    def describe(self) -> str:
        """One-line human summary for listings."""
        parts = [f"[{self.protocol}]", self.title]
        if self.attack_grid:
            parts.append(f"attacks: {', '.join(self.attack_grid)}")
        if self.defense_stack:
            parts.append(f"defenses: {', '.join(self.defense_stack)}")
        return "  ".join(parts)
