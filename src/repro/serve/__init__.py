"""The always-on filter service (``repro serve``).

The serving layer over the spambayes library: a long-lived asyncio
daemon (:mod:`~repro.serve.service`) speaking a length-prefixed JSON
protocol (:mod:`~repro.serve.protocol`), coalescing concurrent score
requests into bulk kernel calls (:mod:`~repro.serve.batcher`), with a
blocking client (:mod:`~repro.serve.client`) for tests, tools and the
load generator.
"""

from repro.serve.batcher import BatcherStats, MicroBatcher
from repro.serve.client import ServeClient, connect
from repro.serve.service import FilterService, ServeConfig, serve_in_thread

__all__ = [
    "BatcherStats",
    "FilterService",
    "MicroBatcher",
    "ServeClient",
    "ServeConfig",
    "connect",
    "serve_in_thread",
]
