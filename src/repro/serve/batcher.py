"""Micro-batching for concurrent score requests.

The daemon's scoring hot path is a bulk kernel call
(``Classifier.score_many`` / the ND kernel's vectorized twin), whose
per-call overhead — attribute lookups, kernel dispatch, numpy array
setup — is amortized across every message in the batch.  A lone wire
request would pay all of it for one message.  The micro-batcher
recovers the bulk shape from concurrent traffic: requests arriving
within a short window (``--batch-window``, milliseconds) are coalesced
into one bulk call and the per-request results demultiplexed back to
their futures, in submission order, so no client can observe another
client's answer.

The contract that makes coalescing safe is the library's own:
``score_many(token_sets)`` returns exactly
``[score(ts) for ts in token_sets]`` — byte-identical floats — so a
batched response equals the response the same request would have
received alone.  The differential suite holds the daemon to that.

A window of ``0`` disables coalescing (``max_batch`` is forced to 1):
that is the benchmark's "unbatched" arm and the semantics of
``repro serve --batch-window 0``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Sequence

__all__ = ["BatcherStats", "MicroBatcher"]


@dataclass
class BatcherStats:
    """Counters describing how traffic actually coalesced."""

    requests: int = 0
    batches: int = 0
    batched_requests: int = 0  # requests that shared a batch with >=1 other
    max_batch: int = 0
    batch_sizes: dict = field(default_factory=dict)  # size -> count

    def record(self, size: int) -> None:
        self.requests += size
        self.batches += 1
        if size > 1:
            self.batched_requests += size
        if size > self.max_batch:
            self.max_batch = size
        self.batch_sizes[size] = self.batch_sizes.get(size, 0) + 1

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "max_batch": self.max_batch,
            "mean_batch": (self.requests / self.batches) if self.batches else 0.0,
            "batch_sizes": {str(k): v for k, v in sorted(self.batch_sizes.items())},
        }


class MicroBatcher:
    """Coalesce submitted items into bulk executions.

    ``execute`` is an async callable receiving the list of queued
    items (in submission order) and returning one result per item, in
    the same order.  Each submitter's future resolves to its own
    result; if the bulk call raises, every future in that batch gets
    the same exception.

    The drain loop waits for the first item, then sleeps the window to
    let concurrent peers pile in, then executes up to ``max_batch``
    items.  A zero window skips the sleep — each drain takes whatever
    is queued *right now*, which with ``max_batch=1`` is exactly
    one-request-per-call serving.
    """

    def __init__(
        self,
        execute: Callable[[Sequence[Any]], Awaitable[Sequence[Any]]],
        *,
        window_s: float = 0.002,
        max_batch: int = 256,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._execute = execute
        self._window_s = max(0.0, window_s)
        self._max_batch = 1 if self._window_s == 0.0 else max_batch
        self._queue: list[tuple[Any, asyncio.Future]] = []
        self._wakeup = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._closed = False
        self.stats = BatcherStats()

    @property
    def max_batch(self) -> int:
        return self._max_batch

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._drain_loop(), name="repro-serve-batcher"
            )

    async def close(self) -> None:
        """Stop the drain loop, failing any still-queued submissions."""
        self._closed = True
        self._wakeup.set()
        if self._task is not None:
            task, self._task = self._task, None
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        for _, future in self._queue:
            if not future.done():
                future.set_exception(asyncio.CancelledError("batcher closed"))
        self._queue.clear()

    def submit(self, item: Any) -> asyncio.Future:
        """Queue one item; the returned future resolves to its result.

        Synchronous up to the first await of the caller, so items from
        one connection's reader enqueue in frame order.
        """
        if self._closed:
            raise RuntimeError("batcher is closed")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.append((item, future))
        self._wakeup.set()
        return future

    async def _drain_loop(self) -> None:
        while True:
            if not self._queue:
                await self._wakeup.wait()
            self._wakeup.clear()
            if self._closed:
                return
            if self._window_s and len(self._queue) < self._max_batch:
                # Let concurrent submitters land in the same batch.
                # The window is a *maximum* wait: a batch that is
                # already full flushes immediately — and only a full
                # batch skips the window.  Flushing a partial batch
                # the moment a full one finishes would lock the
                # steady state into alternating full and fragment
                # batches, wasting the amortization this layer exists
                # to provide.
                await asyncio.sleep(self._window_s)
            batch = self._queue[: self._max_batch]
            del self._queue[: len(batch)]
            if batch:
                await self._run_batch(batch)

    async def _run_batch(self, batch: list[tuple[Any, asyncio.Future]]) -> None:
        items = [item for item, _ in batch]
        self.stats.record(len(items))
        try:
            results = await self._execute(items)
        except Exception as exc:  # noqa: BLE001 - fan the failure out per-future
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        if len(results) != len(items):
            mismatch = RuntimeError(
                f"bulk scorer returned {len(results)} results "
                f"for {len(items)} requests"
            )
            for _, future in batch:
                if not future.done():
                    future.set_exception(mismatch)
            return
        for (_, future), result in zip(batch, results):
            if not future.done():
                future.set_result(result)
