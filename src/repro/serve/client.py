"""A blocking client for the filter service.

The counterpart the tests and the load generator speak through: one
socket, framed requests with auto-assigned ``id``\\ s, responses
matched back by id (the daemon may answer out of request order — a
``ping`` overtakes a coalescing ``score``).  Error envelopes
(``ok: false``) surface as :class:`~repro.errors.ServeError` carrying
the daemon's one-line diagnostic, mirroring the CLI's ``error: ...``
convention.

For protocol abuse (truncated frames, hostile lengths) the tests drop
below this class and write raw bytes on ``ServeClient.sock``.
"""

from __future__ import annotations

import socket
from typing import Any, Sequence

from repro.errors import ServeError
from repro.serve import protocol

__all__ = ["ServeClient", "connect"]


def connect(
    address: str | tuple[str, int], timeout: float | None = 30.0
) -> "ServeClient":
    """Open a client on a socket path (str) or ``(host, port)`` pair."""
    return ServeClient(address, timeout=timeout)


class ServeClient:
    """One connection to a running :class:`~repro.serve.service.FilterService`."""

    def __init__(
        self, address: str | tuple[str, int], timeout: float | None = 30.0
    ) -> None:
        self.address = address
        if isinstance(address, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        try:
            sock.connect(address if isinstance(address, str) else tuple(address))
        except OSError as exc:
            sock.close()
            raise ServeError(
                f"cannot connect to the filter service at {address}: {exc}"
            ) from None
        self.sock = sock
        self._next_id = 0
        self._pending: dict[Any, dict] = {}

    # -- context manager ----------------------------------------------

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - close never matters twice
            pass

    # -- the request/response core ------------------------------------

    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def send(self, verb: str, **fields: Any) -> int:
        """Fire one request without waiting; returns its id."""
        request_id = fields.pop("id", None)
        if request_id is None:
            request_id = self._take_id()
        protocol.send_frame(
            self.sock, {"id": request_id, "verb": verb, **fields}
        )
        return request_id

    def recv(self, request_id: Any) -> dict:
        """Collect the response for ``request_id`` (buffering others)."""
        while request_id not in self._pending:
            response = protocol.recv_frame(self.sock)
            self._pending[response.get("id")] = response
        return self._pending.pop(request_id)

    def recv_any(self) -> dict:
        """Collect whichever response arrives next (pipelined callers)."""
        if self._pending:
            _, response = self._pending.popitem()
            return response
        return protocol.recv_frame(self.sock)

    def request(self, verb: str, **fields: Any) -> dict:
        """One round trip; raises :class:`ServeError` on an envelope."""
        response = self.recv(self.send(verb, **fields))
        if not response.get("ok"):
            raise ServeError(response.get("error", "unknown serve error"))
        return response

    # -- verbs --------------------------------------------------------

    def ping(self) -> dict:
        return self.request("ping")

    def score(self, tokens: Sequence[str]) -> float:
        return self.request("score", tokens=list(tokens))["score"]

    def score_response(self, tokens: Sequence[str]) -> dict:
        """The full score envelope (``score``/``batch``/``model_seq``)."""
        return self.request("score", tokens=list(tokens))

    def train(self, tokens: Sequence[str], is_spam: bool) -> dict:
        return self.request("train", tokens=list(tokens), is_spam=is_spam)

    def feedback(self, tokens: Sequence[str], is_spam: bool) -> dict:
        return self.request("feedback", tokens=list(tokens), is_spam=is_spam)

    def snapshot(self, path: str) -> dict:
        return self.request("snapshot", path=path)

    def stats(self) -> dict:
        return self.request("stats")

    def shutdown(self) -> dict:
        return self.request("shutdown")
