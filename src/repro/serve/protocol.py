"""The serve wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding a single object.  Requests carry a
client-chosen ``id`` (echoed verbatim in the response, which is what
lets the micro-batcher demultiplex coalesced replies) and a ``verb``;
responses carry ``ok`` plus the verb's payload, or ``ok: false`` with
a one-line ``error`` diagnostic — the wire twin of the CLI's
``error: ...`` / exit-2 envelope.

Verbs
-----

``ping``
    Liveness probe; replies ``{"pong": true}``.
``score``
    ``tokens`` (list of strings, one message's token stream) →
    ``score`` (the classifier's I(E)), ``batch`` (how many requests
    the micro-batcher coalesced into the bulk kernel call that served
    this one) and ``model_seq`` (the mutation counter of the model
    state the batch was scored under).
``train`` / ``feedback``
    ``tokens`` + ``is_spam`` (bool) → ``seq`` (the global mutation
    counter after the write applied), ``nspam``, ``nham``.  Both verbs
    perform the same library call (``Classifier.learn``); ``feedback``
    is the online score→user-correction loop, ``train`` the bulk
    ingest path — kept distinct so stats and access policy can treat
    them differently later.
``snapshot``
    ``path`` → persists the live classifier through
    :func:`repro.spambayes.persistence.save_classifier` (serialized
    through the writer task, so a snapshot never interleaves with a
    half-applied write).
``stats``
    → counters: request/error totals per verb, batching behaviour,
    classifier state, kernel/store/worker configuration, supervision
    recoveries.
``shutdown``
    → ``{"stopping": true}``, then the daemon drains in-flight
    requests and exits cleanly (socket unlinked, workers reaped).

Framing errors
--------------

Decoding distinguishes three client failure modes so the daemon can
answer each without dying:

* **oversized** — the declared length exceeds the frame cap; the
  daemon replies with an error envelope and closes the connection
  (the remaining bytes cannot be trusted to resynchronize);
* **truncated** — the peer disconnected mid-frame; a best-effort
  error envelope is written and the connection dropped;
* **malformed** — the frame arrived whole but is not a JSON object;
  the daemon replies (``id: null`` — there is no trustworthy id) and
  keeps the connection, because framing is still intact.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

from repro.errors import ProtocolError, ServeError

__all__ = [
    "HEADER",
    "MAX_FRAME_BYTES",
    "VERBS",
    "OversizedFrameError",
    "TruncatedFrameError",
    "decode_payload",
    "encode_frame",
    "error_reply",
    "one_line",
    "read_frame",
    "recv_frame",
    "send_frame",
]

HEADER = struct.Struct(">I")
"""4-byte big-endian unsigned frame length."""

MAX_FRAME_BYTES = 8 << 20
"""Default frame cap: large enough for any plausible message token
stream, small enough that a hostile length prefix cannot balloon the
daemon's memory."""

VERBS: tuple[str, ...] = (
    "ping",
    "score",
    "train",
    "feedback",
    "snapshot",
    "stats",
    "shutdown",
)
"""Every verb the daemon dispatches."""


class OversizedFrameError(ProtocolError):
    """A frame's declared length exceeds the configured cap."""


class TruncatedFrameError(ProtocolError):
    """The peer disconnected mid-frame (header or body incomplete)."""


def one_line(message: object) -> str:
    """Collapse a diagnostic to a single line for the error envelope."""
    return " ".join(str(message).split())


def error_reply(request_id: Any, message: object) -> dict:
    """The structured error envelope every failure path answers with."""
    return {"id": request_id, "ok": False, "error": one_line(message)}


def encode_frame(payload: dict) -> bytes:
    """One framed message: length prefix + compact sorted-key JSON.

    ``sort_keys`` plus fixed separators make the byte stream a pure
    function of the payload — the differential suites compare served
    responses against library calls at the float level, and stable
    encoding keeps the wire itself reproducible too.
    """
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return HEADER.pack(len(body)) + body


def decode_payload(body: bytes) -> dict:
    """Parse one frame body into a request/response object.

    Raises :class:`~repro.errors.ProtocolError` when the body is not
    UTF-8 JSON or not a JSON object — the caller still has a framed
    connection, so it can answer with an envelope and keep reading.
    """
    if not body:
        raise ProtocolError("empty frame (zero-length body)")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed JSON frame: {one_line(exc)}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


async def read_frame(reader, max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes | None:
    """Read one frame body from an asyncio stream.

    Returns ``None`` on a clean EOF at a frame boundary.  Raises
    :class:`OversizedFrameError` when the header declares more than
    ``max_frame_bytes`` (nothing past the header is consumed — the
    connection cannot be resynchronized and must be closed) and
    :class:`TruncatedFrameError` when the peer vanishes mid-frame.
    """
    import asyncio

    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TruncatedFrameError(
            f"connection closed mid-header ({len(exc.partial)} of {HEADER.size} bytes)"
        ) from None
    (length,) = HEADER.unpack(header)
    if length > max_frame_bytes:
        raise OversizedFrameError(
            f"frame of {length} bytes exceeds the {max_frame_bytes}-byte cap"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TruncatedFrameError(
            f"connection closed mid-frame ({len(exc.partial)} of {length} bytes)"
        ) from None


# ----------------------------------------------------------------------
# Blocking-socket half (the sync client and the load generator)
# ----------------------------------------------------------------------


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except socket.timeout as exc:  # pragma: no cover - timing dependent
            raise ServeError(f"timed out reading from the filter service: {exc}") from None
        except OSError as exc:
            raise ServeError(f"connection to the filter service failed: {exc}") from None
        if not chunk:
            raise ServeError(
                f"filter service closed the connection mid-read "
                f"({n - remaining} of {n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, payload: dict) -> None:
    """Write one framed payload to a blocking socket."""
    try:
        sock.sendall(encode_frame(payload))
    except OSError as exc:
        raise ServeError(f"cannot send to the filter service: {exc}") from None


def recv_frame(sock: socket.socket, max_frame_bytes: int = MAX_FRAME_BYTES) -> dict:
    """Read one framed payload from a blocking socket."""
    (length,) = HEADER.unpack(_recv_exact(sock, HEADER.size))
    if length > max_frame_bytes:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_frame_bytes}-byte cap"
        )
    return decode_payload(_recv_exact(sock, length))
