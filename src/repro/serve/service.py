"""The always-on filter service: an asyncio daemon over a live classifier.

This is the serving layer ROADMAP item 3 asks for — the paper's threat
model is a *live* filter under continuous mail flow with periodic
retraining, and this daemon is that surface: clients connect over a
Unix socket or TCP port, stream framed requests
(:mod:`repro.serve.protocol`), and get scores from, and apply training
to, one long-lived classifier built on whatever ``REPRO_KERNEL`` /
``REPRO_STORE`` backend is ambient.

Three tasks structure the loop:

* **Reader tasks** (one per connection) parse frames and dispatch
  them.  Dispatch is synchronous up to enqueue — a connection's
  requests enter the scoring batcher and the writer queue in frame
  order — then each response is awaited and written by its own small
  task, serialized per connection, demultiplexed by request ``id``.
* **The micro-batcher** (:mod:`repro.serve.batcher`) coalesces
  concurrent ``score`` requests into one bulk call —
  ``Classifier.score_many`` inline, or per-message ``score`` fanned
  across a :class:`~repro.engine.supervise.SupervisedPool` when
  ``--workers N>=2`` — both byte-identical to scoring each message
  alone, which is the library's own ``score_many`` contract.
* **The writer task** applies every mutation (``train``, ``feedback``,
  ``snapshot``) one at a time, in arrival order, stamping each with a
  global sequence number.  Scoring holds the same model lock per
  batch, so a batch sees either all or none of any mutation and
  reports ``model_seq`` — the sequence number of the state it scored
  under — which is what lets the concurrency suite replay a concurrent
  session sequentially and demand identical floats.

Crash behaviour is inherited, not reinvented: pooled scoring runs
through :class:`~repro.engine.supervise.SupervisedPool`, so an
injected or genuine worker death (``REPRO_FAULTS=crash:p=...``)
retries the batch on a fresh worker set and ultimately degrades to
inline scoring — the client sees the same bytes, later, never a
dropped connection.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import os
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Sequence

from repro.engine.supervise import SupervisedPool
from repro.errors import ConfigurationError, ProtocolError, ServeError
from repro.serve import protocol
from repro.serve.batcher import MicroBatcher
from repro.spambayes import ndkernel
from repro.spambayes.classifier import Classifier
from repro.spambayes.persistence import save_classifier
from repro.storage import store_name

__all__ = ["ServeConfig", "FilterService", "serve_in_thread"]

DEFAULT_BATCH_WINDOW_MS = 2.0
DEFAULT_MAX_BATCH = 256


def _score_task(classifier: Classifier, tokens: Sequence[str]) -> float:
    """Worker-side scoring unit: one message through the live model.

    Module-level so it pickles by reference; the classifier rides the
    pool's ``(fn, context)`` blob once per batch, so every worker
    scores against the exact model state the batch was stamped with.
    """
    return classifier.score(tokens)


@dataclass(frozen=True)
class ServeConfig:
    """How to run the daemon.

    Exactly one of ``socket_path`` (Unix domain socket) and ``port``
    (TCP, ``host`` defaulting to loopback; port 0 lets the OS pick and
    :attr:`FilterService.address` reports the choice).  A
    ``batch_window_ms`` of 0 disables coalescing entirely — the
    benchmark's unbatched arm.  ``workers >= 2`` scores batches
    through a supervised process pool; below that, inline.
    """

    socket_path: str | None = None
    port: int | None = None
    host: str = "127.0.0.1"
    batch_window_ms: float = DEFAULT_BATCH_WINDOW_MS
    workers: int = 1
    max_batch: int = DEFAULT_MAX_BATCH
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES

    def __post_init__(self) -> None:
        if (self.socket_path is None) == (self.port is None):
            raise ConfigurationError(
                "serve needs exactly one of --socket PATH or --port N"
            )
        if self.port is not None and not (0 <= self.port <= 65535):
            raise ConfigurationError(f"port must be in [0, 65535], got {self.port}")
        if self.batch_window_ms < 0:
            raise ConfigurationError(
                f"batch window must be >= 0 ms, got {self.batch_window_ms}"
            )
        if self.workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {self.workers}")
        if self.max_batch < 1:
            raise ConfigurationError(f"max batch must be >= 1, got {self.max_batch}")
        if self.max_frame_bytes < protocol.HEADER.size:
            raise ConfigurationError(
                f"frame cap must be >= {protocol.HEADER.size} bytes, "
                f"got {self.max_frame_bytes}"
            )


class FilterService:
    """One live classifier behind a framed request/response loop.

    ``classifier`` defaults to a fresh
    :func:`~repro.spambayes.ndkernel.create_classifier` on the ambient
    kernel and storage backend.  ``pool`` is an optional pre-built
    :class:`~repro.engine.supervise.SupervisedPool`; when ``workers >=
    2`` and none is given, :meth:`run` builds one (callers embedding
    the service in a threaded host should build the pool themselves,
    in the main thread, before any threads start — forking with
    threads live is the classic deadlock).
    """

    def __init__(
        self,
        config: ServeConfig,
        classifier: Classifier | None = None,
        pool: SupervisedPool | None = None,
    ) -> None:
        self.config = config
        self.classifier = (
            ndkernel.create_classifier() if classifier is None else classifier
        )
        self.pool = pool
        self._owns_pool = False
        self.ready = threading.Event()
        self.stopped = threading.Event()
        self.address: Any = None  # socket path, or (host, port) once bound
        self.seq = 0  # global mutation counter
        self.requests: dict[str, int] = {verb: 0 for verb in protocol.VERBS}
        self.errors = 0
        self.startup_error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_requested: asyncio.Event | None = None
        self._batcher: MicroBatcher | None = None
        self._model_lock: asyncio.Lock | None = None
        self._write_queue: asyncio.Queue | None = None
        self._scoring_executor: ThreadPoolExecutor | None = None
        self._connections: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def run(self) -> None:
        """Serve until a ``shutdown`` request (or :meth:`stop`) arrives.

        Blocking; owns its own event loop.  Sets :attr:`ready` once
        the listening socket is bound and :attr:`stopped` on the way
        out — the handshake ``serve_in_thread`` and the benchmark's
        subprocess driver both key on.
        """
        if self.pool is None and self.config.workers >= 2:
            self.pool = SupervisedPool(self.config.workers)
            self._owns_pool = True
        try:
            asyncio.run(self._main())
        except BaseException as exc:
            self.startup_error = exc
            raise
        finally:
            if self._owns_pool and self.pool is not None:
                self.pool.close()
                self.pool = None
            self.ready.set()  # never leave a waiter hanging on a failed start
            self.stopped.set()

    def stop(self) -> None:
        """Request shutdown from any thread (signal handlers, hosts)."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._request_stop)

    def _request_stop(self) -> None:
        if self._stop_requested is not None:
            self._stop_requested.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_requested = asyncio.Event()
        # Clean exit on SIGINT/SIGTERM in the CLI path; unavailable
        # (and unneeded) when hosted off the main thread.
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                self._loop.add_signal_handler(signum, self._request_stop)
        self._model_lock = asyncio.Lock()
        self._write_queue = asyncio.Queue()
        self._scoring_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-score"
        )
        self._batcher = MicroBatcher(
            self._score_batch,
            window_s=self.config.batch_window_ms / 1000.0,
            max_batch=self.config.max_batch,
        )
        self._batcher.start()
        writer_task = self._loop.create_task(
            self._writer_loop(), name="repro-serve-writer"
        )
        server = await self._open_server()
        try:
            self.ready.set()
            await self._stop_requested.wait()
        finally:
            server.close()
            await server.wait_closed()
            # Drain in-flight work before tearing the machinery down:
            # connections finish their current responses, queued
            # mutations apply, then the batcher and writer stop.
            for task in list(self._connections):
                task.cancel()
            if self._connections:
                await asyncio.gather(*self._connections, return_exceptions=True)
            await self._write_queue.join()
            writer_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await writer_task
            await self._batcher.close()
            self._scoring_executor.shutdown(wait=True)
            self._unlink_socket()

    async def _open_server(self):
        if self.config.socket_path is not None:
            path = Path(self.config.socket_path)
            if path.exists():
                raise ServeError(f"socket path already exists: {path}")
            path.parent.mkdir(parents=True, exist_ok=True)
            server = await asyncio.start_unix_server(
                self._handle_connection, path=str(path)
            )
            self.address = str(path)
        else:
            server = await asyncio.start_server(
                self._handle_connection, host=self.config.host, port=self.config.port
            )
            self.address = server.sockets[0].getsockname()[:2]
        return server

    def _unlink_socket(self) -> None:
        if self.config.socket_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.config.socket_path)

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        pending: set[asyncio.Future] = set()

        def send(payload: dict) -> None:
            # Whole-frame writes from the loop thread never interleave;
            # backpressure is applied by the read loop's drain() below.
            with contextlib.suppress(Exception):
                writer.write(protocol.encode_frame(payload))

        def deliver(future: asyncio.Future, request_id) -> None:
            # Runs as a done-callback: no per-request reply task, so a
            # coalesced batch's responses flush as one buffered burst.
            pending.discard(future)
            try:
                payload = future.result()
            except asyncio.CancelledError:
                send(protocol.error_reply(request_id, "service shutting down"))
                return
            except Exception as exc:  # noqa: BLE001 - envelope per failure
                self.errors += 1
                send(protocol.error_reply(request_id, exc))
                return
            send({"id": request_id, "ok": True, **payload})

        try:
            while True:
                try:
                    body = await protocol.read_frame(
                        reader, self.config.max_frame_bytes
                    )
                except protocol.OversizedFrameError as exc:
                    # The stream cannot be resynchronized past a bogus
                    # length; answer, then drop the connection.
                    self.errors += 1
                    send(protocol.error_reply(None, exc))
                    break
                except protocol.TruncatedFrameError as exc:
                    # Peer vanished mid-frame; best-effort envelope in
                    # case half the duplex is still up.
                    self.errors += 1
                    send(protocol.error_reply(None, exc))
                    break
                if body is None:  # clean EOF at a frame boundary
                    break
                try:
                    request = protocol.decode_payload(body)
                except ProtocolError as exc:
                    # Framing survived; only this payload is garbage.
                    self.errors += 1
                    send(protocol.error_reply(None, exc))
                    await writer.drain()
                    continue
                # Dispatch synchronously (ordering!); the reply writes
                # itself when the future resolves.
                future = self._dispatch(request)
                pending.add(future)
                future.add_done_callback(
                    functools.partial(deliver, request_id=request.get("id"))
                )
                # Per-connection backpressure: past the transport's
                # high-water mark this parks the reader until the
                # client reads its replies.
                await writer.drain()
        except (asyncio.CancelledError, ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if pending:
                # In-flight requests finish and (their callbacks ran
                # first — registered before gather's) get answered
                # before the connection closes under them.
                await asyncio.gather(*pending, return_exceptions=True)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
            self._connections.discard(task)

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, request: dict):
        """Route one request; returns an awaitable of the reply payload.

        Synchronous through enqueue: by the time this returns, a score
        sits in the batcher queue and a mutation in the writer queue,
        so one connection's requests take effect in frame order.
        """
        verb = request.get("verb")
        if verb not in protocol.VERBS:
            return self._fail(
                f"unknown verb {verb!r}; expected one of {', '.join(protocol.VERBS)}"
            )
        self.requests[verb] += 1
        if verb == "ping":
            return self._immediate({"pong": True})
        if verb == "score":
            try:
                tokens = self._tokens_of(request)
            except ProtocolError as exc:
                return self._fail(exc)
            return self._batcher.submit(tokens)
        if verb in ("train", "feedback"):
            try:
                tokens = self._tokens_of(request)
                is_spam = request.get("is_spam")
                if not isinstance(is_spam, bool):
                    raise ProtocolError(
                        f"{verb} needs boolean field 'is_spam', got "
                        f"{type(is_spam).__name__}"
                    )
            except ProtocolError as exc:
                return self._fail(exc)
            return self._enqueue_write(self._apply_learn, tokens, is_spam)
        if verb == "snapshot":
            path = request.get("path")
            if not isinstance(path, str) or not path:
                return self._fail("snapshot needs non-empty string field 'path'")
            return self._enqueue_write(self._apply_snapshot, path)
        if verb == "stats":
            return self._immediate(self._stats_payload())
        # shutdown: acknowledge first, then stop — the reply must make
        # it out before the server starts tearing connections down.
        self._loop.call_soon(self._request_stop)
        return self._immediate({"stopping": True})

    @staticmethod
    def _tokens_of(request: dict) -> list[str]:
        tokens = request.get("tokens")
        if not isinstance(tokens, list) or not all(
            isinstance(token, str) for token in tokens
        ):
            raise ProtocolError("field 'tokens' must be a list of strings")
        return tokens

    def _immediate(self, payload: dict):
        future = self._loop.create_future()
        future.set_result(payload)
        return future

    def _fail(self, message: object):
        future = self._loop.create_future()
        future.set_exception(ProtocolError(protocol.one_line(message)))
        return future

    # ------------------------------------------------------------------
    # The writer task (mutations, serialized)
    # ------------------------------------------------------------------

    def _enqueue_write(self, apply, *args):
        future = self._loop.create_future()
        self._write_queue.put_nowait((apply, args, future))
        return future

    async def _writer_loop(self) -> None:
        while True:
            apply, args, future = await self._write_queue.get()
            try:
                async with self._model_lock:
                    payload = apply(*args)
            except Exception as exc:  # noqa: BLE001 - envelope per request
                if not future.done():
                    future.set_exception(exc)
            else:
                if not future.done():
                    future.set_result(payload)
            finally:
                self._write_queue.task_done()

    def _apply_learn(self, tokens: list[str], is_spam: bool) -> dict:
        self.classifier.learn(tokens, is_spam)
        self.seq += 1
        return {
            "seq": self.seq,
            "nspam": self.classifier.nspam,
            "nham": self.classifier.nham,
        }

    def _apply_snapshot(self, path: str) -> dict:
        save_classifier(self.classifier, path)
        return {"path": path, "seq": self.seq}

    # ------------------------------------------------------------------
    # Scoring (the batcher's execute callback)
    # ------------------------------------------------------------------

    async def _score_batch(self, token_lists: Sequence[list[str]]) -> list[dict]:
        async with self._model_lock:
            model_seq = self.seq
            if self.pool is not None:
                scores = await self._loop.run_in_executor(
                    self._scoring_executor, self._score_pooled, list(token_lists)
                )
            else:
                scores = await self._loop.run_in_executor(
                    self._scoring_executor,
                    self.classifier.score_many,
                    list(token_lists),
                )
        batch = len(token_lists)
        return [
            {"score": score, "batch": batch, "model_seq": model_seq}
            for score in scores
        ]

    def _score_pooled(self, token_lists: list[list[str]]) -> list[float]:
        return self.pool.run(_score_task, self.classifier, token_lists)

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    def _stats_payload(self) -> dict:
        payload = {
            "requests": dict(self.requests),
            "errors": self.errors,
            "seq": self.seq,
            "nspam": self.classifier.nspam,
            "nham": self.classifier.nham,
            "kernel": ndkernel.kernel_name(),
            "store": store_name(),
            "workers": self.config.workers,
            "batch_window_ms": self.config.batch_window_ms,
            "batching": self._batcher.stats.as_dict(),
        }
        if self.pool is not None:
            payload["supervision"] = self.pool.stats.as_dict()
        return payload


@contextlib.contextmanager
def serve_in_thread(
    config: ServeConfig, classifier: Classifier | None = None
) -> Iterator[FilterService]:
    """Run a service on a daemon thread for the duration of a block.

    The test-suite harness: builds the (optional) supervised pool in
    the *calling* thread — before the serve thread exists, keeping the
    fork away from live threads — starts :meth:`FilterService.run` on
    a daemon thread, waits for the socket to be bound, and guarantees
    shutdown (and pool teardown) on exit however the block ends.
    """
    pool = SupervisedPool(config.workers) if config.workers >= 2 else None
    service = FilterService(config, classifier=classifier, pool=pool)

    def _run_quietly() -> None:
        # run() records any failure in service.startup_error; the
        # thread excepthook would only add traceback noise on top.
        with contextlib.suppress(BaseException):
            service.run()

    thread = threading.Thread(
        target=_run_quietly, name="repro-serve", daemon=True
    )
    thread.start()
    service.ready.wait(timeout=30.0)
    try:
        if service.startup_error is not None:
            raise ServeError(
                f"filter service failed to start: "
                f"{protocol.one_line(service.startup_error)}"
            ) from service.startup_error
        yield service
    finally:
        service.stop()
        service.stopped.wait(timeout=30.0)
        thread.join(timeout=30.0)
        if pool is not None:
            pool.close()
