"""Clean-room reimplementation of the SpamBayes statistical learner.

This package implements the algorithm described in Section 2.3 of
Nelson et al. (2008), which is Robinson's smoothed token scoring
combined with Fisher's chi-square method (Robinson 2003; Meyer &
Whateley 2004):

* :mod:`repro.spambayes.tokenizer` — header/body tokenization,
* :mod:`repro.spambayes.token_table` — str <-> int token interning,
* :mod:`repro.spambayes.classifier` — token statistics over interned-ID
  count columns, Equations 1-4,
* :mod:`repro.spambayes.reference` — the retained dict-keyed core the
  ID core is differentially tested against,
* :mod:`repro.spambayes.filter` — the three-way ham/unsure/spam filter,
* :mod:`repro.spambayes.chi2` — the chi-square survival function used by
  Fisher's method, with the same underflow handling as SpamBayes,
* :mod:`repro.spambayes.persistence` — save/load of trained state.

The public names most callers need are re-exported here.
"""

from repro.spambayes.chi2 import chi2q, fisher_combine
from repro.spambayes.classifier import Classifier, ClassifierSnapshot, TokenScore
from repro.spambayes.graham import GRAHAM_OPTIONS, GrahamClassifier
from repro.spambayes.filter import Label, SpamFilter, ClassifiedMessage
from repro.spambayes.message import Email
from repro.spambayes.options import ClassifierOptions, DEFAULT_OPTIONS
from repro.spambayes.token_table import TokenTable
from repro.spambayes.tokenizer import Tokenizer, tokenize_text
from repro.spambayes.wordinfo import WordInfo

__all__ = [
    "chi2q",
    "fisher_combine",
    "Classifier",
    "ClassifierSnapshot",
    "TokenScore",
    "TokenTable",
    "GrahamClassifier",
    "GRAHAM_OPTIONS",
    "Label",
    "SpamFilter",
    "ClassifiedMessage",
    "Email",
    "ClassifierOptions",
    "DEFAULT_OPTIONS",
    "Tokenizer",
    "tokenize_text",
    "WordInfo",
]
