"""Chi-square machinery behind Fisher's method.

SpamBayes combines per-token spam scores with Fisher's method for
merging independent significance tests (Fisher 1948).  If ``p_1..p_n``
are probabilities drawn independently from the uniform distribution,
then ``-2 * sum(ln p_i)`` follows a chi-square distribution with ``2n``
degrees of freedom.  Scores that are *uniformly distributed under the
null* therefore yield a middling statistic, while a run of extreme
scores pushes the statistic far into the tail.

:func:`chi2q` is the survival function ``P[X >= x2]`` of the chi-square
distribution with an *even* number of degrees of freedom, computed with
the closed-form series

    Q(x2, 2k) = exp(-m) * sum_{i=0}^{k-1} m^i / i!,   m = x2 / 2

which is exactly the routine SpamBayes ships (``chi2.chi2Q``).  It
needs no scipy and is precise enough for scores in ``[0, 1]``.

:func:`fisher_combine` evaluates the paper's Equation 4: given token
scores ``f(w)`` it returns

    H(E) = 1 - CDF_{2n}(-2 * sum(log f(w)))  =  Q(-2 * sum(log f(w)), 2n)

with the ``frexp`` trick SpamBayes uses so that products of hundreds of
tiny probabilities cannot underflow to zero before the logarithm is
taken.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.errors import ConfigurationError

__all__ = ["chi2q", "ln_product", "fisher_combine"]

# exp(-m) underflows for m > ~745; beyond that the survival function is
# indistinguishable from its asymptotic tail at double precision, and
# SpamBayes' own routine just returns 0.0 there too.
_EXP_UNDERFLOW_LIMIT = 708.0


def chi2q(x2: float, degrees: int) -> float:
    """Survival function of the chi-square distribution, even dof only.

    Returns ``P[X >= x2]`` for ``X ~ chi^2(degrees)``.

    ``degrees`` must be a positive even integer — Fisher's method always
    produces ``2n`` degrees of freedom, and the closed-form series only
    exists for even dof.  Values of ``x2 <= 0`` return 1.0 (the whole
    mass lies above a non-positive point).
    """
    if degrees <= 0 or degrees % 2 != 0:
        raise ConfigurationError(
            f"chi2q requires a positive even number of degrees, got {degrees}"
        )
    if x2 <= 0.0:
        return 1.0
    half = x2 / 2.0
    if half > _EXP_UNDERFLOW_LIMIT:
        return 0.0
    term = math.exp(-half)
    total = term
    for i in range(1, degrees // 2):
        term *= half / i
        total += term
    # The series can creep epsilon above 1.0 through rounding; clamp like
    # SpamBayes does.
    return min(total, 1.0)


def ln_product(values: Iterable[float]) -> float:
    """Return ``sum(ln v)`` for ``values`` without intermediate underflow.

    Multiplying hundreds of probabilities ~1e-5 together underflows a
    double long before the logarithm is taken, so — like SpamBayes — we
    accumulate the product in ``frexp`` form (mantissa in ``[0.5, 1)``
    plus a binary exponent) and take one logarithm at the end.

    Raises ``ValueError`` if any value is not strictly positive, because
    ``ln 0`` would silently poison the Fisher statistic.
    """
    mantissa = 1.0
    exponent = 0
    for value in values:
        if value <= 0.0:
            raise ValueError(f"ln_product requires positive values, got {value}")
        mantissa *= value
        if mantissa < 1e-200:
            mantissa, shift = math.frexp(mantissa)
            exponent += shift
    return math.log(mantissa) + exponent * math.log(2.0)


def fisher_combine(scores: Sequence[float]) -> float:
    """Fisher-combine token scores into a single tail probability.

    Implements ``Q(-2 * sum(ln f_i), 2n)`` over the given scores — the
    paper's ``H(E)`` when passed ``f(w)`` values, or ``S(E)`` when
    passed ``1 - f(w)`` values.  An empty score list carries no
    evidence; we return 1.0 so the combined message score (Eq. 3) comes
    out exactly 0.5.
    """
    if not scores:
        return 1.0
    statistic = -2.0 * ln_product(scores)
    return chi2q(statistic, 2 * len(scores))
