"""The SpamBayes learner: Robinson scores + Fisher's chi-square method.

This is the algorithm of Section 2.3 of the paper, the component every
attack in Sections 3-4 manipulates.

Training statistics
    For each token ``w`` the classifier tracks ``NS(w)`` / ``NH(w)``
    (spam / ham training messages containing ``w``) alongside the global
    ``NS`` / ``NH`` message counts.

Token score (Equations 1-2)
    The raw score ``PS(w) = NH*NS(w) / (NH*NS(w) + NS*NH(w))`` is the
    class-size-normalized probability that a message containing ``w``
    is spam.  It is smoothed toward the prior ``x`` with strength ``s``:
    ``f(w) = (s*x + N(w)*PS(w)) / (s + N(w))``.

Message score (Equations 3-4)
    The most significant tokens δ(E) (at most 150, each with
    ``|f - 0.5| >= 0.1``) are combined with Fisher's method into
    ``I(E) = (1 + H(E) - S(E)) / 2``, a score in ``[0, 1]`` where 0 is
    maximally hammy and 1 maximally spammy.

Storage: the interned token-ID core
    Tokens are interned through a shared, append-only
    :class:`~repro.spambayes.token_table.TokenTable` (``str <-> int``),
    and the per-token statistics live in two parallel ``array`` columns
    (``spamcount[id]``, ``hamcount[id]``) instead of a str-keyed object
    store.  Every hot loop — bulk scoring, attack-batch training, the
    RONI gate — runs over integer IDs with flat array/list indexing; no
    string is hashed inside a loop.  The string-facing *training* API
    (:meth:`learn`, ...) interns at the boundary; *scoring* never
    interns — unseen tokens contribute the prior without growing the
    shared table.  The ``*_ids`` twins accept pre-encoded ID arrays
    (see :meth:`~repro.corpus.dataset.LabeledMessage.token_ids`) so a
    message is encoded once and reused across every fold, attack batch
    and worker.  The arithmetic is expression-for-expression identical to
    the retained dict-keyed core
    (:class:`repro.spambayes.reference.ReferenceClassifier`), so scores
    are bit-exact against it — ``tests/test_token_table.py`` holds the
    two side by side to prove it.

Both :meth:`Classifier.learn` and :meth:`Classifier.unlearn` are
incremental, which the experiment harness leans on heavily: a fold's
clean model is trained once and attack batches are layered on top, and
the RONI defense trains/untrains candidate messages in place.

Snapshot / restore (:meth:`Classifier.snapshot`,
:meth:`Classifier.restore`)
    A copy-on-write checkpoint of the training state.  ``snapshot()``
    is O(1): it arms an ID-keyed write-ahead log, and subsequent
    learn/unlearn calls save each touched token's original count pair
    the *first* time they touch it.  ``restore()`` replays the log,
    returning the classifier to the exact snapshotted state (integer
    counts, so the round-trip is bit-exact).  This is what lets the
    sweep engine keep ONE shared clean model per inbox and derive every
    fold's classifier from it — unlearn the held-out stripe, layer
    attack batches, score, restore — instead of retraining K times per
    attack variant.  One snapshot may be active at a time; restoring
    deactivates it.

Bulk scoring (:meth:`Classifier.score_many_ids`)
    The columnar kernel.  Scores a batch of encoded messages in one
    pass over a flat significance memo indexed by token ID; memo hits —
    the common case once a fold's vocabulary is warm — are served by a
    C-level ``map`` over the ID array with no per-token Python
    bytecode.  The memo persists across calls and is invalidated as a
    whole by any training call (one pointer write, not a per-token
    sweep).  Scores are exactly what per-message :meth:`score` returns.
"""

from __future__ import annotations

import math
from array import array
from typing import Iterable, NamedTuple, Sequence

from repro.errors import TrainingError
from repro.spambayes.options import ClassifierOptions, DEFAULT_OPTIONS
from repro.spambayes.token_table import TOKEN_ID_TYPECODE, TokenTable
from repro.spambayes.wordinfo import WordInfo

__all__ = ["Classifier", "ClassifierSnapshot", "TokenScore"]

# Memo sentinel for "never computed" (None means "computed, not
# significant", so the kernel can drop insignificant entries with a
# C-level filter(None, ...)).
_MISSING = object()

_LN2 = math.log(2.0)


def _fisher_message_score(probs: Sequence[float]) -> float:
    """``(1 + H(E) - S(E)) / 2`` — Equations 3-4 in one fused pass.

    Bit-exact restatement of::

        spam = fisher_combine(probs)            # H(E)
        ham  = fisher_combine([1 - p for p in probs])   # S(E)
        (1.0 + spam - ham) / 2.0

    The two ``ln_product`` accumulations are interleaved into a single
    loop over ``probs`` (each accumulator still sees the same values in
    the same order, so every intermediate float is identical) and the
    even-dof chi-square survival series is inlined.  This combiner runs
    once per message on every scoring path, so the function-call and
    intermediate-list overhead it removes is a measurable slice of a
    fold sweep.
    """
    if not probs:
        return 0.5
    mant_spam = 1.0
    exp_spam = 0
    mant_ham = 1.0
    exp_ham = 0
    frexp = math.frexp
    for p in probs:
        if p <= 0.0:
            raise ValueError(f"ln_product requires positive values, got {p}")
        q = 1.0 - p
        if q <= 0.0:
            raise ValueError(f"ln_product requires positive values, got {q}")
        mant_spam *= p
        if mant_spam < 1e-200:
            mant_spam, shift = frexp(mant_spam)
            exp_spam += shift
        mant_ham *= q
        if mant_ham < 1e-200:
            mant_ham, shift = frexp(mant_ham)
            exp_ham += shift
    log = math.log
    degrees_half = len(probs)  # chi2q over 2n degrees iterates n-1 terms
    evidence = []
    for mantissa, exponent in ((mant_spam, exp_spam), (mant_ham, exp_ham)):
        x2 = -2.0 * (log(mantissa) + exponent * _LN2)
        if x2 <= 0.0:
            evidence.append(1.0)
            continue
        half = x2 / 2.0
        if half > 708.0:  # chi2._EXP_UNDERFLOW_LIMIT
            evidence.append(0.0)
            continue
        term = math.exp(-half)
        total = term
        for i in range(1, degrees_half):
            term *= half / i
            total += term
        evidence.append(min(total, 1.0))
    return (1.0 + evidence[0] - evidence[1]) / 2.0


class TokenScore(NamedTuple):
    """One token's contribution to a message score (evidence record)."""

    token: str
    spam_prob: float


class ClassifierSnapshot:
    """Opaque copy-on-write checkpoint of a :class:`Classifier`.

    Created by :meth:`Classifier.snapshot`; consumed (once) by
    :meth:`Classifier.restore`.  Holds the global message counts plus a
    write-ahead log mapping token ID -> original ``(spamcount,
    hamcount)`` pair, populated lazily as training calls touch tokens.
    """

    __slots__ = ("owner", "nspam", "nham", "log", "active")

    def __init__(self, owner: "Classifier", nspam: int, nham: int) -> None:
        self.owner = owner
        self.nspam = nspam
        self.nham = nham
        # token ID -> (spamcount, hamcount) at snapshot time; (0, 0)
        # records a token that was absent.
        self.log: dict[int, tuple[int, int]] = {}
        self.active = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "active" if self.active else "restored"
        return f"ClassifierSnapshot({state}, touched={len(self.log)})"


class Classifier:
    """Incremental SpamBayes token classifier over an interned ID core.

    The classifier works on *token streams*; pair it with a
    :class:`~repro.spambayes.tokenizer.Tokenizer` (or use the
    :class:`~repro.spambayes.filter.SpamFilter` facade) to classify
    :class:`~repro.spambayes.message.Email` objects.

    Token presence is what counts: duplicate tokens within one message
    are collapsed before the statistics are updated or scored.

    ``table`` is the interning :class:`TokenTable`; pass the corpus'
    shared table so pre-encoded ID arrays (``LabeledMessage.token_ids``)
    index directly into this classifier's count columns.  Omitted, the
    classifier owns a private table.  Tables are append-only, so
    sharing one between classifiers (or with a dataset encoder) is
    always safe — IDs never shift.
    """

    def __init__(
        self,
        options: ClassifierOptions = DEFAULT_OPTIONS,
        table: TokenTable | None = None,
        columns=None,
    ) -> None:
        self.options = options
        self._table = table if table is not None else TokenTable()
        # ``columns`` is a count-column store from the storage layer
        # (``repro.storage``); the default is the in-memory store whose
        # behaviour is the pre-storage-layer code extracted verbatim.
        # Derived classifiers (copies, unpickles, bulk loads) always
        # get in-memory columns — only explicitly wired classifiers
        # (``create_classifier`` under REPRO_STORE=disk) spill counts.
        if columns is None:
            from repro.storage.memory import MemoryCountColumns

            columns = MemoryCountColumns()
        self._columns = columns
        self._spam, self._ham = columns.grow(0)
        self._nspam = 0
        self._nham = 0
        self._active = 0  # IDs with spamcount + hamcount > 0
        # Flat significance memo indexed by token ID.  Entries:
        # _MISSING = not yet computed, tuple (-strength, token, prob) =
        # significant, None = computed and not significant.  An entry
        # is a pure function of (spamcount[id], hamcount[id], nspam,
        # nham), so the memo carries the (nspam, nham) pair it was
        # built under (_memo_tag) plus the IDs touched by mutations
        # since (_dirty): at the next scoring call, if the global pair
        # matches the tag again, only the dirty IDs are evicted — the
        # RONI gate's learn/score/unlearn cycling re-derives a few
        # hundred candidate tokens instead of the whole validation
        # vocabulary.  A tag mismatch (or an oversized dirty list)
        # rebuilds from scratch.
        self._memo: list | None = None
        self._memo_tag: tuple[int, int] | None = None
        self._dirty: list[int] = []
        # Message-level score memo: id(ids_array) -> (ids_array, score),
        # valid until the next training call.  Holding the array ref
        # keeps the id() stable.  Serves repeated evaluations of the
        # same encoded messages against unchanged state (e.g. one fold
        # scored under several threshold fits) at dict-probe cost.
        self._score_memo: dict[int, tuple[array, float]] | None = None
        self._snapshot: ClassifierSnapshot | None = None

    # ------------------------------------------------------------------
    # Training state
    # ------------------------------------------------------------------

    @property
    def nspam(self) -> int:
        """NS: number of spam messages trained."""
        return self._nspam

    @property
    def nham(self) -> int:
        """NH: number of ham messages trained."""
        return self._nham

    @property
    def table(self) -> TokenTable:
        """The interning table this classifier's columns are indexed by."""
        return self._table

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct tokens with non-zero training counts."""
        return self._active

    def word_info(self, token: str) -> WordInfo | None:
        """Return a (spamcount, hamcount) record for ``token``, if any.

        The record is a *view copy* of the count columns — mutating it
        does not change the classifier.
        """
        tid = self._table.id_of(token)
        if tid is None or tid >= len(self._spam):
            return None
        spamcount = self._spam[tid]
        hamcount = self._ham[tid]
        if spamcount == 0 and hamcount == 0:
            return None
        return WordInfo(spamcount, hamcount)

    def iter_vocabulary(self) -> Iterable[str]:
        tokens = self._table
        spam_col = self._spam
        ham_col = self._ham
        for tid in range(len(spam_col)):
            if spam_col[tid] or ham_col[tid]:
                yield tokens.token(tid)

    def encode_tokens(self, tokens: Iterable[str]) -> array:
        """Intern ``tokens`` into this classifier's table as a sorted,
        duplicate-free ID array, ready for the ``*_ids`` methods."""
        return self._table.encode_unique(tokens)

    # ------------------------------------------------------------------
    # Column plumbing
    # ------------------------------------------------------------------

    def _ensure_columns(self) -> None:
        """Grow the count columns to cover every interned ID."""
        n = len(self._table)
        if len(self._spam) < n:
            self._spam, self._ham = self._columns.grow(n)

    def _memo_list(self) -> list:
        """The flat significance memo, validated and sized to the table.

        Reconciles pending mutations: when the global (nspam, nham)
        pair equals the pair the memo was built under, every entry for
        an untouched ID is still exact — evict only the dirty IDs.
        Otherwise start a fresh memo.
        """
        memo = self._memo
        n = len(self._table)
        if memo is not None:
            dirty = self._dirty
            # The tag is checked even with nothing dirty: a mutation
            # with an empty token set still moves (nspam, nham), which
            # every memoized probability depends on.
            if (self._nspam, self._nham) != self._memo_tag:
                memo = None
            elif dirty:
                limit = len(memo)
                dirty_set = set(dirty)
                for tid in dirty_set:
                    if tid < limit:
                        memo[tid] = _MISSING
                score_memo = self._score_memo
                if score_memo:
                    # A message score survives iff none of its
                    # tokens were touched — its entire input state
                    # is then identical to when it was computed.
                    stale = [
                        key
                        for key, entry in score_memo.items()
                        if not dirty_set.isdisjoint(entry[0])
                    ]
                    for key in stale:
                        del score_memo[key]
                dirty.clear()
        if memo is None:
            memo = self._memo = [_MISSING] * n
            self._memo_tag = (self._nspam, self._nham)
            self._dirty.clear()
            self._score_memo = None
        elif len(memo) < n:
            memo.extend([_MISSING] * (n - len(memo)))
        return memo

    def _note_mutation(self, ids: Iterable[int]) -> None:
        """Record a training mutation touching ``ids``.

        The token and message memos survive with the touched IDs queued
        for lazy, targeted eviction (see :meth:`_memo_list`), unless
        the dirty backlog grows past the point where a rebuild is
        cheaper.
        """
        if self._memo is None:
            self._score_memo = None
            return
        dirty = self._dirty
        dirty.extend(ids)
        if len(dirty) > 1024 and len(dirty) * 4 > len(self._memo):
            self._memo = None
            dirty.clear()
            self._score_memo = None

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------

    def learn(self, tokens: Iterable[str], is_spam: bool) -> None:
        """Add one training message (given as its token stream).

        Duplicate tokens are collapsed; every distinct token's class
        count is incremented along with the global message count.
        Interning goes through :meth:`TokenTable.encode_unique`, so new
        tokens get IDs in sorted text order — the table layout never
        depends on set iteration order (``PYTHONHASHSEED``).
        """
        ids = self._table.encode_unique(tokens)
        if is_spam:
            self._nspam += 1
        else:
            self._nham += 1
        self._apply_delta(ids, is_spam, 1)

    def learn_ids(self, ids: Sequence[int], is_spam: bool) -> None:
        """:meth:`learn` for a pre-encoded message.

        ``ids`` must be duplicate-free token IDs from this classifier's
        :attr:`table` — exactly what :meth:`encode_tokens` or
        ``LabeledMessage.token_ids`` produce.
        """
        if is_spam:
            self._nspam += 1
        else:
            self._nham += 1
        self._apply_delta(ids, is_spam, 1)

    def unlearn(self, tokens: Iterable[str], is_spam: bool) -> None:
        """Remove a previously learned message.

        Raises :class:`TrainingError` if the message cannot have been
        learned with these tokens/label (a count would go negative) —
        silently clamping would corrupt every future score.  The check
        is performed *before* any count is touched, so a failed unlearn
        leaves the classifier unchanged.
        """
        self.unlearn_ids(self._table.encode_unique(tokens), is_spam)

    def unlearn_ids(self, ids: Sequence[int], is_spam: bool) -> None:
        """:meth:`unlearn` for a pre-encoded message (see :meth:`learn_ids`)."""
        if is_spam:
            if self._nspam < 1:
                raise TrainingError("unlearn(spam) with no spam trained")
        else:
            if self._nham < 1:
                raise TrainingError("unlearn(ham) with no ham trained")
        self._check_removal(ids, is_spam, 1)
        if is_spam:
            self._nspam -= 1
        else:
            self._nham -= 1
        self._apply_removal(ids, is_spam, 1)

    def learn_many(self, token_sets: Iterable[Iterable[str]], is_spam: bool) -> int:
        """Learn a batch of messages with a single label; returns count."""
        learned = 0
        for tokens in token_sets:
            self.learn(tokens, is_spam)
            learned += 1
        return learned

    def learn_repeated(self, tokens: Iterable[str], is_spam: bool, count: int) -> None:
        """Learn ``count`` identical copies of one message in one pass.

        Dictionary attacks inject thousands of messages sharing one huge
        token set; folding the repetition into a single sweep over the
        tokens turns an O(count * |tokens|) update into O(|tokens|).
        The resulting state is exactly what ``count`` calls to
        :meth:`learn` would produce.
        """
        self.learn_ids_repeated(self._table.encode_unique(tokens), is_spam, count)

    def learn_ids_repeated(self, ids: Sequence[int], is_spam: bool, count: int) -> None:
        """:meth:`learn_repeated` for a pre-encoded message."""
        if count < 0:
            raise TrainingError(f"learn_repeated needs count >= 0, got {count}")
        if count == 0:
            return
        if is_spam:
            self._nspam += count
        else:
            self._nham += count
        self._apply_delta(ids, is_spam, count)

    def unlearn_repeated(self, tokens: Iterable[str], is_spam: bool, count: int) -> None:
        """Reverse :meth:`learn_repeated` with the same arguments.

        Validates before mutating, like :meth:`unlearn`.
        """
        self.unlearn_ids_repeated(self._table.encode_unique(tokens), is_spam, count)

    def unlearn_ids_repeated(self, ids: Sequence[int], is_spam: bool, count: int) -> None:
        """:meth:`unlearn_repeated` for a pre-encoded message."""
        if count < 0:
            raise TrainingError(f"unlearn_repeated needs count >= 0, got {count}")
        if count == 0:
            return
        if is_spam and self._nspam < count:
            raise TrainingError(f"unlearn_repeated(spam, {count}) with only {self._nspam} trained")
        if not is_spam and self._nham < count:
            raise TrainingError(f"unlearn_repeated(ham, {count}) with only {self._nham} trained")
        self._check_removal(ids, is_spam, count)
        if is_spam:
            self._nspam -= count
        else:
            self._nham -= count
        self._apply_removal(ids, is_spam, count)

    def _apply_delta(self, ids: Sequence[int], is_spam: bool, count: int) -> None:
        """Add ``count`` to one class column for every ID (no checks)."""
        self._ensure_columns()
        spam_col = self._spam
        ham_col = self._ham
        col = spam_col if is_spam else ham_col
        other = ham_col if is_spam else spam_col
        log = None if self._snapshot is None else self._snapshot.log
        active = self._active
        for tid in ids:
            current = col[tid]
            if log is not None and tid not in log:
                log[tid] = (spam_col[tid], ham_col[tid])
            if current == 0 and other[tid] == 0:
                active += 1
            col[tid] = current + count
        self._active = active
        self._note_mutation(ids)

    def _check_removal(self, ids: Sequence[int], is_spam: bool, count: int) -> None:
        """Raise if any ID's class count would go negative (pre-mutation)."""
        col = self._spam if is_spam else self._ham
        limit = len(col)
        for tid in ids:
            current = col[tid] if tid < limit else 0
            if current < count:
                token = self._table.token(tid)
                raise TrainingError(
                    f"unlearn would drive count of token {token!r} negative; "
                    "message was not learned with this label"
                )

    def _apply_removal(self, ids: Sequence[int], is_spam: bool, count: int) -> None:
        """Subtract ``count`` from one class column (caller validated)."""
        spam_col = self._spam
        ham_col = self._ham
        col = spam_col if is_spam else ham_col
        other = ham_col if is_spam else spam_col
        log = None if self._snapshot is None else self._snapshot.log
        active = self._active
        for tid in ids:
            if log is not None and tid not in log:
                log[tid] = (spam_col[tid], ham_col[tid])
            remaining = col[tid] - count
            col[tid] = remaining
            if remaining == 0 and other[tid] == 0:
                active -= 1
        self._active = active
        self._note_mutation(ids)

    @classmethod
    def from_token_counts(
        cls,
        counts: Iterable[tuple[str, int, int]],
        *,
        nspam: int,
        nham: int,
        options: ClassifierOptions = DEFAULT_OPTIONS,
        table: TokenTable | None = None,
    ) -> "Classifier":
        """Build a classifier from per-token ``(token, spamcount,
        hamcount)`` records plus the global message counts.

        This is the supported bulk-load path (persistence restores
        through it): tokens are interned in the order given, counts
        land in the columns through the same bookkeeping training uses,
        and the memo/dirty/active invariants hold afterwards — callers
        never need to poke ``_spam``/``_ham`` directly.  Counts must be
        non-negative and each token may appear at most once.
        """
        if nspam < 0 or nham < 0:
            raise TrainingError(
                f"bulk load needs nspam/nham >= 0, got {nspam}/{nham}"
            )
        classifier = cls(options, table=table)
        intern = classifier._table.intern
        spam_pairs: list[tuple[int, int]] = []
        ham_pairs: list[tuple[int, int]] = []
        seen: set[int] = set()
        for token, spamcount, hamcount in counts:
            if spamcount < 0 or hamcount < 0:
                raise TrainingError(
                    f"bulk load needs counts >= 0, got {token!r}: "
                    f"({spamcount}, {hamcount})"
                )
            tid = intern(token)
            if tid in seen:
                raise TrainingError(f"bulk load saw token {token!r} twice")
            seen.add(tid)
            if spamcount:
                spam_pairs.append((tid, spamcount))
            if hamcount:
                ham_pairs.append((tid, hamcount))
        classifier._nspam = nspam
        classifier._nham = nham
        classifier._ensure_columns()
        spam_col = classifier._spam
        ham_col = classifier._ham
        for tid, count in spam_pairs:
            spam_col[tid] = count
        for tid, count in ham_pairs:
            ham_col[tid] = count
        classifier._active = sum(
            1 for tid in range(len(spam_col)) if spam_col[tid] or ham_col[tid]
        )
        return classifier

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------

    @property
    def snapshot_active(self) -> bool:
        """True while a snapshot is armed and not yet restored."""
        return self._snapshot is not None

    def snapshot(self) -> ClassifierSnapshot:
        """Arm a copy-on-write checkpoint of the current training state.

        O(1) now; subsequent learn/unlearn calls pay one extra dict
        probe per *newly touched* token ID to save its original counts.
        Only one snapshot may be active at a time — layered checkpoints
        would need a log per level, and no caller has wanted one.
        """
        if self._snapshot is not None:
            raise TrainingError("a snapshot is already active; restore it first")
        snap = ClassifierSnapshot(self, self._nspam, self._nham)
        self._snapshot = snap
        return snap

    def restore(self, snap: ClassifierSnapshot) -> None:
        """Return to the exact state captured by :meth:`snapshot`.

        Counts are integers, so the round-trip is bit-exact: the
        restored classifier scores every message identically to the
        moment the snapshot was taken.  The snapshot is single-use.
        """
        if snap.owner is not self:
            raise TrainingError("snapshot belongs to a different classifier")
        if not snap.active or self._snapshot is not snap:
            raise TrainingError("snapshot is not active on this classifier")
        spam_col = self._spam
        ham_col = self._ham
        active = self._active
        for tid, (spamcount, hamcount) in snap.log.items():
            if spam_col[tid] or ham_col[tid]:
                active -= 1
            if spamcount or hamcount:
                active += 1
            spam_col[tid] = spamcount
            ham_col[tid] = hamcount
        self._active = active
        self._nspam = snap.nspam
        self._nham = snap.nham
        snap.active = False
        self._snapshot = None
        self._note_mutation(snap.log.keys())

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def raw_spam_score(self, token: str) -> float:
        """PS(w) of Equation 1; the prior ``x`` for unseen tokens."""
        tid = self._table.id_of(token)
        if tid is None or tid >= len(self._spam):
            return self.options.unknown_word_prob
        spamcount = self._spam[tid]
        hamcount = self._ham[tid]
        if spamcount + hamcount == 0:
            return self.options.unknown_word_prob
        nspam = self._nspam
        nham = self._nham
        if nspam == 0 and nham == 0:
            return self.options.unknown_word_prob
        spam_ratio = spamcount / nspam if nspam else 0.0
        ham_ratio = hamcount / nham if nham else 0.0
        denominator = spam_ratio + ham_ratio
        if denominator == 0.0:
            return self.options.unknown_word_prob
        return spam_ratio / denominator

    def _prob_for_id(self, token_id: int) -> float:
        """f(w) of Equation 2 for one interned token ID.

        The single overridable probability hook: subclasses with a
        different per-token formula (Graham mode) override this, and
        every scoring path — single-token, per-message, and the bulk
        kernel — routes through it (the kernel inlines the base
        arithmetic only when the hook is not overridden).  Columns must
        already cover ``token_id`` (callers go through
        :meth:`_ensure_columns`).
        """
        opts = self.options
        spamcount = self._spam[token_id]
        hamcount = self._ham[token_id]
        n = spamcount + hamcount
        if n == 0:
            return opts.unknown_word_prob
        nspam = self._nspam
        nham = self._nham
        unknown = opts.unknown_word_prob
        if nspam == 0 and nham == 0:
            ps = unknown
        else:
            spam_ratio = spamcount / nspam if nspam else 0.0
            ham_ratio = hamcount / nham if nham else 0.0
            denominator = spam_ratio + ham_ratio
            ps = unknown if denominator == 0.0 else spam_ratio / denominator
        s = opts.unknown_word_strength
        return (s * unknown + n * ps) / (s + n)

    def spam_prob(self, token: str) -> float:
        """f(w) of Equation 2: smoothed token spam score in [0, 1].

        Scoring never interns: a token the table has not seen scores
        the prior without growing the (possibly shared) table, columns
        or memos — only training extends the vocabulary.
        """
        tid = self._table.id_of(token)
        if tid is None:
            return self.options.unknown_word_prob
        self._ensure_columns()
        memo = self._memo_list()
        entry = memo[tid]
        if type(entry) is tuple:
            return entry[2]
        prob = self._prob_for_id(tid)
        if entry is _MISSING:
            strength = abs(prob - 0.5)
            if strength >= self.options.minimum_prob_strength:
                memo[tid] = (-strength, token, prob)
            else:
                memo[tid] = None
        return prob

    def _entries(self, ids: Sequence[int]) -> list:
        """Memo entries for a batch of IDs (columns must be ensured)."""
        memo = self._memo_list()
        minimum = self.options.minimum_prob_strength
        table = self._table
        out = []
        for tid in ids:
            entry = memo[tid]
            if entry is _MISSING:
                prob = self._prob_for_id(tid)
                strength = abs(prob - 0.5)
                if strength >= minimum:
                    entry = (-strength, table.token(tid), prob)
                else:
                    entry = None
                memo[tid] = entry
            out.append(entry)
        return out

    def _unknown_entry(self) -> tuple | None:
        """The memo entry an unseen token would get, or None if the
        prior is not significant.  Built per token text at use sites
        (the tie-break needs the text); unseen tokens are never
        interned by scoring."""
        unknown = self.options.unknown_word_prob
        strength = abs(unknown - 0.5)
        if strength >= self.options.minimum_prob_strength:
            return (-strength, unknown)
        return None

    def significant_tokens(self, tokens: Iterable[str]) -> list[TokenScore]:
        """δ(E): the strongest discriminators among ``tokens``.

        At most ``max_discriminators`` distinct tokens whose score lies
        at least ``minimum_prob_strength`` away from 0.5, strongest
        first.  Ties are broken by token text so results are
        deterministic across runs and platforms.
        """
        unique = tokens if isinstance(tokens, (set, frozenset)) else set(tokens)
        id_of = self._table.id_of
        ids = []
        scored = []
        unknown = self._unknown_entry()
        for token in unique:
            tid = id_of(token)
            if tid is None:
                if unknown is not None:
                    scored.append((unknown[0], token, unknown[1]))
            else:
                ids.append(tid)
        self._ensure_columns()
        scored.extend(entry for entry in self._entries(ids) if entry is not None)
        scored.sort()
        limit = self.options.max_discriminators
        return [TokenScore(token, prob) for _, token, prob in scored[:limit]]

    def score(self, tokens: Iterable[str]) -> float:
        """I(E) of Equation 3 for a message given as its token stream."""
        return self._combine([ts.spam_prob for ts in self.significant_tokens(tokens)])

    def score_ids(self, ids: Sequence[int]) -> float:
        """I(E) for one pre-encoded message (see :meth:`learn_ids`)."""
        return self.score_many_ids((ids,))[0]

    def score_many(self, token_sets: Iterable[Iterable[str]]) -> list[float]:
        """I(E) for a batch of messages in one pass.

        Returns exactly ``[self.score(ts) for ts in token_sets]`` — the
        same sort, the same tie-breaks, the same floats.  Known tokens
        are resolved to IDs up front and run through the columnar
        kernel; unseen tokens contribute the prior inline, without
        being interned (scoring never grows the table).
        """
        id_of = self._table.id_of
        encoded: list[tuple[list[int], list[str]]] = []
        any_unknown = False
        for tokens in token_sets:
            unique = tokens if isinstance(tokens, (set, frozenset)) else set(tokens)
            ids: list[int] = []
            extras: list[str] = []
            for token in unique:
                tid = id_of(token)
                if tid is None:
                    extras.append(token)
                else:
                    ids.append(tid)
            any_unknown = any_unknown or bool(extras)
            encoded.append((ids, extras))
        if not any_unknown:
            return self.score_many_ids([ids for ids, _ in encoded])
        self._ensure_columns()
        unknown = self._unknown_entry()
        max_discriminators = self.options.max_discriminators
        combine = self._combine
        results: list[float] = []
        for ids, extras in encoded:
            scored = [entry for entry in self._entries(ids) if entry is not None]
            if extras and unknown is not None:
                neg_strength, prob = unknown
                scored.extend((neg_strength, token, prob) for token in extras)
            scored.sort()
            results.append(combine([entry[2] for entry in scored[:max_discriminators]]))
        return results

    def score_workspace(self, workspace) -> list[float]:
        """Score a fixed evaluation batch carried by a scoring workspace.

        ``workspace`` is a
        :class:`repro.spambayes.ndkernel.ScoringWorkspace` (duck-typed
        here — only its ``rows`` are read, so the pure kernel needs no
        NumPy).  The base implementation simply bulk-scores the rows;
        :class:`~repro.spambayes.ndkernel.NDClassifier` overrides it to
        reuse the workspace's cached CSR encoding, rank gather and
        scratch buffers.  Either way the floats are exactly
        ``score_many_ids(workspace.rows)`` — callers that evaluate the
        same held-out set every tick stay kernel-agnostic.
        """
        return self.score_many_ids(workspace.rows)

    def score_many_ids(self, id_arrays: Iterable[Sequence[int]]) -> list[float]:
        """The columnar bulk-scoring kernel over pre-encoded messages.

        Each element of ``id_arrays`` is a duplicate-free ID sequence
        from this classifier's :attr:`table`.  Three memo layers, all
        invalidated as a whole by any training call:

        * the flat significance memo — a token recurring across the
          batch (fold evaluation: the whole corpus vocabulary recurs)
          pays for its strength test and sort entry once, and repeats
          are served by a C-level ``map`` over the ID array with zero
          per-token bytecode;
        * a message-level score memo keyed by the encoded array object,
          so re-evaluating the same messages against unchanged state
          (one fold under several threshold fits, RONI baselines)
          costs a dict probe per message.

        Scores are bit-identical to per-message :meth:`score`.
        """
        opts = self.options
        minimum = opts.minimum_prob_strength
        max_discriminators = opts.max_discriminators
        combine = self._combine
        self._ensure_columns()
        memo = self._memo_list()
        memo_get = memo.__getitem__
        score_memo = self._score_memo
        if score_memo is None:
            score_memo = self._score_memo = {}
        score_memo_get = score_memo.get
        # The f(w) arithmetic is inlined below (identical expressions,
        # identical floats, same as _prob_for_id) to drop ~1M
        # function-call dispatches per fold sweep.  Subclasses that
        # override _prob_for_id (Graham mode) keep their own formula
        # via the hook path.
        inline_prob = type(self)._prob_for_id is Classifier._prob_for_id
        spam_col = self._spam
        ham_col = self._ham
        table = self._table
        unknown = opts.unknown_word_prob
        strength_s = opts.unknown_word_strength
        nspam = self._nspam
        nham = self._nham
        results: list[float] = []
        for ids in id_arrays:
            cached = score_memo_get(id(ids))
            if cached is not None and cached[0] is ids:
                results.append(cached[1])
                continue
            entries = list(map(memo_get, ids))
            if _MISSING in entries:
                for index, tid in enumerate(ids):
                    if entries[index] is not _MISSING:
                        continue
                    if inline_prob:
                        spamcount = spam_col[tid]
                        hamcount = ham_col[tid]
                        n = spamcount + hamcount
                        if n == 0:
                            prob = unknown
                        else:
                            if nspam == 0 and nham == 0:
                                ps = unknown
                            else:
                                spam_ratio = spamcount / nspam if nspam else 0.0
                                ham_ratio = hamcount / nham if nham else 0.0
                                denominator = spam_ratio + ham_ratio
                                ps = unknown if denominator == 0.0 else spam_ratio / denominator
                            prob = (strength_s * unknown + n * ps) / (strength_s + n)
                    else:
                        prob = self._prob_for_id(tid)
                    strength = abs(prob - 0.5)
                    if strength >= minimum:
                        entry = (-strength, table.token(tid), prob)
                    else:
                        entry = None
                    memo[tid] = entry
                    entries[index] = entry
            # Sorting the tuples *without* a key function gives exactly
            # the significant_tokens() order: strength descending, token
            # text ascending (tokens are unique, so the prob element
            # never participates in a comparison).
            scored = list(filter(None, entries))
            scored.sort()
            score = combine([entry[2] for entry in scored[:max_discriminators]])
            results.append(score)
            if type(ids) is array:
                # Only persistent encoded arrays are worth remembering:
                # ad-hoc lists from the string path would pin dead keys.
                score_memo[id(ids)] = (ids, score)
        return results

    def score_with_evidence(self, tokens: Iterable[str]) -> tuple[float, list[TokenScore]]:
        """Return ``(I(E), δ(E) evidence)`` — used by analysis & defenses."""
        evidence = self.significant_tokens(tokens)
        return self._combine([ts.spam_prob for ts in evidence]), evidence

    @staticmethod
    def _combine(probs: Sequence[float]) -> float:
        # Fused, bit-exact form of fisher_combine(probs) vs
        # fisher_combine([1-p]); see _fisher_message_score.
        return _fisher_message_score(probs)

    # ------------------------------------------------------------------
    # Copying / pickling
    # ------------------------------------------------------------------

    def copy(self) -> "Classifier":
        """Deep copy of the training state.

        Options are shared (immutable) and so is the interning table
        (append-only): the copy's columns are independent, its IDs are
        the same.
        """
        clone = self.__class__(self.options, table=self._table)
        clone._nspam = self._nspam
        clone._nham = self._nham
        clone._spam = array(TOKEN_ID_TYPECODE, self._spam)
        clone._ham = array(TOKEN_ID_TYPECODE, self._ham)
        clone._adopt_columns()
        clone._active = self._active
        return clone

    def _adopt_columns(self) -> None:
        """Rebind the column store around the current ``_spam``/``_ham``.

        Copies and unpickled classifiers hold plain in-memory arrays
        regardless of where the original's counts lived; this re-wraps
        them so future column growth goes through a matching store.
        """
        from repro.storage.memory import MemoryCountColumns

        self._columns = MemoryCountColumns(self._spam, self._ham)

    def _export_column(self, column):
        """A picklable stand-in for one count column.

        In-memory columns are shipped as-is (byte-identical pickles to
        the pre-storage-layer format); backend views are materialized
        into plain arrays.
        """
        if type(column) is array:
            return column
        return array(TOKEN_ID_TYPECODE, column)

    def __getstate__(self) -> dict:
        # Memos are cheap to rebuild and snapshots are owner-bound, so
        # neither crosses a process boundary.  The table rides along:
        # within one pickle (e.g. a sweep context holding both the
        # model and encoded datasets) object identity is preserved, so
        # shared tables stay shared on the other side.
        if self._snapshot is not None:
            raise TrainingError("cannot pickle a classifier while a snapshot is active")
        return {
            "options": self.options,
            "table": self._table,
            "spam": self._export_column(self._spam),
            "ham": self._export_column(self._ham),
            "nspam": self._nspam,
            "nham": self._nham,
            "active": self._active,
        }

    def __setstate__(self, state: dict) -> None:
        self.options = state["options"]
        self._table = state["table"]
        self._spam = state["spam"]
        self._ham = state["ham"]
        self._adopt_columns()
        self._nspam = state["nspam"]
        self._nham = state["nham"]
        self._active = state["active"]
        self._memo = None
        self._memo_tag = None
        self._dirty = []
        self._score_memo = None
        self._snapshot = None

    def __repr__(self) -> str:
        return (
            f"Classifier(nspam={self._nspam}, nham={self._nham}, "
            f"vocabulary={self._active})"
        )
