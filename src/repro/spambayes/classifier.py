"""The SpamBayes learner: Robinson scores + Fisher's chi-square method.

This is the algorithm of Section 2.3 of the paper, the component every
attack in Sections 3-4 manipulates.

Training statistics
    For each token ``w`` the classifier tracks ``NS(w)`` / ``NH(w)``
    (spam / ham training messages containing ``w``) alongside the global
    ``NS`` / ``NH`` message counts.

Token score (Equations 1-2)
    The raw score ``PS(w) = NH*NS(w) / (NH*NS(w) + NS*NH(w))`` is the
    class-size-normalized probability that a message containing ``w``
    is spam.  It is smoothed toward the prior ``x`` with strength ``s``:
    ``f(w) = (s*x + N(w)*PS(w)) / (s + N(w))``.

Message score (Equations 3-4)
    The most significant tokens δ(E) (at most 150, each with
    ``|f - 0.5| >= 0.1``) are combined with Fisher's method into
    ``I(E) = (1 + H(E) - S(E)) / 2``, a score in ``[0, 1]`` where 0 is
    maximally hammy and 1 maximally spammy.

Both :meth:`Classifier.learn` and :meth:`Classifier.unlearn` are
incremental, which the experiment harness leans on heavily: a fold's
clean model is trained once and attack batches are layered on top, and
the RONI defense trains/untrains candidate messages in place.

Snapshot / restore (:meth:`Classifier.snapshot`,
:meth:`Classifier.restore`)
    A copy-on-write checkpoint of the training state.  ``snapshot()``
    is O(1): it arms a write-ahead log, and subsequent learn/unlearn
    calls save each touched token's original counts the *first* time
    they touch it.  ``restore()`` replays the log, returning the
    classifier to the exact snapshotted state (integer counts, so the
    round-trip is bit-exact).  This is what lets the sweep engine keep
    ONE shared clean model per inbox and derive every fold's classifier
    from it — unlearn the held-out stripe, layer attack batches, score,
    restore — instead of retraining K times per attack variant.  One
    snapshot may be active at a time; restoring deactivates it.

Bulk scoring (:meth:`Classifier.score_many`)
    Scores a sequence of token sets in one pass, sharing a per-call
    significance memo (token -> (strength, f(w)) or "not significant")
    across messages on top of the per-token probability cache.  Scores
    are exactly what per-message :meth:`Classifier.score` returns; the
    batched path only avoids recomputing the strength filter for
    tokens that recur across a held-out fold.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple, Sequence

from repro.errors import TrainingError
from repro.spambayes.chi2 import fisher_combine
from repro.spambayes.options import ClassifierOptions, DEFAULT_OPTIONS
from repro.spambayes.wordinfo import WordInfo

__all__ = ["Classifier", "ClassifierSnapshot", "TokenScore"]


class TokenScore(NamedTuple):
    """One token's contribution to a message score (evidence record)."""

    token: str
    spam_prob: float


class ClassifierSnapshot:
    """Opaque copy-on-write checkpoint of a :class:`Classifier`.

    Created by :meth:`Classifier.snapshot`; consumed (once) by
    :meth:`Classifier.restore`.  Holds the global message counts plus a
    write-ahead log of original :class:`WordInfo` records, populated
    lazily as training calls touch tokens.
    """

    __slots__ = ("owner", "nspam", "nham", "log", "active")

    def __init__(self, owner: "Classifier", nspam: int, nham: int) -> None:
        self.owner = owner
        self.nspam = nspam
        self.nham = nham
        # token -> original WordInfo copy, or None if the token was
        # absent when the snapshot was taken.
        self.log: dict[str, WordInfo | None] = {}
        self.active = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "active" if self.active else "restored"
        return f"ClassifierSnapshot({state}, touched={len(self.log)})"


class Classifier:
    """Incremental SpamBayes token classifier.

    The classifier works on *token streams*; pair it with a
    :class:`~repro.spambayes.tokenizer.Tokenizer` (or use the
    :class:`~repro.spambayes.filter.SpamFilter` facade) to classify
    :class:`~repro.spambayes.message.Email` objects.

    Token presence is what counts: duplicate tokens within one message
    are collapsed before the statistics are updated or scored.
    """

    def __init__(self, options: ClassifierOptions = DEFAULT_OPTIONS) -> None:
        self.options = options
        self._wordinfo: dict[str, WordInfo] = {}
        self._nspam = 0
        self._nham = 0
        self._prob_cache: dict[str, float] = {}
        self._snapshot: ClassifierSnapshot | None = None

    # ------------------------------------------------------------------
    # Training state
    # ------------------------------------------------------------------

    @property
    def nspam(self) -> int:
        """NS: number of spam messages trained."""
        return self._nspam

    @property
    def nham(self) -> int:
        """NH: number of ham messages trained."""
        return self._nham

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct tokens with non-zero training counts."""
        return len(self._wordinfo)

    def word_info(self, token: str) -> WordInfo | None:
        """Return the (spamcount, hamcount) record for ``token``, if any."""
        return self._wordinfo.get(token)

    def iter_vocabulary(self) -> Iterable[str]:
        return iter(self._wordinfo)

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------

    def learn(self, tokens: Iterable[str], is_spam: bool) -> None:
        """Add one training message (given as its token stream).

        Duplicate tokens are collapsed; every distinct token's class
        count is incremented along with the global message count.
        """
        unique = tokens if isinstance(tokens, (set, frozenset)) else set(tokens)
        if is_spam:
            self._nspam += 1
        else:
            self._nham += 1
        wordinfo = self._wordinfo
        log = None if self._snapshot is None else self._snapshot.log
        if is_spam:
            for token in unique:
                record = wordinfo.get(token)
                if log is not None and token not in log:
                    log[token] = None if record is None else record.copy()
                if record is None:
                    record = wordinfo[token] = WordInfo()
                record.spamcount += 1
        else:
            for token in unique:
                record = wordinfo.get(token)
                if log is not None and token not in log:
                    log[token] = None if record is None else record.copy()
                if record is None:
                    record = wordinfo[token] = WordInfo()
                record.hamcount += 1
        # Global counts changed, so every cached f(w) is stale.
        self._prob_cache.clear()

    def unlearn(self, tokens: Iterable[str], is_spam: bool) -> None:
        """Remove a previously learned message.

        Raises :class:`TrainingError` if the message cannot have been
        learned with these tokens/label (a count would go negative) —
        silently clamping would corrupt every future score.  The check
        is performed *before* any count is touched, so a failed unlearn
        leaves the classifier unchanged.
        """
        unique = tokens if isinstance(tokens, (set, frozenset)) else set(tokens)
        if is_spam:
            if self._nspam < 1:
                raise TrainingError("unlearn(spam) with no spam trained")
        else:
            if self._nham < 1:
                raise TrainingError("unlearn(ham) with no ham trained")
        wordinfo = self._wordinfo
        for token in unique:
            record = wordinfo.get(token)
            count = 0 if record is None else (record.spamcount if is_spam else record.hamcount)
            if count < 1:
                raise TrainingError(
                    f"unlearn would drive count of token {token!r} negative; "
                    "message was not learned with this label"
                )
        log = None if self._snapshot is None else self._snapshot.log
        if is_spam:
            self._nspam -= 1
            for token in unique:
                record = wordinfo[token]
                if log is not None and token not in log:
                    log[token] = record.copy()
                record.spamcount -= 1
                if record.is_empty():
                    del wordinfo[token]
        else:
            self._nham -= 1
            for token in unique:
                record = wordinfo[token]
                if log is not None and token not in log:
                    log[token] = record.copy()
                record.hamcount -= 1
                if record.is_empty():
                    del wordinfo[token]
        self._prob_cache.clear()

    def learn_many(self, token_sets: Iterable[Iterable[str]], is_spam: bool) -> int:
        """Learn a batch of messages with a single label; returns count."""
        learned = 0
        for tokens in token_sets:
            self.learn(tokens, is_spam)
            learned += 1
        return learned

    def learn_repeated(self, tokens: Iterable[str], is_spam: bool, count: int) -> None:
        """Learn ``count`` identical copies of one message in one pass.

        Dictionary attacks inject thousands of messages sharing one huge
        token set; folding the repetition into a single sweep over the
        tokens turns an O(count * |tokens|) update into O(|tokens|).
        The resulting state is exactly what ``count`` calls to
        :meth:`learn` would produce.
        """
        if count < 0:
            raise TrainingError(f"learn_repeated needs count >= 0, got {count}")
        if count == 0:
            return
        unique = tokens if isinstance(tokens, (set, frozenset)) else set(tokens)
        if is_spam:
            self._nspam += count
        else:
            self._nham += count
        wordinfo = self._wordinfo
        log = None if self._snapshot is None else self._snapshot.log
        for token in unique:
            record = wordinfo.get(token)
            if log is not None and token not in log:
                log[token] = None if record is None else record.copy()
            if record is None:
                record = wordinfo[token] = WordInfo()
            if is_spam:
                record.spamcount += count
            else:
                record.hamcount += count
        self._prob_cache.clear()

    def unlearn_repeated(self, tokens: Iterable[str], is_spam: bool, count: int) -> None:
        """Reverse :meth:`learn_repeated` with the same arguments.

        Validates before mutating, like :meth:`unlearn`.
        """
        if count < 0:
            raise TrainingError(f"unlearn_repeated needs count >= 0, got {count}")
        if count == 0:
            return
        unique = tokens if isinstance(tokens, (set, frozenset)) else set(tokens)
        if is_spam and self._nspam < count:
            raise TrainingError(f"unlearn_repeated(spam, {count}) with only {self._nspam} trained")
        if not is_spam and self._nham < count:
            raise TrainingError(f"unlearn_repeated(ham, {count}) with only {self._nham} trained")
        wordinfo = self._wordinfo
        for token in unique:
            record = wordinfo.get(token)
            current = 0 if record is None else (record.spamcount if is_spam else record.hamcount)
            if current < count:
                raise TrainingError(
                    f"unlearn_repeated would drive count of token {token!r} negative"
                )
        if is_spam:
            self._nspam -= count
        else:
            self._nham -= count
        log = None if self._snapshot is None else self._snapshot.log
        for token in unique:
            record = wordinfo[token]
            if log is not None and token not in log:
                log[token] = record.copy()
            if is_spam:
                record.spamcount -= count
            else:
                record.hamcount -= count
            if record.is_empty():
                del wordinfo[token]
        self._prob_cache.clear()

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------

    @property
    def snapshot_active(self) -> bool:
        """True while a snapshot is armed and not yet restored."""
        return self._snapshot is not None

    def snapshot(self) -> ClassifierSnapshot:
        """Arm a copy-on-write checkpoint of the current training state.

        O(1) now; subsequent learn/unlearn calls pay one extra dict
        probe per *newly touched* token to save its original counts.
        Only one snapshot may be active at a time — layered checkpoints
        would need a log per level, and no caller has wanted one.
        """
        if self._snapshot is not None:
            raise TrainingError("a snapshot is already active; restore it first")
        snap = ClassifierSnapshot(self, self._nspam, self._nham)
        self._snapshot = snap
        return snap

    def restore(self, snap: ClassifierSnapshot) -> None:
        """Return to the exact state captured by :meth:`snapshot`.

        Counts are integers, so the round-trip is bit-exact: the
        restored classifier scores every message identically to the
        moment the snapshot was taken.  The snapshot is single-use.
        """
        if snap.owner is not self:
            raise TrainingError("snapshot belongs to a different classifier")
        if not snap.active or self._snapshot is not snap:
            raise TrainingError("snapshot is not active on this classifier")
        wordinfo = self._wordinfo
        for token, original in snap.log.items():
            if original is None:
                wordinfo.pop(token, None)
            else:
                wordinfo[token] = original
        self._nspam = snap.nspam
        self._nham = snap.nham
        snap.active = False
        self._snapshot = None
        self._prob_cache.clear()

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def raw_spam_score(self, token: str) -> float:
        """PS(w) of Equation 1; the prior ``x`` for unseen tokens."""
        record = self._wordinfo.get(token)
        if record is None or record.total == 0:
            return self.options.unknown_word_prob
        return self._raw_score(record)

    def spam_prob(self, token: str) -> float:
        """f(w) of Equation 2: smoothed token spam score in [0, 1]."""
        cached = self._prob_cache.get(token)
        if cached is not None:
            return cached
        record = self._wordinfo.get(token)
        opts = self.options
        if record is None or record.total == 0:
            prob = opts.unknown_word_prob
        else:
            n = record.total
            ps = self._raw_score(record)
            s = opts.unknown_word_strength
            prob = (s * opts.unknown_word_prob + n * ps) / (s + n)
        self._prob_cache[token] = prob
        return prob

    def _raw_score(self, record: WordInfo) -> float:
        # Degenerate corpora: with no ham trained, any occurrence is pure
        # spam evidence (and vice versa). SpamBayes normalizes by class
        # sizes, which this limit preserves.
        nham = self._nham
        nspam = self._nspam
        if nspam == 0 and nham == 0:
            return self.options.unknown_word_prob
        spam_ratio = record.spamcount / nspam if nspam else 0.0
        ham_ratio = record.hamcount / nham if nham else 0.0
        denominator = spam_ratio + ham_ratio
        if denominator == 0.0:
            return self.options.unknown_word_prob
        return spam_ratio / denominator

    def significant_tokens(self, tokens: Iterable[str]) -> list[TokenScore]:
        """δ(E): the strongest discriminators among ``tokens``.

        At most ``max_discriminators`` distinct tokens whose score lies
        at least ``minimum_prob_strength`` away from 0.5, strongest
        first.  Ties are broken by token text so results are
        deterministic across runs and platforms.
        """
        opts = self.options
        minimum = opts.minimum_prob_strength
        scored = []
        for token in set(tokens):
            prob = self.spam_prob(token)
            strength = abs(prob - 0.5)
            if strength >= minimum:
                scored.append((strength, token, prob))
        scored.sort(key=lambda item: (-item[0], item[1]))
        return [TokenScore(token, prob) for _, token, prob in scored[: opts.max_discriminators]]

    def score(self, tokens: Iterable[str]) -> float:
        """I(E) of Equation 3 for a message given as its token stream."""
        return self._combine([ts.spam_prob for ts in self.significant_tokens(tokens)])

    def score_many(self, token_sets: Iterable[Iterable[str]]) -> list[float]:
        """I(E) for a batch of messages in one pass.

        Returns exactly ``[self.score(ts) for ts in token_sets]`` — the
        same sort, the same tie-breaks, the same floats — but shares a
        significance memo across the batch, so a token that recurs in
        many messages (fold evaluation: the whole corpus vocabulary
        recurs) pays for its strength test once per call instead of
        once per message.
        """
        opts = self.options
        minimum = opts.minimum_prob_strength
        max_discriminators = opts.max_discriminators
        combine = self._combine
        # Local bindings of the spam_prob inputs: the f(w) arithmetic is
        # inlined below (identical expressions, identical floats) to
        # drop ~1M attribute/function-call dispatches per fold sweep.
        # Subclasses that override spam_prob (Graham mode) keep their
        # own formula via the slow path.
        inline_prob = type(self).spam_prob is Classifier.spam_prob
        wordinfo = self._wordinfo
        prob_cache = self._prob_cache
        unknown = opts.unknown_word_prob
        strength_s = opts.unknown_word_strength
        nspam = self._nspam
        nham = self._nham
        # token -> sort-ready (-strength, token, prob) triple when
        # significant, None when not.  Sorting the triples *without* a
        # key function gives exactly the significant_tokens() order:
        # strength descending, token text ascending (tokens are unique,
        # so the prob element never participates in a comparison).
        memo: dict[str, tuple[float, str, float] | None] = {}
        missing = (0.0, "", 0.0)  # sentinel distinguishable from None
        results: list[float] = []
        for tokens in token_sets:
            unique = tokens if isinstance(tokens, (set, frozenset)) else set(tokens)
            scored = []
            for token in unique:
                entry = memo.get(token, missing)
                if entry is missing:
                    if not inline_prob:
                        prob = self.spam_prob(token)
                    else:
                        prob = prob_cache.get(token)
                        if prob is None:
                            record = wordinfo.get(token)
                            if record is None or record.total == 0:
                                prob = unknown
                            else:
                                n = record.total
                                if nspam == 0 and nham == 0:
                                    ps = unknown
                                else:
                                    spam_ratio = record.spamcount / nspam if nspam else 0.0
                                    ham_ratio = record.hamcount / nham if nham else 0.0
                                    denominator = spam_ratio + ham_ratio
                                    ps = unknown if denominator == 0.0 else spam_ratio / denominator
                                prob = (strength_s * unknown + n * ps) / (strength_s + n)
                            prob_cache[token] = prob
                    strength = abs(prob - 0.5)
                    entry = (-strength, token, prob) if strength >= minimum else None
                    memo[token] = entry
                if entry is not None:
                    scored.append(entry)
            scored.sort()
            results.append(combine([item[2] for item in scored[:max_discriminators]]))
        return results

    def score_with_evidence(self, tokens: Iterable[str]) -> tuple[float, list[TokenScore]]:
        """Return ``(I(E), δ(E) evidence)`` — used by analysis & defenses."""
        evidence = self.significant_tokens(tokens)
        return self._combine([ts.spam_prob for ts in evidence]), evidence

    @staticmethod
    def _combine(probs: Sequence[float]) -> float:
        if not probs:
            return 0.5
        spam_evidence = fisher_combine(probs)                      # H(E)
        ham_evidence = fisher_combine([1.0 - p for p in probs])    # S(E)
        return (1.0 + spam_evidence - ham_evidence) / 2.0

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------

    def copy(self) -> "Classifier":
        """Deep copy of the training state (options are shared, immutable)."""
        clone = Classifier(self.options)
        clone._nspam = self._nspam
        clone._nham = self._nham
        clone._wordinfo = {token: record.copy() for token, record in self._wordinfo.items()}
        return clone

    def __repr__(self) -> str:
        return (
            f"Classifier(nspam={self._nspam}, nham={self._nham}, "
            f"vocabulary={len(self._wordinfo)})"
        )
