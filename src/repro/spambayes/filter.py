"""The three-way spam filter: tokenizer + classifier + thresholds.

:class:`SpamFilter` is the facade most code should use.  It owns a
:class:`Tokenizer` and a :class:`Classifier` and applies the θ0/θ1
thresholding of Section 2.3: a message with score ``I(E)`` is labeled

* ``ham``    when ``I(E) <= θ0``  (default 0.15),
* ``unsure`` when ``θ0 < I(E) <= θ1``,
* ``spam``   when ``I(E) > θ1``   (default 0.9).

The *unsure* band is central to the paper's threat model: flooding it
is almost as damaging to the victim as outright false positives
(Section 2.1), which is why every experiment reports both
"ham-as-spam" and "ham-as-(spam-or-unsure)".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

from repro.spambayes.classifier import Classifier, TokenScore
from repro.spambayes.message import Email
from repro.spambayes.options import ClassifierOptions, DEFAULT_OPTIONS
from repro.spambayes.tokenizer import Tokenizer, DEFAULT_TOKENIZER

__all__ = ["Label", "ClassifiedMessage", "SpamFilter"]


class Label(enum.Enum):
    """The three SpamBayes verdicts."""

    HAM = "ham"
    UNSURE = "unsure"
    SPAM = "spam"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class ClassifiedMessage:
    """Outcome of classifying one message."""

    label: Label
    score: float
    evidence: tuple[TokenScore, ...] = ()

    @property
    def is_filtered(self) -> bool:
        """True when the message would leave the victim's inbox path.

        Interprets the common client policy from Section 2.1: spam and
        unsure are both diverted from the inbox the user actually reads.
        """
        return self.label is not Label.HAM


class SpamFilter:
    """End-to-end SpamBayes filter over :class:`Email` objects."""

    def __init__(
        self,
        options: ClassifierOptions = DEFAULT_OPTIONS,
        tokenizer: Tokenizer = DEFAULT_TOKENIZER,
        classifier: Classifier | None = None,
    ) -> None:
        self.tokenizer = tokenizer
        self.classifier = classifier if classifier is not None else Classifier(options)

    # ------------------------------------------------------------------
    # Options / thresholds
    # ------------------------------------------------------------------

    @property
    def options(self) -> ClassifierOptions:
        return self.classifier.options

    @property
    def ham_cutoff(self) -> float:
        return self.classifier.options.ham_cutoff

    @property
    def spam_cutoff(self) -> float:
        return self.classifier.options.spam_cutoff

    def set_thresholds(self, ham_cutoff: float, spam_cutoff: float) -> None:
        """Replace θ0/θ1 without touching learned state.

        This is the mechanism of the dynamic threshold defense
        (Section 5.2): learning stays intact, only decisions move.
        """
        self.classifier.options = self.classifier.options.with_cutoffs(
            ham_cutoff, spam_cutoff
        )

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def train(self, email: Email, is_spam: bool) -> None:
        """Tokenize and learn one message."""
        self.classifier.learn(self.tokenizer.tokenize(email), is_spam)

    def train_many(self, emails: Iterable[Email], is_spam: bool) -> int:
        """Train a batch of same-label messages; returns how many."""
        count = 0
        for email in emails:
            self.train(email, is_spam)
            count += 1
        return count

    def untrain(self, email: Email, is_spam: bool) -> None:
        """Reverse a previous :meth:`train` of the same message/label."""
        self.classifier.unlearn(self.tokenizer.tokenize(email), is_spam)

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    def score(self, email: Email) -> float:
        """I(E) for ``email`` without thresholding."""
        return self.classifier.score(self.tokenizer.tokenize(email))

    def classify(self, email: Email, with_evidence: bool = False) -> ClassifiedMessage:
        """Classify ``email`` into ham/unsure/spam."""
        tokens = self.tokenizer.tokenize(email)
        if with_evidence:
            score, evidence = self.classifier.score_with_evidence(tokens)
            return ClassifiedMessage(self.label_for_score(score), score, tuple(evidence))
        score = self.classifier.score(tokens)
        return ClassifiedMessage(self.label_for_score(score), score)

    def classify_tokens(self, tokens: Iterable[str]) -> ClassifiedMessage:
        """Classify a pre-tokenized message (hot path for experiments)."""
        score = self.classifier.score(tokens)
        return ClassifiedMessage(self.label_for_score(score), score)

    def label_for_score(self, score: float) -> Label:
        """Apply the θ0/θ1 thresholds to a raw score."""
        opts = self.classifier.options
        if score <= opts.ham_cutoff:
            return Label.HAM
        if score <= opts.spam_cutoff:
            return Label.UNSURE
        return Label.SPAM

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------

    def copy(self) -> "SpamFilter":
        """Independent copy sharing the (stateless) tokenizer."""
        return SpamFilter(tokenizer=self.tokenizer, classifier=self.classifier.copy())

    def __repr__(self) -> str:
        return f"SpamFilter({self.classifier!r})"
