"""Graham's original combining scheme ("A Plan for Spam", 2002).

Section 2.3 notes that SpamBayes' Robinson/Fisher scoring is "based on
ideas by Graham".  Early SpamBayes (and Paul Graham's own filter)
scored messages quite differently:

* token probability with asymmetric counting — ham occurrences count
  double (Graham's bias against false positives) — and hard clamping
  into [0.01, 0.99]; unknown tokens get 0.4;
* message score as a naive-Bayes odds product over only the **15**
  most extreme tokens:  ``P = prod(p) / (prod(p) + prod(1-p))``.

Having both combiners share one training state lets the ablation bench
ask a question the paper leaves open: is the attack an artifact of
Fisher-style combining, or does it break Graham-style filters just as
hard?  (It breaks both — the poisoned quantity is the per-token
statistic both schemes consume.)

:class:`GrahamClassifier` is a drop-in :class:`Classifier` subclass:
same learn/unlearn, same persistence, same interned-ID count columns,
different scoring.  It overrides exactly two hooks — the per-ID token
probability (:meth:`Classifier._prob_for_id`) and the combiner — so it
inherits the columnar bulk kernel, the flat memo and the snapshot WAL
unchanged.
"""

from __future__ import annotations

from repro.spambayes.chi2 import ln_product
from repro.spambayes.classifier import Classifier
from repro.spambayes.options import ClassifierOptions
from repro.spambayes.token_table import TokenTable

__all__ = ["GRAHAM_OPTIONS", "GrahamClassifier"]

import math

GRAHAM_OPTIONS = ClassifierOptions(
    unknown_word_prob=0.4,
    unknown_word_strength=0.0,
    minimum_prob_strength=0.0,
    max_discriminators=15,
    ham_cutoff=0.15,
    spam_cutoff=0.90,
)
"""Graham's constants: 0.4 for unknowns, 15 discriminators, no
Robinson smoothing (the clamps do that job)."""

_CLAMP_LOW = 0.01
_CLAMP_HIGH = 0.99


class GrahamClassifier(Classifier):
    """The 2002-vintage scoring rule over the same token statistics."""

    def __init__(
        self,
        options: ClassifierOptions = GRAHAM_OPTIONS,
        table: TokenTable | None = None,
    ) -> None:
        super().__init__(options, table=table)

    def _prob_for_id(self, token_id: int) -> float:
        """Graham's token probability with double-counted ham.

        ``p = (b/nbad) / (b/nbad + 2g/ngood)`` clamped to
        ``[0.01, 0.99]``; tokens seen fewer than GRAHAM-minimum times
        overall (fewer than 1 here — Graham used 5 in production, but
        the paper-era SpamBayes port used 1) fall back to 0.4.
        """
        spamcount = self._spam[token_id]
        hamcount = self._ham[token_id]
        nspam = self._nspam
        nham = self._nham
        if (spamcount == 0 and hamcount == 0) or (nspam == 0 and nham == 0):
            return self.options.unknown_word_prob
        bad_ratio = spamcount / nspam if nspam else 0.0
        good_ratio = (2.0 * hamcount) / nham if nham else 0.0
        denominator = bad_ratio + good_ratio
        if denominator == 0.0:
            return self.options.unknown_word_prob
        prob = bad_ratio / denominator
        return max(_CLAMP_LOW, min(_CLAMP_HIGH, prob))

    @staticmethod
    def _combine(probs) -> float:
        """Naive-Bayes odds product, computed in log space.

        ``prod(p)`` underflows for long clue lists, so compare
        ``sum(ln p)`` against ``sum(ln (1-p))`` and convert back
        through the logistic form.
        """
        if not probs:
            return 0.5
        log_spam = ln_product(probs)
        log_ham = ln_product([1.0 - p for p in probs])
        # P = e^s / (e^s + e^h) = 1 / (1 + e^(h - s))
        difference = log_ham - log_spam
        if difference > 700.0:
            return 0.0
        if difference < -700.0:
            return 1.0
        return 1.0 / (1.0 + math.exp(difference))
