"""Graham's original combining scheme ("A Plan for Spam", 2002).

Section 2.3 notes that SpamBayes' Robinson/Fisher scoring is "based on
ideas by Graham".  Early SpamBayes (and Paul Graham's own filter)
scored messages quite differently:

* token probability with asymmetric counting — ham occurrences count
  double (Graham's bias against false positives) — and hard clamping
  into [0.01, 0.99]; unknown tokens get 0.4;
* message score as a naive-Bayes odds product over only the **15**
  most extreme tokens:  ``P = prod(p) / (prod(p) + prod(1-p))``.

Having both combiners share one training state lets the ablation bench
ask a question the paper leaves open: is the attack an artifact of
Fisher-style combining, or does it break Graham-style filters just as
hard?  (It breaks both — the poisoned quantity is the per-token
statistic both schemes consume.)

:class:`GrahamClassifier` is a drop-in :class:`Classifier` subclass:
same learn/unlearn, same persistence, different scoring.
"""

from __future__ import annotations

from repro.spambayes.chi2 import ln_product
from repro.spambayes.classifier import Classifier
from repro.spambayes.options import ClassifierOptions

__all__ = ["GRAHAM_OPTIONS", "GrahamClassifier"]

import math

GRAHAM_OPTIONS = ClassifierOptions(
    unknown_word_prob=0.4,
    unknown_word_strength=0.0,
    minimum_prob_strength=0.0,
    max_discriminators=15,
    ham_cutoff=0.15,
    spam_cutoff=0.90,
)
"""Graham's constants: 0.4 for unknowns, 15 discriminators, no
Robinson smoothing (the clamps do that job)."""

_CLAMP_LOW = 0.01
_CLAMP_HIGH = 0.99


class GrahamClassifier(Classifier):
    """The 2002-vintage scoring rule over the same token statistics."""

    def __init__(self, options: ClassifierOptions = GRAHAM_OPTIONS) -> None:
        super().__init__(options)

    def spam_prob(self, token: str) -> float:
        """Graham's token probability with double-counted ham.

        ``p = (b/nbad) / (b/nbad + 2g/ngood)`` clamped to
        ``[0.01, 0.99]``; tokens seen fewer than GRAHAM-minimum times
        overall (fewer than 1 here — Graham used 5 in production, but
        the paper-era SpamBayes port used 1) fall back to 0.4.
        """
        cached = self._prob_cache.get(token)
        if cached is not None:
            return cached
        record = self._wordinfo.get(token)
        if record is None or record.total == 0 or (self._nspam == 0 and self._nham == 0):
            prob = self.options.unknown_word_prob
        else:
            bad_ratio = record.spamcount / self._nspam if self._nspam else 0.0
            good_ratio = (2.0 * record.hamcount) / self._nham if self._nham else 0.0
            denominator = bad_ratio + good_ratio
            if denominator == 0.0:
                prob = self.options.unknown_word_prob
            else:
                prob = bad_ratio / denominator
                prob = max(_CLAMP_LOW, min(_CLAMP_HIGH, prob))
        self._prob_cache[token] = prob
        return prob

    @staticmethod
    def _combine(probs) -> float:
        """Naive-Bayes odds product, computed in log space.

        ``prod(p)`` underflows for long clue lists, so compare
        ``sum(ln p)`` against ``sum(ln (1-p))`` and convert back
        through the logistic form.
        """
        if not probs:
            return 0.5
        log_spam = ln_product(probs)
        log_ham = ln_product([1.0 - p for p in probs])
        # P = e^s / (e^s + e^h) = 1 / (1 + e^(h - s))
        difference = log_ham - log_spam
        if difference > 700.0:
            return 0.0
        if difference < -700.0:
            return 1.0
        return 1.0 / (1.0 + math.exp(difference))

    def copy(self) -> "GrahamClassifier":
        clone = GrahamClassifier(self.options)
        clone._nspam = self._nspam
        clone._nham = self._nham
        clone._wordinfo = {token: record.copy() for token, record in self._wordinfo.items()}
        return clone
