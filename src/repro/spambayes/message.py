"""A lightweight email message model.

The corpus generator, the attacks, and the filter all exchange
:class:`Email` objects.  The model is deliberately RFC-822-*lite*: an
ordered multimap of headers plus a plain-text body.  That is all the
SpamBayes learner ever looks at — MIME structure is flattened by the
TREC corpus preparation step in the paper, and our synthetic corpus
generates flat text to begin with.

Parsing (:meth:`Email.from_text`) accepts the classic wire format:
header lines ``Name: value`` with RFC-822 continuation lines (leading
whitespace), a blank separator line, then the body verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.errors import MessageParseError

__all__ = ["Email"]

_HEADER_SEPARATOR = ":"


@dataclass(slots=True)
class Email:
    """An email as the filter sees it: ordered headers plus body text.

    ``headers`` is a sequence of ``(name, value)`` pairs.  Duplicate
    header names are legal (``Received`` appears many times in real
    mail) and order is preserved — both matter to the tokenizer, which
    emits header tokens with per-name prefixes.

    ``msgid`` is a corpus-level identity used to track messages through
    folds, attacks and defenses.  It is *not* the RFC-822 Message-ID
    header (although the generator often sets both to related values).
    """

    body: str
    headers: list[tuple[str, str]] = field(default_factory=list)
    msgid: str = ""

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_text(cls, text: str, msgid: str = "") -> "Email":
        """Parse wire-format text into an :class:`Email`.

        Headers run until the first blank line; a line starting with
        whitespace continues the previous header value.  Text with no
        blank line at all is treated as headerless body only if it also
        contains no parseable header — otherwise it is headers with an
        empty body.
        """
        lines = text.split("\n")
        headers: list[tuple[str, str]] = []
        body_start = len(lines)
        for index, line in enumerate(lines):
            if line == "":
                body_start = index + 1
                break
            if line[0] in " \t":
                if not headers:
                    raise MessageParseError(
                        f"continuation line before any header: {line!r}"
                    )
                name, value = headers[-1]
                headers[-1] = (name, value + " " + line.strip())
                continue
            name, sep, value = line.partition(_HEADER_SEPARATOR)
            if not sep or not name or " " in name:
                # Not header-shaped: the whole text is a body.
                if headers:
                    raise MessageParseError(f"malformed header line: {line!r}")
                return cls(body=text, headers=[], msgid=msgid)
            headers.append((name.strip(), value.strip()))
        body = "\n".join(lines[body_start:])
        return cls(body=body, headers=headers, msgid=msgid)

    @classmethod
    def build(
        cls,
        body: str,
        msgid: str = "",
        subject: str | None = None,
        sender: str | None = None,
        recipient: str | None = None,
        extra_headers: Iterable[tuple[str, str]] = (),
    ) -> "Email":
        """Convenience constructor used by the corpus generator."""
        headers: list[tuple[str, str]] = []
        if sender is not None:
            headers.append(("From", sender))
        if recipient is not None:
            headers.append(("To", recipient))
        if subject is not None:
            headers.append(("Subject", subject))
        headers.extend(extra_headers)
        return cls(body=body, headers=headers, msgid=msgid)

    # ------------------------------------------------------------------
    # Header access
    # ------------------------------------------------------------------

    def get_header(self, name: str, default: str | None = None) -> str | None:
        """Return the first header value for ``name`` (case-insensitive)."""
        wanted = name.lower()
        for header_name, value in self.headers:
            if header_name.lower() == wanted:
                return value
        return default

    def get_all_headers(self, name: str) -> list[str]:
        """Return every value for ``name`` in order (case-insensitive)."""
        wanted = name.lower()
        return [value for header_name, value in self.headers if header_name.lower() == wanted]

    @property
    def subject(self) -> str:
        return self.get_header("Subject", "") or ""

    @property
    def sender(self) -> str:
        return self.get_header("From", "") or ""

    def iter_headers(self) -> Iterator[tuple[str, str]]:
        return iter(self.headers)

    def with_headers(self, headers: Sequence[tuple[str, str]]) -> "Email":
        """Return a copy of this email with ``headers`` replacing its own.

        The focused attack uses this to graft the header block of a real
        spam message onto an attack body (Section 4.1 of the paper).
        """
        return Email(body=self.body, headers=list(headers), msgid=self.msgid)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def as_text(self) -> str:
        """Render back to wire format (headers, blank line, body)."""
        rendered = [f"{name}: {value}" for name, value in self.headers]
        rendered.append("")
        rendered.append(self.body)
        return "\n".join(rendered)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.as_text()
