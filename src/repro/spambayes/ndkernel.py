"""Vectorized NumPy scoring core, bit-exact against the pure kernel.

:class:`NDClassifier` keeps the :class:`Classifier` contract — same
API, same floats, same exceptions — but moves the hot state onto
contiguous NumPy arrays:

* the per-token count columns become int64 ``ndarray`` columns with
  geometric over-allocation (so per-message interning stays amortized
  O(1), like ``array.frombytes`` was);
* the flat significance memo becomes a pair of arrays — ``prob[id]``
  (float64 token score) plus ``known[id]`` (bool validity) — with the
  same ``(nspam, nham)`` tag and dirty-ID eviction semantics the
  pure memo uses;
* ``score_many_ids`` becomes gather → log-prob accumulate → chi2
  survival over a whole batch, with no per-message Python loop.

Bit-exactness is a hard requirement (the differential suite asserts
``==`` on floats), and every vectorized expression is chosen so each
message sees the identical IEEE-754 operation sequence the pure core
executes:

* elementwise ``+ - * /`` between float64 arrays and Python scalars
  are the same correctly-rounded IEEE ops CPython performs (counts are
  far below 2**53, so int64→float64 conversion is exact);
* the combiner's sequential product with frexp renormalization is run
  column-by-column over a dense padded matrix.  Padding slots hold
  exactly ``1.0`` (in *both* the ``p`` and the ``1-p`` matrix — never
  ``1-1``), so a padded multiply is an exact no-op, and the invariant
  "post-step mantissa >= 1e-200" guarantees padding never triggers a
  spurious renormalization;
* transcendentals go through :func:`math.log` / :func:`math.exp` via
  ``np.frompyfunc`` — NumPy's SIMD ``np.log``/``np.exp`` may differ
  from libm in the last ulp, and only O(messages) calls are needed, so
  the exact scalar routines cost nothing;
* the ``(-strength, token text)`` tie-break is reproduced with
  :meth:`TokenTable.text_order_ranks` (ranks computed by Python's own
  ``sorted``) under a single ``np.lexsort``.

The pure-Python :class:`Classifier` stays untouched as the
differential oracle; kernel selection is explicit via
:func:`create_classifier` and the ``REPRO_KERNEL`` environment
variable (``nd`` | ``python`` | ``auto``).
"""

from __future__ import annotations

import math
import os
from array import array
from typing import Iterable, Sequence

try:  # pragma: no cover - exercised via the availability gates
    import numpy as np
except ImportError:  # pragma: no cover - numpy is in the baked image
    np = None  # type: ignore[assignment]

from repro.errors import ConfigurationError, TrainingError
from repro.spambayes.classifier import Classifier
from repro.spambayes.options import ClassifierOptions, DEFAULT_OPTIONS
from repro.spambayes.token_table import TOKEN_ID_TYPECODE, TokenTable
from repro.spambayes.wordinfo import WordInfo

__all__ = [
    "CsrMatrix",
    "NDClassifier",
    "ScoringWorkspace",
    "available",
    "classifier_class",
    "create_classifier",
    "kernel_name",
]

KERNEL_ENV = "REPRO_KERNEL"
"""Environment variable selecting the scoring kernel (nd/python/auto)."""

_LN2 = math.log(2.0)
_RENORM_THRESHOLD = 1e-200  # matches _fisher_message_score
_EXP_UNDERFLOW_LIMIT = 708.0  # matches chi2._EXP_UNDERFLOW_LIMIT

if np is not None:
    _ID_DTYPE = np.dtype(np.int64)
    # array('l') shares int64's layout on every platform we run on;
    # np.frombuffer then gives zero-copy views of encoded messages.
    _FAST_ARRAY_VIEW = array(TOKEN_ID_TYPECODE).itemsize == _ID_DTYPE.itemsize
    # Exact scalar transcendentals, vectorized at the Python level.
    # Only O(messages) elements pass through these per batch.
    _exact_log_u = np.frompyfunc(math.log, 1, 1)
    _exact_exp_u = np.frompyfunc(math.exp, 1, 1)


def available() -> bool:
    """True when the NumPy kernel can run in this interpreter."""
    return np is not None


def kernel_name() -> str:
    """Resolve the active kernel name from ``REPRO_KERNEL``.

    ``auto`` (or unset) picks ``nd`` when NumPy imports and ``python``
    otherwise; explicit ``nd`` with no NumPy is a configuration error
    rather than a silent downgrade.
    """
    value = os.environ.get(KERNEL_ENV, "auto").strip().lower() or "auto"
    if value == "auto":
        return "nd" if available() else "python"
    if value not in ("nd", "python"):
        raise ConfigurationError(
            f"{KERNEL_ENV} must be 'nd', 'python' or 'auto', got {value!r}"
        )
    if value == "nd" and not available():
        raise ConfigurationError(
            f"{KERNEL_ENV}=nd requested but numpy is not importable"
        )
    return value


def classifier_class() -> type[Classifier]:
    """The classifier class the active kernel maps to."""
    return NDClassifier if kernel_name() == "nd" else Classifier


def backend_columns():
    """A count-column store from the active storage backend.

    The ``kind`` matches the active kernel, so whichever classifier
    class :func:`create_classifier` builds gets columns it can index
    natively (NumPy int64 views for ``nd``, flat buffers for pure).
    """
    from repro import storage

    return storage.active_backend().count_columns(
        "nd" if kernel_name() == "nd" else "pure"
    )


def create_classifier(
    options: ClassifierOptions = DEFAULT_OPTIONS,
    table: TokenTable | None = None,
    columns=None,
) -> Classifier:
    """Build a classifier on the active kernel (the engine-wide hook).

    Every engine path that previously constructed ``Classifier(...)``
    directly goes through here, so one environment variable flips the
    whole system between the vectorized kernel and the pure oracle —
    and a second one (``REPRO_STORE``) decides where a *root*
    classifier's state lives: when no ``table`` is shared in, both the
    token table and the count columns come from the active storage
    backend.  Classifiers built over an existing table keep in-memory
    columns unless the caller passes a store explicitly (derived
    classifiers — RONI candidates, clean twins, fold copies — are
    ephemeral, so spilling them buys nothing).
    """
    cls = classifier_class()
    if table is None:
        from repro import storage

        backend = storage.active_backend()
        table = backend.new_token_table()
        if columns is None:
            columns = backend.count_columns("nd" if cls is NDClassifier else "pure")
    return cls(options, table=table, columns=columns)


def _as_id_index(ids: Sequence[int]) -> "np.ndarray":
    """An int64 index view/copy of one encoded message."""
    if type(ids) is array and _FAST_ARRAY_VIEW:
        return np.frombuffer(ids, dtype=_ID_DTYPE)
    if isinstance(ids, np.ndarray):
        return np.ascontiguousarray(ids, dtype=_ID_DTYPE)
    return np.asarray(ids, dtype=_ID_DTYPE)


class CsrMatrix:
    """A corpus of encoded messages as one contiguous CSR pair.

    ``indices`` concatenates every message's sorted token-ID array;
    ``indptr[i]:indptr[i+1]`` delimits message ``i``.  Rows come back
    as zero-copy views, so a dataset's whole evaluation side lives in
    two buffers — which is also exactly the shape the shared-memory
    transport ships between processes.
    """

    __slots__ = ("indices", "indptr")

    def __init__(self, indices: "np.ndarray", indptr: "np.ndarray") -> None:
        if indptr.ndim != 1 or indices.ndim != 1 or indptr.shape[0] < 1:
            raise ConfigurationError("CsrMatrix needs 1-D indices and indptr")
        self.indices = np.ascontiguousarray(indices, dtype=_ID_DTYPE)
        self.indptr = np.ascontiguousarray(indptr, dtype=_ID_DTYPE)

    @classmethod
    def from_rows(cls, rows: Iterable[Sequence[int]]) -> "CsrMatrix":
        views = [_as_id_index(ids) for ids in rows]
        lengths = np.fromiter(
            (view.shape[0] for view in views), dtype=_ID_DTYPE, count=len(views)
        )
        indptr = np.zeros(len(views) + 1, dtype=_ID_DTYPE)
        np.cumsum(lengths, out=indptr[1:])
        if views:
            indices = np.concatenate(views)
        else:
            indices = np.zeros(0, dtype=_ID_DTYPE)
        return cls(indices, indptr)

    def __len__(self) -> int:
        return self.indptr.shape[0] - 1

    def row(self, i: int) -> "np.ndarray":
        """Zero-copy view of message ``i``'s sorted token IDs."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def rows(self) -> Iterable["np.ndarray"]:
        return (self.row(i) for i in range(len(self)))

    def nbytes(self) -> int:
        return int(self.indices.nbytes + self.indptr.nbytes)

    def __getstate__(self) -> tuple:
        return (self.indices, self.indptr)

    def __setstate__(self, state: tuple) -> None:
        self.indices, self.indptr = state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CsrMatrix(messages={len(self)}, nnz={self.indices.shape[0]})"


class ScoringWorkspace:
    """Reusable scoring-side state for one fixed evaluation batch.

    A streaming run scores the *same* held-out rows every tick against
    an evolving classifier.  Without a workspace each pass re-runs the
    batch-shape work — concatenating the rows into CSR form, gathering
    per-entry text ranks, allocating the reduceat/chi2 scratch
    columns — even though none of it depends on the classifier's
    counts.  A workspace caches exactly that batch-shape state:

    * the CSR encoding of the rows, built once (rows are immutable
      encoded ID arrays, so it never goes stale);
    * the per-entry text-rank gather, keyed by table length (the table
      is append-only, so length is a complete cache key — new vocab
      shifts existing ranks, which is the only invalidation);
    * named scratch buffers, reallocated only when the requested shape
      changes.

    The cached state is a pure function of ``(rows, table)``, never of
    any classifier's counts — so one workspace is safely shared by
    several classifiers over the same table (the stream runner points
    the main classifier and its clean twin at a single workspace).
    Construction is NumPy-free; only :meth:`csr`/:meth:`ranks_cat`
    (called from the ND kernel) touch arrays, so the pure kernel's
    fallback path can still carry a workspace around.
    """

    __slots__ = ("rows", "_csr", "_ranks_cat", "_ranks_len", "_buffers")

    def __init__(self, rows: Iterable[Sequence[int]]) -> None:
        self.rows = list(rows)
        self._csr: tuple | None = None
        self._ranks_cat = None
        self._ranks_len = -1
        self._buffers: dict = {}

    def csr(self) -> tuple:
        """The rows as one ``(ids_cat, indptr)`` CSR pair, cached."""
        if self._csr is None:
            matrix = CsrMatrix.from_rows(self.rows)
            self._csr = (matrix.indices, matrix.indptr)
        return self._csr

    def ranks_cat(self, table: TokenTable) -> "np.ndarray":
        """Per-entry text ranks for the CSR entries, cached per vocab.

        ``ranks_cat[p] == text_order_ranks()[ids_cat[p]]`` — the gather
        the lexsort tie-break needs, hoisted out of the per-call path
        and invalidated only when the table grows (new tokens shift
        the ranks of everything sorting after them).
        """
        table_len = len(table)
        if self._ranks_len != table_len:
            ids_cat, _ = self.csr()
            ranks = np.frombuffer(table.text_order_ranks(), dtype=_ID_DTYPE)
            self._ranks_cat = ranks[ids_cat]
            self._ranks_len = table_len
        return self._ranks_cat

    def buffer(self, name: str, size: int, dtype) -> "np.ndarray":
        """A named scratch array of exactly ``size``, reused per shape.

        Contents are undefined on return — callers overwrite every
        element they read (the kernel fills or assigns before use), so
        reuse can never leak one call's values into the next.
        """
        buf = self._buffers.get(name)
        if buf is None or buf.shape[0] != size:
            buf = np.empty(size, dtype=dtype)
            self._buffers[name] = buf
        return buf

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScoringWorkspace(rows={len(self.rows)})"


class NDClassifier(Classifier):
    """:class:`Classifier` with NumPy columns and a vectorized combiner.

    Behaviourally identical to the pure core — same scores bit-for-bit,
    same errors, same snapshot/memo semantics — which the differential
    suite (``tests/test_ndkernel_differential.py``) enforces with exact
    float equality.
    """

    def __init__(
        self,
        options: ClassifierOptions = DEFAULT_OPTIONS,
        table: TokenTable | None = None,
        columns=None,
    ) -> None:
        if np is None:  # pragma: no cover - numpy is in the baked image
            raise ConfigurationError("NDClassifier requires numpy")
        if columns is None:
            from repro.storage.memory import NDMemoryCountColumns

            columns = NDMemoryCountColumns()
        super().__init__(options, table=table, columns=columns)
        self._nd_reset()

    def _nd_reset(self) -> None:
        # The ND significance memo: prob[id] is valid iff known[id].
        # Independent of the pure-path _memo/_dirty pair because each
        # memo clears its own dirty backlog when it reconciles, and one
        # path must not discard evictions the other still owes.
        self._nd_prob: "np.ndarray | None" = None
        self._nd_known: "np.ndarray | None" = None
        self._nd_tag: tuple[int, int] | None = None
        self._nd_dirty: list[int] = []
        # Cached per-vocabulary significance ordinal: the rank of each
        # token under the combiner's (-strength, text) sort order.
        # Valid only while no memoized prob has changed.
        self._nd_order: "np.ndarray | None" = None
        # Vocabulary IDs in text order (argsort of the table's rank
        # array) — a pure function of the append-only table, so its
        # length is a complete cache key and training never dirties it.
        self._nd_text_order: "np.ndarray | None" = None
        # Column-copy checkpoint state while a snapshot is armed:
        # (spam copy, ham copy, active) plus the IDs every training
        # call touched, owed to memo eviction at restore.
        self._snap_columns: tuple | None = None
        self._snap_touched: list | None = None

    # ------------------------------------------------------------------
    # Columns
    # ------------------------------------------------------------------

    def _ensure_columns(self) -> None:
        # Slots past any previous view are untouched zeros in the
        # store's capacity buffers, so growing the view is the same as
        # array.frombytes(zeros) was.
        n = len(self._table)
        if self._spam.shape[0] < n:
            self._spam, self._ham = self._columns.grow(n)

    def word_info(self, token: str) -> WordInfo | None:
        info = super().word_info(token)
        if info is None:
            return None
        # Plain ints: word_info records flow into JSON dumps.
        return WordInfo(int(info.spamcount), int(info.hamcount))

    # ------------------------------------------------------------------
    # Memo bookkeeping
    # ------------------------------------------------------------------

    def _note_mutation(self, ids: Iterable[int]) -> None:
        known = self._nd_known
        if known is not None:
            nd_dirty = self._nd_dirty
            nd_dirty.extend(ids)
            if len(nd_dirty) > 1024 and len(nd_dirty) * 4 > known.shape[0]:
                self._nd_known = None
                self._nd_prob = None
                nd_dirty.clear()
        # Pure-path memo bookkeeping, as in Classifier._note_mutation —
        # except the message-score memo survives while the ND memo is
        # alive, because _nd_sync() owes it the same targeted eviction
        # _memo_list() performs (both are idempotent deletes, so either
        # order, or both, is safe).
        if self._memo is None:
            if self._nd_known is None:
                self._score_memo = None
            return
        dirty = self._dirty
        dirty.extend(ids)
        if len(dirty) > 1024 and len(dirty) * 4 > len(self._memo):
            self._memo = None
            dirty.clear()
            if self._nd_known is None:
                self._score_memo = None

    def _nd_sync(self) -> tuple["np.ndarray", "np.ndarray"]:
        """Reconcile the ND memo with pending mutations.

        Mirrors :meth:`Classifier._memo_list`: same ``(nspam, nham)``
        tag check, same targeted dirty-ID eviction (including the
        message-score memo), same full rebuild on a tag change.
        Columns must already be ensured.
        """
        n = len(self._table)
        tag = (self._nspam, self._nham)
        known = self._nd_known
        if known is not None and tag != self._nd_tag:
            if known.shape[0] >= n:
                # Counts changed but the vocabulary still fits: keep
                # the allocations and invalidate in place.  Every tick
                # of a stream lands here (training bumps nspam/nham),
                # so the steady state re-fills one bool column instead
                # of allocating two fresh vocabulary-sized arrays —
                # the probs are recomputed from the dirty (= all
                # unknown) entries exactly as a fresh memo would be.
                known.fill(False)
                self._nd_tag = tag
                self._nd_dirty.clear()
                self._score_memo = None
                self._nd_order = None
                return known, self._nd_prob
            known = None
        if known is None:
            capacity = max(n, 256)
            self._nd_known = known = np.zeros(capacity, dtype=bool)
            self._nd_prob = np.zeros(capacity, dtype=np.float64)
            self._nd_tag = tag
            self._nd_dirty.clear()
            self._score_memo = None
            self._nd_order = None
        else:
            dirty = self._nd_dirty
            if dirty:
                idx = np.asarray(dirty, dtype=_ID_DTYPE)
                known[idx[idx < known.shape[0]]] = False
                self._nd_order = None
                score_memo = self._score_memo
                if score_memo:
                    dirty_set = set(dirty)
                    stale = [
                        key
                        for key, entry in score_memo.items()
                        if not dirty_set.isdisjoint(entry[0])
                    ]
                    for key in stale:
                        del score_memo[key]
                dirty.clear()
            if known.shape[0] < n:
                capacity = max(n, 2 * known.shape[0])
                grown_known = np.zeros(capacity, dtype=bool)
                grown_known[: known.shape[0]] = known
                grown_prob = np.zeros(capacity, dtype=np.float64)
                grown_prob[: known.shape[0]] = self._nd_prob
                self._nd_known = known = grown_known
                self._nd_prob = grown_prob
        return known, self._nd_prob

    # ------------------------------------------------------------------
    # Training (vectorized column updates, same bookkeeping)
    # ------------------------------------------------------------------

    def _apply_delta(self, ids: Sequence[int], is_spam: bool, count: int) -> None:
        self._ensure_columns()
        spam_col = self._spam
        ham_col = self._ham
        col, other = (spam_col, ham_col) if is_spam else (ham_col, spam_col)
        idx = _as_id_index(ids)
        if idx.size:
            if self._snap_touched is not None:
                self._snap_touched.append(np.array(idx))
            self._active += int(np.count_nonzero((col[idx] == 0) & (other[idx] == 0)))
            col[idx] += count
        self._note_mutation(ids)

    def snapshot(self):
        """Arm a checkpoint; ND pays O(vocab) now instead of O(log) later.

        The pure kernel logs pre-mutation counts per newly touched ID,
        which costs a dict probe per token on *every* training call
        under the snapshot.  The ND columns are two flat int64 arrays a
        fraction of a megabyte long, so copying them outright at
        snapshot time is cheaper than one logged attack increment —
        training then pays nothing but a touched-ID note for memo
        eviction at restore.  Same contract: single-use, one at a time.
        """
        snap = super().snapshot()
        self._ensure_columns()
        self._snap_columns = (self._spam.copy(), self._ham.copy(), self._active)
        self._snap_touched = []
        return snap

    def restore(self, snap) -> None:
        """Return to the columns captured by :meth:`snapshot`, exactly.

        Counts are integers and the copies are bitwise, so this is the
        same state the pure kernel's log-replay reaches; IDs interned
        after the snapshot restore to zero counts, which is exactly the
        count they had before they existed.  Touched IDs feed the same
        memo-eviction bookkeeping a training call performs.
        """
        if snap.owner is not self:
            raise TrainingError("snapshot belongs to a different classifier")
        if not snap.active or self._snapshot is not snap:
            raise TrainingError("snapshot is not active on this classifier")
        spam_saved, ham_saved, active = self._snap_columns
        spam_col = self._spam
        ham_col = self._ham
        saved_len = spam_saved.shape[0]
        spam_col[:saved_len] = spam_saved
        ham_col[:saved_len] = ham_saved
        if spam_col.shape[0] > saved_len:
            spam_col[saved_len:] = 0
            ham_col[saved_len:] = 0
        self._active = active
        self._nspam = snap.nspam
        self._nham = snap.nham
        snap.active = False
        self._snapshot = None
        touched = self._snap_touched
        self._snap_columns = None
        self._snap_touched = None
        self._note_mutation(
            np.concatenate(touched).tolist() if touched else ()
        )

    def _check_removal(self, ids: Sequence[int], is_spam: bool, count: int) -> None:
        col = self._spam if is_spam else self._ham
        idx = _as_id_index(ids)
        if not idx.size:
            return
        in_bounds = idx < col.shape[0]
        current = np.zeros(idx.shape[0], dtype=_ID_DTYPE)
        if in_bounds.any():
            current[in_bounds] = col[idx[in_bounds]]
        bad = current < count
        if bad.any():
            token = self._table.token(int(idx[int(np.argmax(bad))]))
            raise TrainingError(
                f"unlearn would drive count of token {token!r} negative; "
                "message was not learned with this label"
            )

    def _apply_removal(self, ids: Sequence[int], is_spam: bool, count: int) -> None:
        spam_col = self._spam
        ham_col = self._ham
        col, other = (spam_col, ham_col) if is_spam else (ham_col, spam_col)
        idx = _as_id_index(ids)
        if idx.size:
            if self._snap_touched is not None:
                self._snap_touched.append(np.array(idx))
            col[idx] -= count
            self._active -= int(np.count_nonzero((col[idx] == 0) & (other[idx] == 0)))
        self._note_mutation(ids)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def _prob_for_id(self, token_id: int) -> float:
        # Same formula, forced to a plain float so string-path memo
        # entries and evidence records carry native floats (float() of
        # a float64 is the identity on the bits).
        return float(super()._prob_for_id(token_id))

    def _nd_probs_for(self, need: "np.ndarray") -> "np.ndarray":
        """f(w) of Equation 2 for a batch of token IDs, bit-exact."""
        return self._nd_probs_of(self._spam[need], self._ham[need])

    def _nd_probs_of(
        self, spamcount: "np.ndarray", hamcount: "np.ndarray"
    ) -> "np.ndarray":
        """f(w) over parallel count arrays (gathered or sliced), bit-exact.

        Every elementwise expression matches ``_prob_for_id``'s scalar
        arithmetic: int64→float64 conversions are exact (counts are
        tiny against 2**53) and each ``+ - * /`` is the identical
        correctly-rounded IEEE operation.  The formula is elementwise,
        so feeding it contiguous column *slices* (the every-entry-
        missing refresh after a count change) computes the same floats
        as gathering the IDs one by one.
        """
        opts = self.options
        unknown = opts.unknown_word_prob
        s = opts.unknown_word_strength
        size = spamcount.shape[0]
        n = spamcount + hamcount
        nspam = self._nspam
        nham = self._nham
        if nspam == 0 and nham == 0:
            ps = np.full(size, unknown, dtype=np.float64)
        else:
            with np.errstate(divide="ignore", invalid="ignore"):
                spam_ratio = (
                    spamcount / nspam
                    if nspam
                    else np.zeros(size, dtype=np.float64)
                )
                ham_ratio = (
                    hamcount / nham
                    if nham
                    else np.zeros(size, dtype=np.float64)
                )
                denominator = spam_ratio + ham_ratio
                ps = np.full(size, unknown, dtype=np.float64)
                np.divide(spam_ratio, denominator, out=ps, where=denominator != 0.0)
        prob = (s * unknown + n * ps) / (s + n)
        np.copyto(prob, unknown, where=(n == 0))
        return prob

    def _nd_build_order(self, table_len: int) -> "np.ndarray":
        """Per-vocabulary ordinal under the (-strength, text) order.

        ``ordinal[tid] < ordinal[other]`` exactly when the pure kernel
        would sort ``tid``'s memo tuple first: the primary key compares
        the same ``-|prob - 0.5|`` float64 values, and text rank breaks
        exact ties (including -0.0 vs 0.0, which IEEE comparison — and
        hence any sort — treats as equal), just as tuple comparison
        falls through to the token string.  Instead of a two-key
        lexsort, IDs are pre-permuted into text order (cached: the
        table is append-only, so length is a complete key) and a single
        *stable* argsort on strength then resolves ties by text rank
        for free.  Every prob must already be memoized for
        ``[0, table_len)``.
        """
        text_order = self._nd_text_order
        if text_order is None or text_order.shape[0] != table_len:
            ranks = np.frombuffer(self._table.text_order_ranks(), dtype=_ID_DTYPE)
            text_order = self._nd_text_order = np.argsort(ranks[:table_len])
        strength = np.abs(self._nd_prob[:table_len] - 0.5)
        order = text_order[
            np.argsort(-strength[text_order], kind="stable")
        ]
        ordinal = np.empty(table_len, dtype=_ID_DTYPE)
        ordinal[order] = np.arange(table_len, dtype=_ID_DTYPE)
        return ordinal

    def score_many_ids(self, id_arrays: Iterable[Sequence[int]]) -> list[float]:
        rows = id_arrays if isinstance(id_arrays, (list, tuple)) else list(id_arrays)
        self._ensure_columns()
        self._nd_sync()
        score_memo = self._score_memo
        if score_memo is None:
            score_memo = self._score_memo = {}
        score_memo_get = score_memo.get
        results: list[float | None] = [None] * len(rows)
        pending_index: list[int] = []
        pending_rows: list[Sequence[int]] = []
        for i, ids in enumerate(rows):
            cached = score_memo_get(id(ids))
            if cached is not None and cached[0] is ids:
                results[i] = cached[1]
            else:
                pending_index.append(i)
                pending_rows.append(ids)
        if pending_rows:
            views = [_as_id_index(ids) for ids in pending_rows]
            lengths = np.fromiter(
                (view.shape[0] for view in views),
                dtype=_ID_DTYPE,
                count=len(views),
            )
            indptr = np.zeros(len(views) + 1, dtype=_ID_DTYPE)
            np.cumsum(lengths, out=indptr[1:])
            ids_cat = np.concatenate(views)
            scores = self._score_segments(ids_cat, indptr)
            for i, ids, score in zip(pending_index, pending_rows, scores):
                results[i] = score
                if type(ids) is array:
                    # Same policy as the pure kernel: only persistent
                    # encoded arrays are worth remembering.
                    score_memo[id(ids)] = (ids, score)
        return results  # type: ignore[return-value]

    def score_csr(self, corpus: CsrMatrix, rows: Sequence[int] | None = None) -> list[float]:
        """Bulk-score messages straight off a CSR corpus.

        ``rows`` selects a message subset (fold stripes); ``None``
        scores the whole corpus.  Scores are exactly what per-message
        :meth:`score_ids` returns for the same rows.
        """
        self._ensure_columns()
        self._nd_sync()
        indices = corpus.indices
        indptr = corpus.indptr
        if rows is not None:
            row_index = np.asarray(rows, dtype=_ID_DTYPE)
            starts = indptr[row_index]
            lengths = indptr[row_index + 1] - starts
            sub_indptr = np.zeros(row_index.shape[0] + 1, dtype=_ID_DTYPE)
            np.cumsum(lengths, out=sub_indptr[1:])
            total = int(sub_indptr[-1])
            gather = np.repeat(starts - sub_indptr[:-1], lengths) + np.arange(
                total, dtype=_ID_DTYPE
            )
            indices = indices[gather]
            indptr = sub_indptr
        return self._score_segments(indices, indptr)

    def score_workspace(self, workspace: ScoringWorkspace) -> list[float]:
        """Bulk-score a workspace's fixed rows, reusing its cached state.

        Same floats as ``score_many_ids(workspace.rows)`` — the CSR
        encoding, rank gather and scratch buffers come from the
        workspace instead of being rebuilt, but every arithmetic
        operation on them is identical.  The per-call score memo is
        bypassed: a workspace *is* the memo for its batch shape, and
        the streaming caller re-scores after every training tick, when
        the score memo would have been invalidated anyway.
        """
        self._ensure_columns()
        self._nd_sync()
        ids_cat, indptr = workspace.csr()
        return self._score_segments(ids_cat, indptr, workspace=workspace)

    def _score_segments(
        self,
        ids_cat: "np.ndarray",
        indptr: "np.ndarray",
        workspace: ScoringWorkspace | None = None,
    ) -> list[float]:
        """The vectorized Fisher/chi2 combiner over CSR segments.

        One IEEE-identical pass for the whole batch: token-prob gather,
        significance filter, the ``(-strength, text)`` lexsort with
        per-row truncation, the interleaved mantissa/exponent product,
        and the even-dof chi-square survival series.  ``workspace``
        supplies preallocated scratch columns and the cached text-rank
        gather; it changes where intermediates live, never their bits.
        """
        n_msgs = indptr.shape[0] - 1
        if n_msgs == 0:
            return []
        if ids_cat.shape[0] == 0:
            return [0.5] * n_msgs
        opts = self.options
        known, prob_col = self._nd_known, self._nd_prob
        # Backfill the prob memo for every not-yet-known vocabulary ID
        # in one vectorized sweep.  Scanning the whole known[] column is
        # O(vocab) with a trivial constant — far cheaper than hashing
        # the batch's token stream for its unique IDs — and computing a
        # prob for an ID the batch never references is harmless: the
        # formula is elementwise, so every entry is the same float the
        # scalar path would produce on demand.
        table_len = len(self._table)
        missing = np.flatnonzero(~known[:table_len])
        if missing.size == table_len:
            # Nothing memoized (the steady state after a count change):
            # refresh straight off the contiguous count columns instead
            # of gathering through an arange-equivalent index — same
            # elementwise floats, no fancy-index copies.
            prob_col[:table_len] = self._nd_probs_of(
                self._spam[:table_len], self._ham[:table_len]
            )
            known[:table_len] = True
        elif missing.size:
            prob_col[missing] = self._nd_probs_for(missing)
            known[missing] = True
        if workspace is not None:
            token_prob = np.take(
                prob_col, ids_cat, out=workspace.buffer("token_prob", ids_cat.shape[0], np.float64)
            )
            strength = np.subtract(
                token_prob, 0.5, out=workspace.buffer("strength", ids_cat.shape[0], np.float64)
            )
            np.abs(strength, out=strength)
        else:
            token_prob = prob_col[ids_cat]
            strength = np.abs(token_prob - 0.5)
        sig_idx = np.flatnonzero(strength >= opts.minimum_prob_strength)
        if sig_idx.shape[0] == 0:
            return [0.5] * n_msgs
        # Row of each significant entry, straight from the CSR indptr:
        # entry position p lives in the row r with indptr[r] <= p <
        # indptr[r+1] (empty rows collapse their indptr span, so they
        # can never be selected).
        row_of = np.searchsorted(indptr, sig_idx, side="right") - 1
        sig_prob = token_prob[sig_idx]
        sig_ids = ids_cat[sig_idx]
        # Row-major, then strength descending, then token text — the
        # exact tuple order the pure kernel's scored.sort() produces
        # (tokens are unique per message, so this is a total order and
        # sort stability never decides anything).  Both strength and
        # text are functions of the token alone, so the two trailing
        # keys collapse into a per-vocabulary ordinal; with it, the
        # whole order is one unique int64 key per entry and a plain
        # argsort replaces a 3-key lexsort.  The ordinal costs a
        # vocabulary-sized sort to (re)build, so small batches (RONI
        # probes) skip it and lexsort their few entries directly.
        order_col = self._nd_order
        if order_col is not None and order_col.shape[0] < table_len:
            order_col = self._nd_order = None
        if order_col is None and sig_ids.shape[0] >= table_len // 2:
            order_col = self._nd_order = self._nd_build_order(table_len)
        if order_col is not None:
            order = np.argsort((row_of << 32) | order_col[sig_ids])
        elif workspace is not None:
            # ranks[sig_ids] == ranks_cat[sig_idx]: the workspace holds
            # the whole-batch rank gather (cached per table length), so
            # the tie-break key is a subset view instead of a fresh
            # O(nnz) gather through the rank array.
            order = np.lexsort(
                (workspace.ranks_cat(self._table)[sig_idx], -strength[sig_idx], row_of)
            )
        else:
            ranks = np.frombuffer(self._table.text_order_ranks(), dtype=_ID_DTYPE)
            order = np.lexsort((ranks[sig_ids], -strength[sig_idx], row_of))
        row_sorted = row_of[order]
        prob_sorted = sig_prob[order]
        counts = np.bincount(row_sorted, minlength=n_msgs)
        if workspace is not None:
            row_starts = workspace.buffer("row_starts", n_msgs + 1, np.int64)
            kept_starts = workspace.buffer("kept_starts", n_msgs + 1, np.int64)
            row_starts[0] = 0
            kept_starts[0] = 0
        else:
            row_starts = np.zeros(n_msgs + 1, dtype=np.int64)
            kept_starts = np.zeros(n_msgs + 1, dtype=np.int64)
        np.cumsum(counts, out=row_starts[1:])
        degrees = np.minimum(counts, opts.max_discriminators)
        np.cumsum(degrees, out=kept_starts[1:])
        # Each message keeps the first ``degrees[r]`` of its contiguous
        # sorted run: gather those positions directly instead of
        # ranking every entry and boolean-filtering the batch.
        kept_idx = np.repeat(row_starts[:-1] - kept_starts[:-1], degrees) + np.arange(
            int(kept_starts[-1]), dtype=np.int64
        )
        kept_probs = prob_sorted[kept_idx]
        # The pure combiner raises on p <= 0 or 1-p <= 0 at the first
        # offending element in (message, discriminator-rank) order —
        # which is exactly the kept order here.
        out_of_range = (kept_probs <= 0.0) | (kept_probs >= 1.0)
        if out_of_range.any():
            value = float(kept_probs[int(np.argmax(out_of_range))])
            offender = value if value <= 0.0 else 1.0 - value
            raise ValueError(f"ln_product requires positive values, got {offender}")
        # Row-major kept segments: kept entries are already ordered by
        # (message, discriminator rank), so each message's factors are
        # one contiguous slice and its mantissa product is a single
        # sequential ``multiply.reduceat`` — NumPy reduces multiply
        # strictly left-to-right, so every intermediate float is the
        # scalar loop's.  Every factor lies in (0, 1): the running
        # product decreases monotonically, the final value is its own
        # minimum, and a final product at or above the renormalization
        # threshold proves the scalar loop would never have
        # renormalized.  Only rows landing below the threshold re-run
        # through the pure combiner's exact mantissa/exponent loop.
        q_kept = 1.0 - kept_probs
        if workspace is not None:
            mant_spam = workspace.buffer("mant_spam", n_msgs, np.float64)
            exp_spam = workspace.buffer("exp_spam", n_msgs, np.int64)
            mant_ham = workspace.buffer("mant_ham", n_msgs, np.float64)
            exp_ham = workspace.buffer("exp_ham", n_msgs, np.int64)
            mant_spam.fill(1.0)
            exp_spam.fill(0)
            mant_ham.fill(1.0)
            exp_ham.fill(0)
        else:
            mant_spam = np.ones(n_msgs)
            exp_spam = np.zeros(n_msgs, dtype=np.int64)
            mant_ham = np.ones(n_msgs)
            exp_ham = np.zeros(n_msgs, dtype=np.int64)
        nonzero = np.flatnonzero(degrees)
        if nonzero.size:
            starts = kept_starts[nonzero]
            mant_spam[nonzero] = np.multiply.reduceat(kept_probs, starts)
            mant_ham[nonzero] = np.multiply.reduceat(q_kept, starts)
        frexp = math.frexp
        for mant_col, exp_col, factors in (
            (mant_spam, exp_spam, kept_probs),
            (mant_ham, exp_ham, q_kept),
        ):
            for row in np.flatnonzero(mant_col < _RENORM_THRESHOLD).tolist():
                mant, exp = 1.0, 0
                for value in factors[
                    kept_starts[row] : kept_starts[row + 1]
                ].tolist():
                    mant *= value
                    if mant < _RENORM_THRESHOLD:
                        mant, shift = frexp(mant)
                        exp += shift
                mant_col[row] = mant
                exp_col[row] = exp
        x2_spam = -2.0 * (_exact_log_u(mant_spam).astype(np.float64) + exp_spam * _LN2)
        x2_ham = -2.0 * (_exact_log_u(mant_ham).astype(np.float64) + exp_ham * _LN2)
        # One stacked survival call: rows are independent, and fusing
        # the spam and ham sides halves the bucketing overhead.
        if workspace is not None:
            x2_cat = workspace.buffer("x2_cat", 2 * n_msgs, np.float64)
            deg_cat = workspace.buffer("deg_cat", 2 * n_msgs, np.int64)
            x2_cat[:n_msgs] = x2_spam
            x2_cat[n_msgs:] = x2_ham
            deg_cat[:n_msgs] = degrees
            deg_cat[n_msgs:] = degrees
        else:
            x2_cat = np.concatenate((x2_spam, x2_ham))
            deg_cat = np.concatenate((degrees, degrees))
        evidence = _chi2_survival(x2_cat, deg_cat)
        return ((1.0 + evidence[:n_msgs] - evidence[n_msgs:]) / 2.0).tolist()

    # ------------------------------------------------------------------
    # Copy / pickle
    # ------------------------------------------------------------------

    def copy(self) -> "NDClassifier":
        clone = self.__class__(self.options, table=self._table)
        clone._nspam = self._nspam
        clone._nham = self._nham
        clone._spam = self._spam.copy()
        clone._ham = self._ham.copy()
        clone._adopt_columns()
        clone._active = self._active
        return clone

    def _adopt_columns(self) -> None:
        from repro.storage.memory import NDMemoryCountColumns

        self._columns = NDMemoryCountColumns.adopt(self._spam, self._ham)

    def _export_column(self, column):
        # ND pickles ship the ndarray itself (mmap-backed views pickle
        # by value like any other ndarray), preserving the historical
        # payload format.
        return column

    def __setstate__(self, state: dict) -> None:
        super().__setstate__(state)
        self._spam = np.ascontiguousarray(self._spam, dtype=_ID_DTYPE)
        self._ham = np.ascontiguousarray(self._ham, dtype=_ID_DTYPE)
        self._adopt_columns()
        self._nd_reset()


def _chi2_survival(x2: "np.ndarray", degrees: "np.ndarray") -> "np.ndarray":
    """Vectorized even-dof chi-square survival, matching the pure series.

    ``degrees[i]`` is message ``i``'s significant-prob count (any
    order).  The scalar series is ``term = exp(-half); total = term;
    then d-1 times: term *= half/i; total += term`` — a sequential
    multiply chain and a sequential add chain, reproduced exactly by
    ``multiply.accumulate`` and ``cumsum`` along each row of a
    (messages × steps) factor matrix: NumPy accumulates strictly left
    to right, so every intermediate float is the scalar loop's.
    Columns beyond a row's own degree compute junk terms that cost
    arithmetic but never reach its gathered entry (and stay finite:
    each term is a Poisson pmf value, bounded by 1).  The final
    ``where`` reproduces the scalar early-outs exactly: ``x2 <= 0`` →
    1.0, ``half > 708`` → 0.0, else ``min(total, 1.0)``.  Callers may
    stack independent batches (the combiner fuses its spam and ham
    sides) — rows never interact.
    """
    half = x2 / 2.0
    # exp(-half) with half >= -0.0 never overflows; for half > 708 it
    # underflows to the same 0.0 the skipped scalar branch pins.
    term0 = _exact_exp_u(-half).astype(np.float64)
    total = term0.copy()
    max_degrees = int(degrees.max()) if degrees.size else 0
    if max_degrees > 1:
        # Row degrees are heavily skewed (medians run ~1/3 of the max),
        # so one batch-wide matrix would spend most of its arithmetic
        # on columns past each row's own degree.  Bucket rows by degree
        # instead — descending, splitting at successive halvings of the
        # width — so every row lands in a matrix at most twice as wide
        # as its own series, keeping total work near sum(degrees) with
        # only O(log max) vectorized rounds.
        multi = np.flatnonzero(degrees > 1)
        order = multi[np.argsort(-degrees[multi])]
        d_desc = degrees[order]
        lo = 0
        width = max_degrees
        while lo < order.size:
            next_width = width // 2
            # Below a small width the per-round overhead outweighs the
            # junk-column savings: fold the whole tail into one bucket.
            hi = (
                int(np.searchsorted(-d_desc, -next_width, side="left"))
                if next_width > 8
                else int(order.size)
            )
            rows = order[lo:hi]
            if rows.size:
                factors = np.empty((rows.shape[0], width), dtype=np.float64)
                factors[:, 0] = term0[rows]
                np.divide(
                    half[rows, None],
                    np.arange(1.0, width, dtype=np.float64)[None, :],
                    out=factors[:, 1:],
                )
                np.multiply.accumulate(factors, axis=1, out=factors)
                np.cumsum(factors, axis=1, out=factors)
                total[rows] = factors[
                    np.arange(rows.shape[0]), degrees[rows] - 1
                ]
            lo = hi
            width = next_width
    return np.where(
        x2 <= 0.0,
        1.0,
        np.where(half > _EXP_UNDERFLOW_LIMIT, 0.0, np.minimum(total, 1.0)),
    )
