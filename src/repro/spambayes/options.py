"""Tunable options of the SpamBayes learner.

The defaults reproduce the configuration used by the paper (and by
SpamBayes 1.0.x):

* ``unknown_word_prob`` — Robinson's prior belief ``x`` in Eq. 2,
* ``unknown_word_strength`` — the prior strength ``s`` in Eq. 2,
* ``max_discriminators`` and ``minimum_prob_strength`` — the δ(E)
  selection rule of footnote 3: at most 150 tokens, each with score
  further than 0.1 from 0.5 (i.e. outside ``[0.4, 0.6]``),
* ``ham_cutoff`` / ``spam_cutoff`` — the θ0/θ1 thresholds of Section
  2.3, with the paper's defaults 0.15 and 0.9.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = ["ClassifierOptions", "DEFAULT_OPTIONS"]


@dataclass(frozen=True, slots=True)
class ClassifierOptions:
    """Immutable bundle of learner hyper-parameters.

    Instances are cheap value objects; derive variants with
    :meth:`with_cutoffs` or :func:`dataclasses.replace` rather than
    mutating.
    """

    unknown_word_prob: float = 0.5
    unknown_word_strength: float = 0.45
    minimum_prob_strength: float = 0.1
    max_discriminators: int = 150
    ham_cutoff: float = 0.15
    spam_cutoff: float = 0.90

    def __post_init__(self) -> None:
        if not 0.0 <= self.unknown_word_prob <= 1.0:
            raise ConfigurationError(
                f"unknown_word_prob must be in [0, 1], got {self.unknown_word_prob}"
            )
        if self.unknown_word_strength < 0.0:
            raise ConfigurationError(
                f"unknown_word_strength must be >= 0, got {self.unknown_word_strength}"
            )
        if not 0.0 <= self.minimum_prob_strength <= 0.5:
            raise ConfigurationError(
                "minimum_prob_strength must be in [0, 0.5], got "
                f"{self.minimum_prob_strength}"
            )
        if self.max_discriminators < 1:
            raise ConfigurationError(
                f"max_discriminators must be >= 1, got {self.max_discriminators}"
            )
        if not 0.0 <= self.ham_cutoff <= self.spam_cutoff <= 1.0:
            raise ConfigurationError(
                "cutoffs must satisfy 0 <= ham_cutoff <= spam_cutoff <= 1, got "
                f"ham_cutoff={self.ham_cutoff}, spam_cutoff={self.spam_cutoff}"
            )

    def with_cutoffs(self, ham_cutoff: float, spam_cutoff: float) -> "ClassifierOptions":
        """Return a copy with new θ0/θ1 thresholds.

        This is the hook the dynamic-threshold defense uses: the learner
        state is unchanged, only the decision boundaries move.
        """
        return replace(self, ham_cutoff=ham_cutoff, spam_cutoff=spam_cutoff)


DEFAULT_OPTIONS = ClassifierOptions()
"""The paper's configuration: s=0.45, x=0.5, 150 discriminators, θ=(0.15, 0.9)."""
