"""Saving and restoring trained classifier state.

The on-disk format is a single JSON document (optionally gzipped when
the path ends in ``.gz``, matched case-insensitively):

.. code-block:: json

    {
      "format": "repro-spambayes-v1",
      "nspam": 123,
      "nham": 456,
      "options": {"ham_cutoff": 0.15, ...},
      "words": {"token": [spamcount, hamcount], ...}
    }

JSON keeps the dump greppable and diff-able — handy when inspecting
exactly which tokens an attack poisoned — at the cost of some size,
which gzip recovers.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any

from repro.errors import PersistenceError, TrainingError
from repro.spambayes.classifier import Classifier
from repro.spambayes.options import ClassifierOptions
from repro.storage.io import read_payload_text, write_payload_text

__all__ = ["classifier_to_dict", "classifier_from_dict", "save_classifier", "load_classifier"]

_FORMAT = "repro-spambayes-v1"


def classifier_to_dict(classifier: Classifier) -> dict[str, Any]:
    """Serialize a classifier (state + options) to plain data.

    The dump is storage-agnostic: the interned token-ID core writes the
    same ``token -> [spamcount, hamcount]`` mapping (tokens sorted) the
    dict-keyed core always produced, so dumps are interchangeable
    between the two and stable across table layouts.
    """
    words: dict[str, list[int]] = {}
    for token in sorted(classifier.iter_vocabulary()):
        record = classifier.word_info(token)
        words[token] = [record.spamcount, record.hamcount]
    return {
        "format": _FORMAT,
        "nspam": classifier.nspam,
        "nham": classifier.nham,
        "options": asdict(classifier.options),
        "words": words,
    }


def classifier_from_dict(data: dict[str, Any]) -> Classifier:
    """Rebuild a classifier from :func:`classifier_to_dict` output.

    Restores through :meth:`Classifier.from_token_counts`, the
    supported bulk-load constructor, so a loaded classifier carries the
    same memo/dirty/active invariants a trained one does — it can keep
    training, snapshot, and bulk-score exactly like the classifier
    that was saved.
    """
    if data.get("format") != _FORMAT:
        raise PersistenceError(
            f"unsupported classifier dump format: {data.get('format')!r}"
        )
    try:
        options = ClassifierOptions(**data["options"])
        nspam = int(data["nspam"])
        nham = int(data["nham"])
        counts = [
            (token, int(pair[0]), int(pair[1]))
            for token, pair in data["words"].items()
        ]
        return Classifier.from_token_counts(
            counts, nspam=nspam, nham=nham, options=options
        )
    except (KeyError, TypeError, ValueError, OverflowError, TrainingError) as exc:
        raise PersistenceError(f"corrupt classifier dump: {exc}") from exc


def save_classifier(classifier: Classifier, path: str | Path) -> None:
    """Write ``classifier`` to ``path`` (gzipped when it ends in .gz).

    Gzip-by-suffix (case-insensitive, on save *and* load — a dump
    written to ``model.json.GZ`` must come back through the same
    codec) and atomic replacement both live in
    :mod:`repro.storage.io`, shared with every other save path.
    """
    path = Path(path)
    payload = json.dumps(classifier_to_dict(classifier), separators=(",", ":"))
    try:
        write_payload_text(path, payload)
    except OSError as exc:
        raise PersistenceError(f"cannot write classifier to {path}: {exc}") from exc


def load_classifier(path: str | Path) -> Classifier:
    """Read a classifier previously written by :func:`save_classifier`."""
    path = Path(path)
    try:
        data = json.loads(read_payload_text(path))
    except OSError as exc:
        raise PersistenceError(f"cannot read classifier from {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"classifier dump at {path} is not valid JSON: {exc}") from exc
    return classifier_from_dict(data)
