"""Saving and restoring trained classifier state.

The on-disk format is a single JSON document (optionally gzipped when
the path ends in ``.gz``):

.. code-block:: json

    {
      "format": "repro-spambayes-v1",
      "nspam": 123,
      "nham": 456,
      "options": {"ham_cutoff": 0.15, ...},
      "words": {"token": [spamcount, hamcount], ...}
    }

JSON keeps the dump greppable and diff-able — handy when inspecting
exactly which tokens an attack poisoned — at the cost of some size,
which gzip recovers.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import asdict
from pathlib import Path
from typing import Any

from repro.errors import PersistenceError
from repro.spambayes.classifier import Classifier
from repro.spambayes.options import ClassifierOptions
from repro.spambayes.wordinfo import WordInfo

__all__ = ["classifier_to_dict", "classifier_from_dict", "save_classifier", "load_classifier"]

_FORMAT = "repro-spambayes-v1"


def classifier_to_dict(classifier: Classifier) -> dict[str, Any]:
    """Serialize a classifier (state + options) to plain data."""
    return {
        "format": _FORMAT,
        "nspam": classifier.nspam,
        "nham": classifier.nham,
        "options": asdict(classifier.options),
        "words": {
            token: [record.spamcount, record.hamcount]
            for token, record in sorted(
                (t, classifier.word_info(t)) for t in classifier.iter_vocabulary()
            )
        },
    }


def classifier_from_dict(data: dict[str, Any]) -> Classifier:
    """Rebuild a classifier from :func:`classifier_to_dict` output."""
    if data.get("format") != _FORMAT:
        raise PersistenceError(
            f"unsupported classifier dump format: {data.get('format')!r}"
        )
    try:
        options = ClassifierOptions(**data["options"])
        classifier = Classifier(options)
        classifier._nspam = int(data["nspam"])
        classifier._nham = int(data["nham"])
        words = data["words"]
        classifier._wordinfo = {
            token: WordInfo(int(counts[0]), int(counts[1]))
            for token, counts in words.items()
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(f"corrupt classifier dump: {exc}") from exc
    if classifier._nspam < 0 or classifier._nham < 0:
        raise PersistenceError("corrupt classifier dump: negative message counts")
    return classifier


def save_classifier(classifier: Classifier, path: str | Path) -> None:
    """Write ``classifier`` to ``path`` (gzipped when it ends in .gz)."""
    path = Path(path)
    payload = json.dumps(classifier_to_dict(classifier), separators=(",", ":"))
    try:
        if path.suffix == ".gz":
            with gzip.open(path, "wt", encoding="utf-8") as handle:
                handle.write(payload)
        else:
            path.write_text(payload, encoding="utf-8")
    except OSError as exc:
        raise PersistenceError(f"cannot write classifier to {path}: {exc}") from exc


def load_classifier(path: str | Path) -> Classifier:
    """Read a classifier previously written by :func:`save_classifier`."""
    path = Path(path)
    try:
        if path.suffix == ".gz":
            with gzip.open(path, "rt", encoding="utf-8") as handle:
                payload = handle.read()
        else:
            payload = path.read_text(encoding="utf-8")
        data = json.loads(payload)
    except OSError as exc:
        raise PersistenceError(f"cannot read classifier from {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"classifier dump at {path} is not valid JSON: {exc}") from exc
    return classifier_from_dict(data)
