"""The retained str-keyed classifier core (executable specification).

This is the PR-1 implementation of :class:`Classifier`, verbatim: a
``dict[str, WordInfo]`` object store, a string-keyed probability cache,
and a per-call significance memo in ``score_many``.  The interned
token-ID core in :mod:`repro.spambayes.classifier` replaced it on every
hot path, but the arithmetic contract is *bit-exactness*, and a claim
like that needs something to be exact against.

So this module stays, for two consumers:

* the differential suite (``tests/test_token_table.py``), which runs
  both cores side by side on randomized corpora and asserts identical
  scores, snapshots and persistence round-trips;
* ``benchmarks/bench_classifier_core.py``, which reports the ID core's
  speedup over this baseline.

Do not "optimize" this file; its value is that it does not change.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import TrainingError
from repro.spambayes.chi2 import fisher_combine
from repro.spambayes.options import ClassifierOptions, DEFAULT_OPTIONS
from repro.spambayes.wordinfo import WordInfo

__all__ = ["ReferenceClassifier", "ReferenceSnapshot"]


class ReferenceSnapshot:
    """Copy-on-write checkpoint of a :class:`ReferenceClassifier`."""

    __slots__ = ("owner", "nspam", "nham", "log", "active")

    def __init__(self, owner: "ReferenceClassifier", nspam: int, nham: int) -> None:
        self.owner = owner
        self.nspam = nspam
        self.nham = nham
        # token -> original WordInfo copy, or None if the token was
        # absent when the snapshot was taken.
        self.log: dict[str, WordInfo | None] = {}
        self.active = True


class ReferenceClassifier:
    """Incremental SpamBayes classifier over a ``dict[str, WordInfo]``."""

    def __init__(self, options: ClassifierOptions = DEFAULT_OPTIONS) -> None:
        self.options = options
        self._wordinfo: dict[str, WordInfo] = {}
        self._nspam = 0
        self._nham = 0
        self._prob_cache: dict[str, float] = {}
        self._snapshot: ReferenceSnapshot | None = None

    # ------------------------------------------------------------------
    # Training state
    # ------------------------------------------------------------------

    @property
    def nspam(self) -> int:
        return self._nspam

    @property
    def nham(self) -> int:
        return self._nham

    @property
    def vocabulary_size(self) -> int:
        return len(self._wordinfo)

    def word_info(self, token: str) -> WordInfo | None:
        return self._wordinfo.get(token)

    def iter_vocabulary(self) -> Iterable[str]:
        return iter(self._wordinfo)

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------

    def learn(self, tokens: Iterable[str], is_spam: bool) -> None:
        unique = tokens if isinstance(tokens, (set, frozenset)) else set(tokens)
        if is_spam:
            self._nspam += 1
        else:
            self._nham += 1
        wordinfo = self._wordinfo
        log = None if self._snapshot is None else self._snapshot.log
        for token in unique:
            record = wordinfo.get(token)
            if log is not None and token not in log:
                log[token] = None if record is None else record.copy()
            if record is None:
                record = wordinfo[token] = WordInfo()
            if is_spam:
                record.spamcount += 1
            else:
                record.hamcount += 1
        self._prob_cache.clear()

    def unlearn(self, tokens: Iterable[str], is_spam: bool) -> None:
        unique = tokens if isinstance(tokens, (set, frozenset)) else set(tokens)
        if is_spam:
            if self._nspam < 1:
                raise TrainingError("unlearn(spam) with no spam trained")
        else:
            if self._nham < 1:
                raise TrainingError("unlearn(ham) with no ham trained")
        wordinfo = self._wordinfo
        for token in unique:
            record = wordinfo.get(token)
            count = 0 if record is None else (record.spamcount if is_spam else record.hamcount)
            if count < 1:
                raise TrainingError(
                    f"unlearn would drive count of token {token!r} negative; "
                    "message was not learned with this label"
                )
        log = None if self._snapshot is None else self._snapshot.log
        if is_spam:
            self._nspam -= 1
        else:
            self._nham -= 1
        for token in unique:
            record = wordinfo[token]
            if log is not None and token not in log:
                log[token] = record.copy()
            if is_spam:
                record.spamcount -= 1
            else:
                record.hamcount -= 1
            if record.is_empty():
                del wordinfo[token]
        self._prob_cache.clear()

    def learn_repeated(self, tokens: Iterable[str], is_spam: bool, count: int) -> None:
        if count < 0:
            raise TrainingError(f"learn_repeated needs count >= 0, got {count}")
        if count == 0:
            return
        unique = tokens if isinstance(tokens, (set, frozenset)) else set(tokens)
        if is_spam:
            self._nspam += count
        else:
            self._nham += count
        wordinfo = self._wordinfo
        log = None if self._snapshot is None else self._snapshot.log
        for token in unique:
            record = wordinfo.get(token)
            if log is not None and token not in log:
                log[token] = None if record is None else record.copy()
            if record is None:
                record = wordinfo[token] = WordInfo()
            if is_spam:
                record.spamcount += count
            else:
                record.hamcount += count
        self._prob_cache.clear()

    def unlearn_repeated(self, tokens: Iterable[str], is_spam: bool, count: int) -> None:
        if count < 0:
            raise TrainingError(f"unlearn_repeated needs count >= 0, got {count}")
        if count == 0:
            return
        unique = tokens if isinstance(tokens, (set, frozenset)) else set(tokens)
        if is_spam and self._nspam < count:
            raise TrainingError(f"unlearn_repeated(spam, {count}) with only {self._nspam} trained")
        if not is_spam and self._nham < count:
            raise TrainingError(f"unlearn_repeated(ham, {count}) with only {self._nham} trained")
        wordinfo = self._wordinfo
        for token in unique:
            record = wordinfo.get(token)
            current = 0 if record is None else (record.spamcount if is_spam else record.hamcount)
            if current < count:
                raise TrainingError(
                    f"unlearn_repeated would drive count of token {token!r} negative"
                )
        if is_spam:
            self._nspam -= count
        else:
            self._nham -= count
        log = None if self._snapshot is None else self._snapshot.log
        for token in unique:
            record = wordinfo[token]
            if log is not None and token not in log:
                log[token] = record.copy()
            if is_spam:
                record.spamcount -= count
            else:
                record.hamcount -= count
            if record.is_empty():
                del wordinfo[token]
        self._prob_cache.clear()

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self) -> ReferenceSnapshot:
        if self._snapshot is not None:
            raise TrainingError("a snapshot is already active; restore it first")
        snap = ReferenceSnapshot(self, self._nspam, self._nham)
        self._snapshot = snap
        return snap

    def restore(self, snap: ReferenceSnapshot) -> None:
        if snap.owner is not self:
            raise TrainingError("snapshot belongs to a different classifier")
        if not snap.active or self._snapshot is not snap:
            raise TrainingError("snapshot is not active on this classifier")
        wordinfo = self._wordinfo
        for token, original in snap.log.items():
            if original is None:
                wordinfo.pop(token, None)
            else:
                wordinfo[token] = original
        self._nspam = snap.nspam
        self._nham = snap.nham
        snap.active = False
        self._snapshot = None
        self._prob_cache.clear()

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def spam_prob(self, token: str) -> float:
        cached = self._prob_cache.get(token)
        if cached is not None:
            return cached
        record = self._wordinfo.get(token)
        opts = self.options
        if record is None or record.total == 0:
            prob = opts.unknown_word_prob
        else:
            n = record.total
            ps = self._raw_score(record)
            s = opts.unknown_word_strength
            prob = (s * opts.unknown_word_prob + n * ps) / (s + n)
        self._prob_cache[token] = prob
        return prob

    def _raw_score(self, record: WordInfo) -> float:
        nham = self._nham
        nspam = self._nspam
        if nspam == 0 and nham == 0:
            return self.options.unknown_word_prob
        spam_ratio = record.spamcount / nspam if nspam else 0.0
        ham_ratio = record.hamcount / nham if nham else 0.0
        denominator = spam_ratio + ham_ratio
        if denominator == 0.0:
            return self.options.unknown_word_prob
        return spam_ratio / denominator

    def significant_tokens(self, tokens: Iterable[str]) -> list[tuple[str, float]]:
        opts = self.options
        minimum = opts.minimum_prob_strength
        scored = []
        for token in set(tokens):
            prob = self.spam_prob(token)
            strength = abs(prob - 0.5)
            if strength >= minimum:
                scored.append((strength, token, prob))
        scored.sort(key=lambda item: (-item[0], item[1]))
        return [(token, prob) for _, token, prob in scored[: opts.max_discriminators]]

    def score(self, tokens: Iterable[str]) -> float:
        return self._combine([prob for _, prob in self.significant_tokens(tokens)])

    def score_many(self, token_sets: Iterable[Iterable[str]]) -> list[float]:
        """The PR-1 bulk path: per-call string-keyed significance memo."""
        opts = self.options
        minimum = opts.minimum_prob_strength
        max_discriminators = opts.max_discriminators
        combine = self._combine
        wordinfo = self._wordinfo
        prob_cache = self._prob_cache
        unknown = opts.unknown_word_prob
        strength_s = opts.unknown_word_strength
        nspam = self._nspam
        nham = self._nham
        memo: dict[str, tuple[float, str, float] | None] = {}
        missing = (0.0, "", 0.0)
        results: list[float] = []
        for tokens in token_sets:
            unique = tokens if isinstance(tokens, (set, frozenset)) else set(tokens)
            scored = []
            for token in unique:
                entry = memo.get(token, missing)
                if entry is missing:
                    prob = prob_cache.get(token)
                    if prob is None:
                        record = wordinfo.get(token)
                        if record is None or record.total == 0:
                            prob = unknown
                        else:
                            n = record.total
                            if nspam == 0 and nham == 0:
                                ps = unknown
                            else:
                                spam_ratio = record.spamcount / nspam if nspam else 0.0
                                ham_ratio = record.hamcount / nham if nham else 0.0
                                denominator = spam_ratio + ham_ratio
                                ps = unknown if denominator == 0.0 else spam_ratio / denominator
                            prob = (strength_s * unknown + n * ps) / (strength_s + n)
                        prob_cache[token] = prob
                    strength = abs(prob - 0.5)
                    entry = (-strength, token, prob) if strength >= minimum else None
                    memo[token] = entry
                if entry is not None:
                    scored.append(entry)
            scored.sort()
            results.append(combine([item[2] for item in scored[:max_discriminators]]))
        return results

    @staticmethod
    def _combine(probs: Sequence[float]) -> float:
        if not probs:
            return 0.5
        spam_evidence = fisher_combine(probs)
        ham_evidence = fisher_combine([1.0 - p for p in probs])
        return (1.0 + spam_evidence - ham_evidence) / 2.0

    def copy(self) -> "ReferenceClassifier":
        clone = ReferenceClassifier(self.options)
        clone._nspam = self._nspam
        clone._nham = self._nham
        clone._wordinfo = {token: record.copy() for token, record in self._wordinfo.items()}
        return clone

    def __repr__(self) -> str:
        return (
            f"ReferenceClassifier(nspam={self._nspam}, nham={self._nham}, "
            f"vocabulary={len(self._wordinfo)})"
        )
