"""String <-> integer token interning.

Every hot loop in this reproduction — bulk fold scoring, attack-batch
training, the RONI gate — used to probe a ``dict[str, WordInfo]`` once
per token occurrence.  A :class:`TokenTable` removes the strings from
those loops: each distinct token is assigned a small dense integer ID
the first time it is seen, and everything downstream (count columns,
probability memos, encoded messages) is indexed by that ID.

Properties the rest of the system leans on:

* **append-only** — an ID, once assigned, never changes and never goes
  away, so encoded messages stay valid as the table grows (new attack
  vocabulary, new folds, new candidates);
* **shared per corpus** — one table serves a dataset and every
  classifier derived from it, so a message is encoded once and its ID
  array is reused across folds, attack batches, repetitions and worker
  processes;
* **dense** — IDs are ``0..len(table)-1``, which is what lets the
  classifier store counts in flat ``array`` columns and memoize
  probabilities in flat lists instead of hash tables;
* **seed-stable layout** — when a *batch* of new tokens is interned
  (:meth:`TokenTable.encode_unique`, the path every message, attack
  payload and training call goes through), the new tokens are assigned
  IDs in sorted text order.  Token sets arrive as ``set``/``frozenset``
  objects whose iteration order depends on ``PYTHONHASHSEED``; sorting
  before assignment makes the table layout — and everything ID-keyed
  downstream (count columns, snapshot WALs, persisted dumps, encoded
  arrays) — a pure function of *which* tokens were interned in *which
  batch order*, never of string-hash randomization.

Pickling ships only the token list (the dict side is rebuilt), so a
table crosses process boundaries at the cost of its vocabulary, not
twice it.
"""

from __future__ import annotations

from array import array
from typing import Callable, Iterable, Iterator, Sequence

__all__ = ["TokenTable", "build_text_ranks", "finish_encode"]

TOKEN_ID_TYPECODE = "l"
"""Array typecode used for token-ID storage throughout the project."""


def finish_encode(ids: list[int], new: list[str], intern: Callable[[str], int]) -> array:
    """Finish a bulk encode: intern ``new`` tokens, return sorted IDs.

    The seed-stability half of the encoding contract lives here, shared
    by every table implementation (in-memory and disk-backed): new
    tokens are interned in **sorted text order** so ID assignment never
    depends on set iteration order, and the combined ID list is sorted
    so identical token sets always encode to identical arrays.
    """
    if new:
        new.sort()
        for token in new:
            ids.append(intern(token))
    ids.sort()
    return array(TOKEN_ID_TYPECODE, ids)


def build_text_ranks(tokens: Sequence[str]) -> array:
    """Rank of each token's text in the sorted vocabulary.

    ``ranks[tid]`` is the position token ``tid`` would occupy if the
    vocabulary were sorted by text; Python's ``sorted`` does the
    ordering so the ranks reproduce exactly the string comparisons the
    pure-Python combiner makes.  Shared by every table implementation.
    """
    n = len(tokens)
    ranks = array(TOKEN_ID_TYPECODE, bytes(n * array(TOKEN_ID_TYPECODE).itemsize))
    order = sorted(range(n), key=tokens.__getitem__)
    for rank, tid in enumerate(order):
        ranks[tid] = rank
    return ranks


class TokenTable:
    """Append-only bidirectional ``str <-> int`` token registry."""

    __slots__ = ("_ids", "_tokens", "_rank_cache")

    def __init__(self, tokens: Iterable[str] = ()) -> None:
        self._ids: dict[str, int] = {}
        self._tokens: list[str] = []
        self._rank_cache: array | None = None
        for token in tokens:
            self.intern(token)

    # ------------------------------------------------------------------
    # Core interning
    # ------------------------------------------------------------------

    def intern(self, token: str) -> int:
        """Return ``token``'s ID, assigning the next dense ID if new."""
        tid = self._ids.get(token)
        if tid is None:
            tid = len(self._tokens)
            self._ids[token] = tid
            self._tokens.append(token)
        return tid

    def id_of(self, token: str) -> int | None:
        """The ID of ``token`` if already interned, else ``None``."""
        return self._ids.get(token)

    def token(self, token_id: int) -> str:
        """The token text for an assigned ID (raises IndexError if unassigned)."""
        return self._tokens[token_id]

    # ------------------------------------------------------------------
    # Bulk encoding
    # ------------------------------------------------------------------

    def encode_unique(self, tokens: Iterable[str]) -> array:
        """Encode a token stream as a sorted array of unique token IDs.

        Duplicates are collapsed (the classifier's presence/absence
        model) and new tokens are interned.  The result is sorted by ID
        so identical token sets encode to identical arrays — grouping
        and pickling stay deterministic.

        New tokens are interned in **sorted text order**, never in set
        iteration order: ``tokens`` is usually a ``set``/``frozenset``,
        whose iteration order varies with ``PYTHONHASHSEED``, and ID
        assignment must not.  Sorting pins the table layout (and every
        ID-keyed structure downstream) across runs, hash seeds and
        worker processes.
        """
        unique = tokens if isinstance(tokens, (set, frozenset)) else set(tokens)
        lookup = self._ids.get
        new: list[str] = []
        ids: list[int] = []
        for token in unique:
            tid = lookup(token)
            if tid is None:
                new.append(token)
            else:
                ids.append(tid)
        return finish_encode(ids, new, self.intern)

    def decode(self, ids: Sequence[int]) -> list[str]:
        """Token texts for a sequence of IDs (inverse of encoding)."""
        tokens = self._tokens
        return [tokens[tid] for tid in ids]

    def text_order_ranks(self) -> array:
        """Rank of each token's text in the table's sorted vocabulary.

        ``ranks[tid]`` is the position token ``tid`` would occupy if the
        vocabulary were sorted by text.  The vectorized scoring kernel
        uses these ranks to reproduce the pure-Python combiner's
        ``(−strength, token text)`` tie-break without comparing strings
        per message.  The array is cached and rebuilt only when the
        table has grown (the table is append-only, so its length is a
        complete cache key); Python's ``sorted`` does the ordering, so
        the rank order is exactly the string order the pure core sees.
        """
        cached = self._rank_cache
        n = len(self._tokens)
        if cached is None or len(cached) != n:
            self._rank_cache = cached = build_text_ranks(self._tokens)
        return cached

    # ------------------------------------------------------------------
    # Container behaviour
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._ids

    def __iter__(self) -> Iterator[str]:
        """Iterate tokens in ID order (ID ``i`` is the ``i``-th token)."""
        return iter(self._tokens)

    # ------------------------------------------------------------------
    # Pickling: ship the list, rebuild the dict
    # ------------------------------------------------------------------

    def __getstate__(self) -> list[str]:
        return self._tokens

    def __setstate__(self, tokens: list[str]) -> None:
        self._tokens = tokens
        self._ids = {token: tid for tid, token in enumerate(tokens)}
        self._rank_cache = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TokenTable(len={len(self._tokens)})"
