"""Email tokenization in the style of SpamBayes.

The paper notes (footnote 1) that the main difference between the
SpamBayes / BogoFilter / SpamAssassin learners is tokenization, and the
attacks are defined over the token space, so the tokenizer matters.
This module reproduces the behaviours of the SpamBayes tokenizer that
the attacks and experiments exercise:

* body words are split on whitespace, lowercased, and kept when their
  length is in ``[min_token_length, max_token_length]`` (3..12 by
  default);
* overlong words do not vanish — they become ``skip:<c> <n>`` tokens
  recording the first character and the length bucket, so an attacker
  cannot smuggle content past the learner with giant blobs;
* URLs decompose into ``proto:``, ``url:host`` and ``url:path`` pieces;
* email addresses decompose into local part and domain pieces;
* header values are tokenized with a per-header prefix
  (``subject:word``, ``from:addr:example.com``, ...) so that body text
  cannot impersonate header evidence — this is why the contamination
  assumption (attacker controls bodies, not headers) leaves the header
  token space clean.

Tokens are plain strings.  :meth:`Tokenizer.tokenize` returns a list
(the multiset); the classifier reduces it to a set because Robinson's
model is presence/absence (Section 2.3).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.spambayes.message import Email

__all__ = ["TokenizerOptions", "Tokenizer", "tokenize_text", "DEFAULT_TOKENIZER"]

_URL_RE = re.compile(r"(?:(https?|ftp)://|www\.)([^\s<>\"']+)", re.IGNORECASE)
_EMAIL_RE = re.compile(r"([\w.+-]+)@([\w-]+(?:\.[\w-]+)+)")
_WORD_SPLIT_RE = re.compile(r"[\s]+")
_NON_ALNUM_EDGE_RE = re.compile(r"^\W+|\W+$")
_SUBTOKEN_SPLIT_RE = re.compile(r"[^\w']+")
_MONEY_RE = re.compile(r"^\$\d[\d,]*(?:\.\d+)?$")


@dataclass(frozen=True, slots=True)
class TokenizerOptions:
    """Knobs of the tokenizer.

    ``tokenized_headers`` lists the headers whose *values* are worth
    tokenizing; anything else only contributes a presence token when
    ``record_header_presence`` is set (mirroring SpamBayes' behaviour of
    noticing unusual mailers without trusting arbitrary header text).
    """

    min_token_length: int = 3
    max_token_length: int = 12
    generate_skip_tokens: bool = True
    tokenize_headers: bool = True
    record_header_presence: bool = True
    tokenized_headers: tuple[str, ...] = (
        "subject",
        "from",
        "to",
        "cc",
        "reply-to",
        "x-mailer",
    )


DEFAULT_TOKENIZER_OPTIONS = TokenizerOptions()


class Tokenizer:
    """Stateless converter from :class:`Email` to token streams."""

    def __init__(self, options: TokenizerOptions = DEFAULT_TOKENIZER_OPTIONS) -> None:
        self.options = options
        # Options are frozen, so the header lookup set is hoisted here
        # instead of being rebuilt for every email.
        self._tokenized_headers = frozenset(options.tokenized_headers)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def tokenize(self, email: Email) -> list[str]:
        """Tokenize header and body of ``email`` into a token list."""
        tokens = list(self.tokenize_body(email.body))
        if self.options.tokenize_headers:
            tokens.extend(self.tokenize_headers(email))
        return tokens

    def tokenize_body(self, text: str) -> Iterator[str]:
        """Yield body tokens for raw text."""
        for chunk in _WORD_SPLIT_RE.split(text):
            if not chunk:
                continue
            yield from self._tokenize_chunk(chunk)

    def tokenize_headers(self, email: Email) -> Iterator[str]:
        """Yield prefixed tokens for the headers of ``email``."""
        wanted = self._tokenized_headers
        for name, value in email.iter_headers():
            lowered = name.lower()
            if lowered in wanted:
                yield from self._tokenize_header_value(lowered, value)
            elif self.options.record_header_presence:
                yield f"header:{lowered}:1"

    # ------------------------------------------------------------------
    # Body pieces
    # ------------------------------------------------------------------

    def _tokenize_chunk(self, chunk: str) -> Iterator[str]:
        url_match = _URL_RE.search(chunk)
        if url_match:
            yield from self._tokenize_url(url_match)
            return
        email_match = _EMAIL_RE.search(chunk)
        if email_match:
            yield from self._tokenize_address("email", email_match)
            return
        if _MONEY_RE.match(chunk):
            yield "money:$"
            return
        word = _NON_ALNUM_EDGE_RE.sub("", chunk).lower()
        if not word:
            return
        yield from self._emit_word(word)
        # Punctuation-joined compounds ("buy-now!!cheap") also contribute
        # their parts, like SpamBayes' split-on-non-alnum pass.
        if any(not ch.isalnum() and ch != "'" for ch in word):
            for part in _SUBTOKEN_SPLIT_RE.split(word):
                if part and part != word:
                    yield from self._emit_word(part)

    def _emit_word(self, word: str) -> Iterator[str]:
        opts = self.options
        length = len(word)
        if length < opts.min_token_length:
            return
        if length > opts.max_token_length:
            if opts.generate_skip_tokens:
                bucket = (length // 10) * 10
                yield f"skip:{word[0]} {bucket}"
            return
        yield word

    def _tokenize_url(self, match: re.Match[str]) -> Iterator[str]:
        proto = (match.group(1) or "http").lower()
        rest = match.group(2)
        yield f"proto:{proto}"
        host, _, path = rest.partition("/")
        host = host.lower().strip(".")
        if host:
            yield f"url:{host}"
            # Domain suffix pieces let the learner generalize over hosts.
            pieces = host.split(".")
            for start in range(1, len(pieces) - 1):
                yield f"url:{'.'.join(pieces[start:])}"
        for component in _SUBTOKEN_SPLIT_RE.split(path.lower()):
            if len(component) >= self.options.min_token_length:
                yield f"url:{component}"

    def _tokenize_address(self, prefix: str, match: re.Match[str]) -> Iterator[str]:
        local, domain = match.group(1).lower(), match.group(2).lower()
        yield f"{prefix} name:{local}"
        yield f"{prefix} addr:{domain}"
        pieces = domain.split(".")
        for start in range(1, len(pieces) - 1):
            yield f"{prefix} addr:{'.'.join(pieces[start:])}"

    # ------------------------------------------------------------------
    # Header pieces
    # ------------------------------------------------------------------

    def _tokenize_header_value(self, name: str, value: str) -> Iterator[str]:
        if name in ("from", "to", "cc", "reply-to"):
            yield from self._tokenize_address_header(name, value)
            return
        # Subject-like headers: tokenize words, keep short words too —
        # SpamBayes deliberately keeps even 1-character subject tokens
        # because subjects are short and dense with signal.
        for chunk in _SUBTOKEN_SPLIT_RE.split(value.lower()):
            if chunk:
                yield f"{name}:{chunk}"

    def _tokenize_address_header(self, name: str, value: str) -> Iterator[str]:
        email_match = _EMAIL_RE.search(value)
        if email_match:
            local, domain = email_match.group(1).lower(), email_match.group(2).lower()
            yield f"{name}:addr:{local}"
            yield f"{name}:addr:{domain}"
        else:
            yield f"{name}:no-address"
        display = _EMAIL_RE.sub("", value)
        for chunk in _SUBTOKEN_SPLIT_RE.split(display.lower()):
            if len(chunk) >= 2:
                yield f"{name}:name:{chunk}"


DEFAULT_TOKENIZER = Tokenizer()
"""Shared default tokenizer instance (stateless, safe to share)."""


def tokenize_text(text: str, tokenizer: Tokenizer | None = None) -> list[str]:
    """Tokenize raw wire-format text (or a bare body) into tokens.

    Convenience wrapper: parses ``text`` as an :class:`Email` first so
    header tokens are produced when the text has headers.
    """
    email = Email.from_text(text)
    return (tokenizer or DEFAULT_TOKENIZER).tokenize(email)
