"""Per-token training statistics.

One :class:`WordInfo` record exists per token ever seen in training.
It stores only the two counts the Robinson score needs — how many spam
and how many ham training messages contained the token.  Counts are
per-*message* (presence/absence), not per-occurrence, matching the
independence model of Section 2.3.
"""

from __future__ import annotations

__all__ = ["WordInfo"]


class WordInfo:
    """Mutable (spamcount, hamcount) pair with a tiny footprint.

    A trained classifier holds one of these per vocabulary entry —
    a dictionary attack pushes the vocabulary towards 10^5 tokens, so
    ``__slots__`` keeps memory linear and small.
    """

    __slots__ = ("spamcount", "hamcount")

    def __init__(self, spamcount: int = 0, hamcount: int = 0) -> None:
        self.spamcount = spamcount
        self.hamcount = hamcount

    @property
    def total(self) -> int:
        """N(w): number of training messages containing the token."""
        return self.spamcount + self.hamcount

    def is_empty(self) -> bool:
        """True when no training message references the token any more."""
        return self.spamcount == 0 and self.hamcount == 0

    def copy(self) -> "WordInfo":
        return WordInfo(self.spamcount, self.hamcount)

    def __getstate__(self) -> tuple[int, int]:
        # A bare (spam, ham) tuple instead of the default __slots__
        # dict: a trained classifier pickles one record per vocabulary
        # entry when shipped to sweep workers, so state compactness is
        # transfer speed.
        return (self.spamcount, self.hamcount)

    def __setstate__(self, state: tuple[int, int]) -> None:
        self.spamcount, self.hamcount = state

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WordInfo):
            return NotImplemented
        return self.spamcount == other.spamcount and self.hamcount == other.hamcount

    def __repr__(self) -> str:
        return f"WordInfo(spamcount={self.spamcount}, hamcount={self.hamcount})"
