"""Pluggable storage layer: where tables, counts and corpora live.

``REPRO_STORE=memory|disk|auto`` selects the backend; see
:mod:`repro.storage.base` for the protocol and the determinism
argument, :mod:`repro.storage.memory` and :mod:`repro.storage.disk`
for the two implementations, and :mod:`repro.storage.io` for the
shared save/load payload helpers.
"""

from repro.storage.base import (
    STORE_DIR_ENV,
    STORE_ENV,
    StorageBackend,
    active_backend,
    pid_alive,
    store_name,
)
from repro.storage.disk import (
    STORE_PREFIX,
    DiskBackend,
    DiskMessageStore,
    DiskTokenTable,
    MmapCountColumns,
    gc_stores,
    orphaned_stores,
    store_root,
)
from repro.storage.memory import (
    MemoryBackend,
    MemoryCountColumns,
    NDMemoryCountColumns,
)

__all__ = [
    "STORE_DIR_ENV",
    "STORE_ENV",
    "STORE_PREFIX",
    "DiskBackend",
    "DiskMessageStore",
    "DiskTokenTable",
    "MemoryBackend",
    "MemoryCountColumns",
    "MmapCountColumns",
    "NDMemoryCountColumns",
    "StorageBackend",
    "active_backend",
    "gc_stores",
    "orphaned_stores",
    "pid_alive",
    "store_name",
    "store_root",
]
