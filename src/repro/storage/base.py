"""Backend selection and the storage protocol every consumer codes to.

The storage layer owns three kinds of state that previously lived as
hard-coded in-memory structures:

* the append-only **token table** (``str <-> int`` interning with a
  seed-stable layout — see :mod:`repro.spambayes.token_table`),
* the classifier's **spam/ham count columns** (flat integer columns
  indexed by token ID),
* encoded **message corpora** (per-message sorted token-ID arrays plus
  the gold label).

A :class:`StorageBackend` decides where each lives.  Two ship:

* ``memory`` — the original in-memory structures, extracted verbatim
  (:mod:`repro.storage.memory`); byte-identical behaviour to the
  pre-storage-layer code by construction;
* ``disk`` — SQLite-backed token tables and message stores plus
  mmap-backed count columns (:mod:`repro.storage.disk`), so corpora
  and vocabulary spill to disk instead of capping at RAM.

Selection is environmental (``REPRO_STORE=memory|disk|auto``),
mirroring ``REPRO_KERNEL``: ``auto`` (or unset) means ``memory`` — the
disk backend is opt-in because it trades speed for bounded RSS.  The
**determinism contract survives the choice**: records never depend on
the token-table layout (scoring tie-breaks compare token *text*,
persisted dumps sort by text), so ``REPRO_STORE=memory`` and
``REPRO_STORE=disk`` produce byte-identical scenario, replicate and
stream records — ``tests/test_storage_differential.py`` proves it the
same way the ND-kernel and fault suites prove their contracts.

Backends are **per process**: :func:`active_backend` keys its cache on
``(pid, name)``, so a forked worker lazily builds its own backend (its
own SQLite connections, its own store directory) instead of sharing
file handles across the fork — SQLite connections must never cross a
fork boundary.  Cleanup is registered both with :mod:`atexit` (the
parent) and ``multiprocessing.util.Finalize`` (pool workers exit via
``os._exit`` and skip atexit); stores orphaned by SIGKILL are
reclaimed by the ``repro gc`` janitor (:func:`repro.storage.disk.
gc_stores`), which decides liveness from the pid baked into each
store-directory name — exactly like the shared-memory janitor.
"""

from __future__ import annotations

import atexit
import os

from repro.errors import ConfigurationError

__all__ = [
    "STORE_DIR_ENV",
    "STORE_ENV",
    "StorageBackend",
    "active_backend",
    "pid_alive",
    "store_name",
]

STORE_ENV = "REPRO_STORE"
"""Environment variable selecting the storage backend (memory/disk/auto)."""

STORE_DIR_ENV = "REPRO_STORE_DIR"
"""Directory the disk backend roots its stores under (default: tempdir)."""


def store_name() -> str:
    """Resolve the active backend name from ``REPRO_STORE``.

    ``auto`` (or unset) picks ``memory``: the in-memory backend is the
    reproduction's historical behaviour and the fastest path, so disk
    spilling is strictly opt-in.  Unknown values are a configuration
    error rather than a silent default.
    """
    value = os.environ.get(STORE_ENV, "auto").strip().lower() or "auto"
    if value == "auto":
        return "memory"
    if value not in ("memory", "disk"):
        raise ConfigurationError(
            f"{STORE_ENV} must be 'memory', 'disk' or 'auto', got {value!r}"
        )
    return value


def pid_alive(pid: int) -> bool:
    """True when a process with ``pid`` exists (signal-0 probe).

    Shared by every janitor that decides orphan-ness from a pid baked
    into a resource name (shared-memory segments, on-disk stores).
    """
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned elsewhere
        return True
    return True


class StorageBackend:
    """What a storage backend provides; see the module docstring.

    The interface is deliberately small — everything the classifier,
    the corpus layer and persistence need, nothing more:

    * :meth:`new_token_table` — a fresh append-only token table (the
      unit a classifier owns when none is shared with it);
    * :meth:`count_columns` — a column store whose ``grow(n)`` returns
      the ``(spam, ham)`` count columns sized to ``n`` IDs; ``kind``
      is ``"pure"`` (indexable buffers for the pure-Python kernel) or
      ``"nd"`` (NumPy int64 arrays for the vectorized kernel);
    * :meth:`corpus_store` — a message store for streaming corpus
      ingestion, or ``None`` when corpora stay in RAM (the memory
      backend), which is what corpus builders branch on.
    """

    name: str = "abstract"

    def new_token_table(self):
        raise NotImplementedError

    def count_columns(self, kind: str):
        raise NotImplementedError

    def corpus_store(self):
        raise NotImplementedError

    def close(self) -> None:
        """Release file handles (idempotent; memory backends no-op)."""

    def destroy(self) -> None:
        """Close and remove any on-disk state (idempotent)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


# (pid, backend name) -> backend.  Pid-keyed so forked workers build
# their own backends instead of inheriting open SQLite connections.
_active: dict[tuple[int, str], StorageBackend] = {}


def active_backend() -> StorageBackend:
    """The process's backend for the current ``REPRO_STORE`` setting.

    Read dynamically (never cached at import), so tests can flip the
    environment mid-process and the next call honours it; each
    resolved name keeps one backend per process for its lifetime.
    """
    name = store_name()
    key = (os.getpid(), name)
    backend = _active.get(key)
    if backend is None:
        if name == "disk":
            from repro.storage.disk import DiskBackend

            backend = DiskBackend.create()
        else:
            from repro.storage.memory import MemoryBackend

            backend = MemoryBackend()
        _active[key] = backend
        _register_cleanup()
    return backend


_cleanup_registered_for: int | None = None


def _destroy_own_backends() -> None:
    """Destroy every backend this process created (exit backstop)."""
    pid = os.getpid()
    for key in [k for k in _active if k[0] == pid]:
        backend = _active.pop(key)
        try:
            backend.destroy()
        except OSError:  # pragma: no cover - cleanup is best-effort
            pass


def _register_cleanup() -> None:
    """Arm exit-time destruction in this process (once per pid).

    Pool workers exit through ``os._exit`` — atexit never runs there —
    but ``multiprocessing.util``'s finalizers do, so both hooks are
    registered; destruction is idempotent, so firing twice is safe.
    """
    global _cleanup_registered_for
    pid = os.getpid()
    if _cleanup_registered_for == pid:
        return
    _cleanup_registered_for = pid
    atexit.register(_destroy_own_backends)
    try:  # pragma: no branch - stdlib, but optional on exotic builds
        from multiprocessing import util as _mp_util

        _mp_util.Finalize(None, _destroy_own_backends, exitpriority=10)
    except ImportError:  # pragma: no cover
        pass
