"""The disk storage backend: SQLite tables + mmap count columns.

Three pieces, mirroring the protocol in :mod:`repro.storage.base`:

* :class:`DiskTokenTable` — the append-only ``str <-> int`` registry
  backed by a SQLite table, with a bounded in-process cache.  It is a
  drop-in :class:`~repro.spambayes.token_table.TokenTable`: the same
  dense-ID, append-only, **seed-stable layout** contract (new tokens
  in a batch are interned in sorted text order via the shared
  :func:`~repro.spambayes.token_table.finish_encode` helper), so every
  ID-keyed structure downstream behaves identically.
* :class:`MmapCountColumns` — spam/ham count columns in file-backed
  ``mmap`` regions with geometric capacity growth.  File-backed pages
  are reclaimable by the OS and do **not** count against
  ``RLIMIT_DATA``, which is what lets a capped process score folds
  over vocabularies it could not hold as private anonymous memory.
* :class:`DiskMessageStore` — encoded corpora as rows of
  ``(msgid, label, sorted token-ID blob)``; streaming ingestion
  appends one row per message so a corpus never fully materializes.

Every store lives under one backend-owned directory named
``repro_store_<pid-hex>_<salt>`` (under ``REPRO_STORE_DIR`` or the
system tempdir).  The pid in the name is the crash-cleanup story:
:func:`gc_stores` — the ``repro gc`` janitor — removes directories
whose owning process is gone, exactly like the shared-memory segment
janitor in :mod:`repro.engine.sharedmem`.

SQLite connections never cross a fork boundary: each table/store keys
its connection by ``os.getpid()`` and lazily opens a fresh one in a
forked child — which makes inherited handles safe to *read* (corpus
rows, token lookups).  Inherited handles are NOT safe to *write*: two
forked siblings interning into one SQLite file race on the dense ID
sequence, and count columns are ``MAP_SHARED`` so a child's writes
would bleed into the parent.  The engine therefore never ships a
writable disk-backed object across a fork by inheritance: shared-pool
maps pickle their contexts (this class reduces to a plain in-memory
``TokenTable``), and private-pool maps roundtrip the context through
pickle first when the disk backend is active (see
``ParallelRunner.map``); forked children needing their own stores
build fresh backends via ``active_backend``.
"""

from __future__ import annotations

import os
import shutil
import sqlite3
import tempfile
from array import array
from pathlib import Path
from typing import Iterator

import mmap as _mmap

from repro.spambayes.token_table import (
    TOKEN_ID_TYPECODE,
    TokenTable,
    build_text_ranks,
    finish_encode,
)
from repro.storage.base import STORE_DIR_ENV, StorageBackend, pid_alive

__all__ = [
    "STORE_PREFIX",
    "DiskBackend",
    "DiskMessageStore",
    "DiskTokenTable",
    "MmapCountColumns",
    "gc_stores",
    "orphaned_stores",
    "store_root",
]

STORE_PREFIX = "repro_store_"
"""Directory-name prefix for on-disk stores (janitor discovery key)."""

# SQLite's default host-parameter limit is 999; stay well under it
# when expanding ``IN (?, ?, ...)`` lists.
_CHUNK = 512

_ITEMSIZE = array(TOKEN_ID_TYPECODE).itemsize


def _connect(db_path: str) -> sqlite3.Connection:
    """Open an autocommit connection tuned for disposable stores.

    Stores are scratch state recreated from scratch every run, so
    durability machinery (journal, fsync) is pure overhead — a crash
    loses nothing that the janitor will not sweep anyway.
    """
    # check_same_thread=False: connections are pid-keyed, not
    # thread-keyed, and the engine may touch a store from a worker
    # thread while exit cleanup runs on the main one.  CPython's
    # sqlite3 is compiled in serialized threading mode, so sharing a
    # connection across threads is safe at the library level.
    conn = sqlite3.connect(db_path, isolation_level=None, check_same_thread=False)
    conn.execute("PRAGMA journal_mode=OFF")
    conn.execute("PRAGMA synchronous=OFF")
    return conn


class DiskTokenTable(TokenTable):
    """A :class:`TokenTable` whose vocabulary lives in SQLite.

    The bounded token/text caches are pure accelerators: a miss falls
    back to a SELECT, so cache state can never change results, only
    latency.  Pickling degrades to a plain in-memory ``TokenTable``
    (``__reduce__``), matching the existing convention that tables
    cross process boundaries by value.
    """

    __slots__ = ("_db_path", "_conns", "_cache", "_rcache", "_cache_limit", "_len")

    def __init__(self, db_path: str | Path, cache_limit: int = 1 << 16) -> None:
        # Deliberately no super().__init__(): the list/dict storage is
        # replaced wholesale; only ``_rank_cache`` is reused.
        self._db_path = str(db_path)
        self._conns: dict[int, sqlite3.Connection] = {}
        self._cache: dict[str, int] = {}
        self._rcache: dict[int, str] = {}
        self._cache_limit = cache_limit
        self._rank_cache = None
        conn = self._conn()
        self._len = int(conn.execute("SELECT COUNT(*) FROM tokens").fetchone()[0])

    @property
    def db_path(self) -> str:
        return self._db_path

    def _conn(self) -> sqlite3.Connection:
        pid = os.getpid()
        conn = self._conns.get(pid)
        if conn is None:
            conn = _connect(self._db_path)
            conn.execute(
                "CREATE TABLE IF NOT EXISTS tokens "
                "(id INTEGER PRIMARY KEY, text TEXT NOT NULL UNIQUE)"
            )
            self._conns[pid] = conn
        return conn

    def _cache_put(self, cache: dict, key, value) -> None:
        if len(cache) >= self._cache_limit:
            # FIFO eviction; dicts preserve insertion order.
            cache.pop(next(iter(cache)))
        cache[key] = value

    # ------------------------------------------------------------------
    # Core interning
    # ------------------------------------------------------------------

    def intern(self, token: str) -> int:
        tid = self._cache.get(token)
        if tid is not None:
            return tid
        conn = self._conn()
        row = conn.execute("SELECT id FROM tokens WHERE text = ?", (token,)).fetchone()
        if row is not None:
            tid = int(row[0])
        else:
            tid = self._len
            conn.execute("INSERT INTO tokens (id, text) VALUES (?, ?)", (tid, token))
            self._len += 1
        self._cache_put(self._cache, token, tid)
        return tid

    def id_of(self, token: str) -> int | None:
        tid = self._cache.get(token)
        if tid is not None:
            return tid
        row = self._conn().execute(
            "SELECT id FROM tokens WHERE text = ?", (token,)
        ).fetchone()
        if row is None:
            return None
        tid = int(row[0])
        self._cache_put(self._cache, token, tid)
        return tid

    def token(self, token_id: int) -> str:
        tid = token_id + self._len if token_id < 0 else token_id
        if not 0 <= tid < self._len:
            raise IndexError(f"token id {token_id} out of range")
        text = self._rcache.get(tid)
        if text is None:
            row = self._conn().execute(
                "SELECT text FROM tokens WHERE id = ?", (tid,)
            ).fetchone()
            text = row[0]
            self._cache_put(self._rcache, tid, text)
        return text

    # ------------------------------------------------------------------
    # Bulk encoding
    # ------------------------------------------------------------------

    def _lookup_many(self, tokens: list[str]) -> dict[str, int]:
        found: dict[str, int] = {}
        conn = self._conn()
        for start in range(0, len(tokens), _CHUNK):
            chunk = tokens[start : start + _CHUNK]
            marks = ",".join("?" * len(chunk))
            for text, tid in conn.execute(
                f"SELECT text, id FROM tokens WHERE text IN ({marks})", chunk
            ):
                found[text] = int(tid)
        return found

    def encode_unique(self, tokens) -> array:
        unique = tokens if isinstance(tokens, (set, frozenset)) else set(tokens)
        cache_get = self._cache.get
        ids: list[int] = []
        misses: list[str] = []
        for token in unique:
            tid = cache_get(token)
            if tid is None:
                misses.append(token)
            else:
                ids.append(tid)
        new: list[str] = []
        if misses:
            # Sorted so cache state evolves the same way regardless of
            # set iteration order (results never depend on it anyway —
            # finish_encode sorts — but deterministic state is cheap).
            misses.sort()
            found = self._lookup_many(misses)
            for token in misses:
                tid = found.get(token)
                if tid is None:
                    new.append(token)
                else:
                    ids.append(tid)
                    self._cache_put(self._cache, token, tid)
        if not new:
            ids.sort()
            return array(TOKEN_ID_TYPECODE, ids)
        return finish_encode(ids, new, self._intern_batch(new))

    def _intern_batch(self, new: list[str]):
        """An ``intern`` for :func:`finish_encode` that writes once.

        ``finish_encode`` calls it per token in sorted order; rows are
        buffered and flushed in a single transaction at the last one.
        """
        rows: list[tuple[int, str]] = []
        total = len(new)

        def intern(token: str) -> int:
            tid = self._len
            self._len += 1
            rows.append((tid, token))
            self._cache_put(self._cache, token, tid)
            if len(rows) == total:
                conn = self._conn()
                conn.execute("BEGIN")
                conn.executemany("INSERT INTO tokens (id, text) VALUES (?, ?)", rows)
                conn.execute("COMMIT")
            return tid

        return intern

    def decode(self, ids) -> list[str]:
        rcache = self._rcache
        out: list[str | None] = [None] * len(ids)
        missing: list[tuple[int, int]] = []
        for position, tid in enumerate(ids):
            text = rcache.get(tid)
            if text is None:
                missing.append((position, tid))
            else:
                out[position] = text
        if missing:
            conn = self._conn()
            wanted = sorted({tid for _, tid in missing})
            found: dict[int, str] = {}
            for start in range(0, len(wanted), _CHUNK):
                chunk = wanted[start : start + _CHUNK]
                marks = ",".join("?" * len(chunk))
                for tid, text in conn.execute(
                    f"SELECT id, text FROM tokens WHERE id IN ({marks})", chunk
                ):
                    found[int(tid)] = text
            for position, tid in missing:
                text = found[tid]
                out[position] = text
                self._cache_put(rcache, tid, text)
        return out  # type: ignore[return-value]

    def text_order_ranks(self) -> array:
        cached = self._rank_cache
        n = self._len
        if cached is None or len(cached) != n:
            # The full vocabulary is fetched transiently: ranks are an
            # O(vocab) array either way, and Python's sorted() must do
            # the ordering so ranks match the pure combiner exactly.
            tokens = [
                text
                for (text,) in self._conn().execute(
                    "SELECT text FROM tokens ORDER BY id"
                )
            ]
            self._rank_cache = cached = build_text_ranks(tokens)
        return cached

    # ------------------------------------------------------------------
    # Container behaviour
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._len

    def __contains__(self, token: str) -> bool:
        return self.id_of(token) is not None

    def __iter__(self) -> Iterator[str]:
        for (text,) in self._conn().execute("SELECT text FROM tokens ORDER BY id"):
            yield text

    # ------------------------------------------------------------------
    # Pickling: degrade to an in-memory table by value
    # ------------------------------------------------------------------

    def __reduce__(self):
        return (TokenTable, (list(self),))

    def close(self) -> None:
        """Close this process's connection (others close their own)."""
        conn = self._conns.pop(os.getpid(), None)
        if conn is not None:
            conn.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiskTokenTable(len={self._len}, db={self._db_path!r})"


class MmapCountColumns:
    """Spam/ham count columns in file-backed mmap regions.

    ``grow(n)`` returns length-``n`` views — ``memoryview('q')`` casts
    for the pure kernel (``kind='pure'``), writable ``numpy`` int64
    arrays for the vectorized one (``kind='nd'``).  Capacity grows
    geometrically by ``ftruncate`` + remap; ``ftruncate`` zero-fills
    the extension, which is exactly the "new IDs start at zero counts"
    contract.  Old mmaps are simply dropped: any outstanding views
    keep them alive until released, so earlier views stay valid.
    """

    __slots__ = ("_kind", "_paths", "_files", "_maps", "_capacity", "_length")

    def __init__(self, path_stem: str | Path, kind: str) -> None:
        self._kind = kind
        stem = Path(path_stem)
        self._paths = (stem.with_name(stem.name + ".spam"), stem.with_name(stem.name + ".ham"))
        self._files = [open(path, "w+b") for path in self._paths]
        self._maps: list[_mmap.mmap | None] = [None, None]
        self._capacity = 0
        self._length = 0
        self._remap(1024)

    def _remap(self, capacity: int) -> None:
        for handle in self._files:
            handle.truncate(capacity * _ITEMSIZE)
        self._maps = [
            _mmap.mmap(handle.fileno(), capacity * _ITEMSIZE) for handle in self._files
        ]
        self._capacity = capacity

    def _view(self, index: int, n: int):
        mm = self._maps[index]
        if self._kind == "nd":
            import numpy as np

            return np.frombuffer(mm, dtype=np.int64, count=n)
        return memoryview(mm)[: n * _ITEMSIZE].cast("q")

    def grow(self, n: int):
        if n > self._capacity:
            self._remap(max(n, 2 * self._capacity))
        self._length = max(self._length, n)
        return self._view(0, n), self._view(1, n)

    def close(self) -> None:
        for index, mm in enumerate(self._maps):
            if mm is not None:
                try:
                    mm.close()
                except BufferError:  # pragma: no cover - views still exported
                    pass
                self._maps[index] = None
        for handle in self._files:
            if not handle.closed:
                handle.close()


class DiskMessageStore:
    """Encoded corpus rows: ``(index, msgid, label, token-ID blob)``.

    Append-only like everything else in the pipeline; ``ids`` blobs
    are the raw bytes of the sorted ``array('l')`` the table produced,
    so a fetch is one SELECT plus ``frombytes``.  ``table`` is the
    ingest :class:`DiskTokenTable` the blobs are encoded against —
    stored-message handles use the identity to hand back stored rows
    zero-copy and re-encode against any other table.
    """

    __slots__ = ("table", "_db_path", "_conns", "_len")

    def __init__(self, db_path: str | Path, table: DiskTokenTable) -> None:
        self.table = table
        self._db_path = str(db_path)
        self._conns: dict[int, sqlite3.Connection] = {}
        conn = self._conn()
        self._len = int(conn.execute("SELECT COUNT(*) FROM messages").fetchone()[0])

    def _conn(self) -> sqlite3.Connection:
        pid = os.getpid()
        conn = self._conns.get(pid)
        if conn is None:
            conn = _connect(self._db_path)
            conn.execute(
                "CREATE TABLE IF NOT EXISTS messages "
                "(i INTEGER PRIMARY KEY, msgid TEXT NOT NULL, "
                "is_spam INTEGER NOT NULL, ids BLOB NOT NULL)"
            )
            self._conns[pid] = conn
        return conn

    def append(self, msgid: str, is_spam: bool, ids: array) -> int:
        row = self._len
        self._conn().execute(
            "INSERT INTO messages (i, msgid, is_spam, ids) VALUES (?, ?, ?, ?)",
            (row, msgid, 1 if is_spam else 0, ids.tobytes()),
        )
        self._len += 1
        return row

    def ids(self, row: int) -> array:
        blob = self._conn().execute(
            "SELECT ids FROM messages WHERE i = ?", (row,)
        ).fetchone()[0]
        out = array(TOKEN_ID_TYPECODE)
        out.frombytes(blob)
        return out

    def msgid(self, row: int) -> str:
        return self._conn().execute(
            "SELECT msgid FROM messages WHERE i = ?", (row,)
        ).fetchone()[0]

    def __len__(self) -> int:
        return self._len

    def close(self) -> None:
        conn = self._conns.pop(os.getpid(), None)
        if conn is not None:
            conn.close()


class DiskBackend(StorageBackend):
    """One store directory per process; see the module docstring."""

    name = "disk"

    def __init__(self, root: Path) -> None:
        self._root = Path(root)
        self._owner_pid = os.getpid()
        self._counter = 0
        self._resources: list = []
        self._destroyed = False

    @classmethod
    def create(cls) -> "DiskBackend":
        root = store_root()
        root.mkdir(parents=True, exist_ok=True)
        salt = int.from_bytes(os.urandom(4), "big")
        path = root / f"{STORE_PREFIX}{os.getpid():x}_{salt:08x}"
        path.mkdir()
        return cls(path)

    @property
    def path(self) -> Path:
        return self._root

    def _next(self, stem: str) -> Path:
        self._counter += 1
        return self._root / f"{stem}_{self._counter:04d}"

    def new_token_table(self) -> DiskTokenTable:
        table = DiskTokenTable(self._next("tokens").with_suffix(".db"))
        self._resources.append(table)
        return table

    def count_columns(self, kind: str) -> MmapCountColumns:
        columns = MmapCountColumns(self._next("cols"), kind)
        self._resources.append(columns)
        return columns

    def corpus_store(self) -> DiskMessageStore:
        # One file per corpus holding both its token table and its
        # message rows — the blobs and the table they are encoded
        # against travel together.
        path = self._next("corpus").with_suffix(".db")
        table = DiskTokenTable(path)
        store = DiskMessageStore(path, table)
        self._resources.extend((store, table))
        return store

    def close(self) -> None:
        for resource in self._resources:
            resource.close()

    def destroy(self) -> None:
        if self._destroyed or self._owner_pid != os.getpid():
            return
        self._destroyed = True
        self.close()
        shutil.rmtree(self._root, ignore_errors=True)


# ----------------------------------------------------------------------
# Janitor: reclaim stores left by dead processes (``repro gc``)
# ----------------------------------------------------------------------


def store_root() -> Path:
    """Where store directories live (``REPRO_STORE_DIR`` or tempdir)."""
    return Path(os.environ.get(STORE_DIR_ENV) or tempfile.gettempdir())


def _pid_of_store(name: str) -> int | None:
    """Owning pid parsed from a store-directory name, else ``None``."""
    if not name.startswith(STORE_PREFIX):
        return None
    fields = name[len(STORE_PREFIX) :].split("_")
    if len(fields) != 2:
        return None
    try:
        return int(fields[0], 16)
    except ValueError:
        return None


def orphaned_stores(include_live: bool = False) -> list[Path]:
    """Store directories whose owning process is gone.

    Mirrors ``sharedmem.orphaned_segments``: never lists this
    process's own stores, and ``include_live=True`` widens the sweep
    to other live owners (the ``--all`` escape hatch).
    """
    root = store_root()
    try:
        entries = sorted(path for path in root.iterdir() if path.is_dir())
    except OSError:  # pragma: no cover - root vanished mid-scan
        return []
    own_pid = os.getpid()
    orphans: list[Path] = []
    for path in entries:
        pid = _pid_of_store(path.name)
        if pid is None or pid == own_pid:
            continue
        if include_live or not pid_alive(pid):
            orphans.append(path)
    return orphans


def gc_stores(include_live: bool = False) -> list[str]:
    """Remove orphaned store directories; returns the paths removed.

    Removal races (the owner exiting and cleaning up concurrently) are
    tolerated the same way the shm janitor tolerates them: a directory
    that vanishes mid-removal simply is not reported.
    """
    removed: list[str] = []
    for path in orphaned_stores(include_live=include_live):
        try:
            shutil.rmtree(path)
        except FileNotFoundError:  # pragma: no cover - lost the race
            continue
        except OSError:  # pragma: no cover - owner still writing
            continue
        removed.append(str(path))
    return removed
