"""Shared file-payload helpers for every save/load path.

One place for the two concerns persistence and checkpointing used to
duplicate:

* **gzip-by-suffix** — a ``.gz`` path is transparently compressed on
  write and decompressed on read, same text semantics either way;
* **atomic replace** — payloads land via a temporary sibling +
  ``os.replace`` so a crash mid-write can never leave a truncated
  file where a reader expects a complete one.

Helpers raise ``OSError`` (and ``gzip`` errors, which subclass it);
callers wrap into their own error taxonomy (``PersistenceError``).
"""

from __future__ import annotations

import gzip
import os
from pathlib import Path

__all__ = [
    "atomic_write_text",
    "is_gzip_path",
    "read_payload_text",
    "write_payload_text",
]

_ENCODING = "utf-8"


def is_gzip_path(path: Path) -> bool:
    """Compression is keyed on the suffix so files self-describe."""
    return path.suffix.lower() == ".gz"


def read_payload_text(path: Path) -> str:
    """Read a text payload, decompressing when the suffix says so."""
    path = Path(path)
    if is_gzip_path(path):
        with gzip.open(path, "rt", encoding=_ENCODING) as handle:
            return handle.read()
    return path.read_text(encoding=_ENCODING)


def write_payload_text(path: Path, text: str) -> None:
    """Atomically write a text payload, compressing ``.gz`` paths.

    The temporary sibling carries the final name plus ``.tmp.<pid>``
    so concurrent writers from different processes never collide, and
    ``os.replace`` keeps the swap atomic on POSIX.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        if is_gzip_path(path):
            # mtime=0 and an empty embedded filename keep the
            # compressed payload deterministic: the same classifier
            # state always produces the same bytes, whatever the path.
            with open(tmp, "wb") as raw:
                with gzip.GzipFile(
                    filename="", fileobj=raw, mode="wb", mtime=0
                ) as handle:
                    handle.write(text.encode(_ENCODING))
        else:
            tmp.write_text(text, encoding=_ENCODING)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed write
            tmp.unlink()


def atomic_write_text(path: Path, text: str) -> None:
    """Plain-text atomic write (no gzip branch) for checkpoints."""
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        tmp.write_text(text, encoding=_ENCODING)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed write
            tmp.unlink()
