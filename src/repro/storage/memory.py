"""The in-memory storage backend: the reproduction's historical state.

Everything here is the pre-storage-layer behaviour *extracted*, not
rewritten: :class:`MemoryCountColumns.grow` is the classifier's old
``_ensure_columns`` body (``array.frombytes`` of a zero block) and
:class:`NDMemoryCountColumns.grow` is the ND kernel's old geometric
buffer doubling, moved verbatim so the memory path stays
byte-identical — including pickle payloads, which still ship plain
``array('l')`` / ``ndarray`` columns.

The memory backend has no corpus store (:meth:`MemoryBackend.
corpus_store` returns ``None``): corpus builders see ``None`` and take
the original list-of-``LabeledMessage`` path unchanged.
"""

from __future__ import annotations

from array import array

from repro.spambayes.token_table import TOKEN_ID_TYPECODE, TokenTable
from repro.storage.base import StorageBackend

__all__ = ["MemoryBackend", "MemoryCountColumns", "NDMemoryCountColumns"]


class MemoryCountColumns:
    """Plain ``array('l')`` spam/ham columns for the pure kernel.

    ``grow(n)`` extends both columns with zeros to cover ``n`` token
    IDs and returns them; the arrays are extended in place, so views
    handed out earlier stay valid (they are the same objects).
    """

    __slots__ = ("spam", "ham")

    def __init__(self, spam: array | None = None, ham: array | None = None) -> None:
        self.spam = spam if spam is not None else array(TOKEN_ID_TYPECODE)
        self.ham = ham if ham is not None else array(TOKEN_ID_TYPECODE)

    def grow(self, n: int) -> tuple[array, array]:
        grow = n - len(self.spam)
        if grow > 0:
            zeros = bytes(grow * self.spam.itemsize)
            self.spam.frombytes(zeros)
            self.ham.frombytes(zeros)
        return self.spam, self.ham


class NDMemoryCountColumns:
    """NumPy int64 spam/ham columns with geometric over-allocation.

    ``grow(n)`` returns length-``n`` views over capacity buffers that
    double when outgrown (the ND kernel's original strategy), so
    repeated single-token growth stays amortized O(1) instead of
    reallocating two vocab-sized arrays per new token.
    """

    __slots__ = ("_spam_buf", "_ham_buf", "_used")

    def __init__(self) -> None:
        import numpy as np

        self._spam_buf = np.zeros(0, dtype=np.int64)
        self._ham_buf = np.zeros(0, dtype=np.int64)
        self._used = 0

    @classmethod
    def adopt(cls, spam, ham) -> "NDMemoryCountColumns":
        """Wrap existing arrays (unpickling / ``copy()``), no copy."""
        columns = cls.__new__(cls)
        columns._spam_buf = spam
        columns._ham_buf = ham
        columns._used = spam.shape[0]
        return columns

    def grow(self, n: int):
        import numpy as np

        if self._spam_buf.shape[0] < n:
            capacity = max(n, 2 * self._spam_buf.shape[0], 256)
            spam_buf = np.zeros(capacity, dtype=np.int64)
            ham_buf = np.zeros(capacity, dtype=np.int64)
            used = self._used
            spam_buf[:used] = self._spam_buf[:used]
            ham_buf[:used] = self._ham_buf[:used]
            self._spam_buf = spam_buf
            self._ham_buf = ham_buf
        self._used = max(self._used, n)
        return self._spam_buf[:n], self._ham_buf[:n]


class MemoryBackend(StorageBackend):
    """Everything in RAM — the default and the determinism baseline."""

    name = "memory"

    def new_token_table(self) -> TokenTable:
        return TokenTable()

    def count_columns(self, kind: str):
        if kind == "nd":
            return NDMemoryCountColumns()
        return MemoryCountColumns()

    def corpus_store(self) -> None:
        return None
