"""Streaming mailstream engine: time-ordered attack scenarios.

The paper's deployment model (Section 2.1) is an organization
retraining SpamBayes periodically on arriving mail while an attacker
drips poison into the stream.  This package is that workload as an
engine-layer subsystem:

* :mod:`repro.stream.spec` — :class:`StreamSpec`, the declarative
  arrival schedule (per-tick ham/spam, attack ramps: constant /
  linear / burst, defense choice);
* :mod:`repro.stream.defenses` — pluggable per-tick defenses (none,
  RONI recalibrated on accepted mail, refitted dynamic thresholds);
* :mod:`repro.stream.runner` — :class:`StreamRunner`, which plays the
  stream against one incrementally trained classifier (bulk-kernel
  held-out evaluation every tick; snapshot/restore WAL for the
  no-poison counterfactual) and emits per-tick :class:`StreamOutcome`
  records that serialize through the shared results layer.

Streams are registered scenarios (``repro list-scenarios`` shows the
``stream-*`` family), so ``repro run-scenario`` / ``repro replicate``
and the shared worker pool all apply; the legacy
:func:`repro.experiments.retraining.run_retraining_simulation` is a
thin delegation onto this engine.
"""

from repro.stream.defenses import GateDecision, TickDefense, build_tick_defense
from repro.stream.runner import (
    StreamOutcome,
    StreamResult,
    StreamRunner,
    run_stream_experiment,
)
from repro.stream.spec import DEFENSES, RAMPS, StreamSpec

__all__ = [
    "DEFENSES",
    "GateDecision",
    "RAMPS",
    "StreamOutcome",
    "StreamResult",
    "StreamRunner",
    "StreamSpec",
    "TickDefense",
    "build_tick_defense",
    "run_stream_experiment",
]
