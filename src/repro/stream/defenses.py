"""Pluggable per-tick defenses for the streaming engine.

Each tick of a stream hands its arrivals (legitimate mail plus that
tick's attack batch, already labeled as the contamination assumption
dictates) to a :class:`TickDefense` before anything is trained.  A
defense has two hooks:

* :meth:`TickDefense.gate` — decide, message by message, what enters
  this tick's retrain.  This is where the RONI gate lives: recalibrate
  on previously *accepted* mail, then judge every arrival.
* :meth:`TickDefense.cutoffs` — after the retrain, optionally refit
  the decision thresholds on the (possibly poisoned) training mail
  accumulated so far.  This is where the Section 5.2 dynamic
  threshold defense lives; gate-style defenses return ``None`` and
  the static (θ0, θ1) apply.

The RONI gate replays the legacy weekly loop **draw for draw**: the
calibration subsample and the :class:`~repro.defenses.roni.RoniDefense`
resamples consume the tick's rng in exactly the historical order, and
arrivals are judged legitimate-first — which is what lets
``run_retraining_simulation`` delegate to the stream engine
bit-identically (``tests/test_stream_vs_retraining.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence, TYPE_CHECKING

from repro.corpus.dataset import Dataset, LabeledMessage
from repro.defenses.roni import RoniDefense
from repro.defenses.threshold import (
    DynamicThresholdConfig,
    DynamicThresholdDefense,
    ThresholdFit,
)
from repro.errors import ExperimentError

if TYPE_CHECKING:
    from repro.spambayes.token_table import TokenTable
    from repro.stream.spec import StreamSpec

__all__ = ["GateDecision", "TickDefense", "build_tick_defense"]


@dataclass
class GateDecision:
    """What a tick's gate let through, and what it cost.

    ``accepted_legitimate`` joins the defense's calibration history;
    ``trained_attack`` is the attack mail that slipped through (the
    runner tracks it cumulatively for the snapshot/restore clean
    counterfactual).  The retrain batch is the concatenation, in gate
    order: legitimate arrivals first, then surviving attack mail —
    the legacy weekly loop's order.
    """

    accepted_legitimate: list[LabeledMessage] = field(default_factory=list)
    trained_attack: list[LabeledMessage] = field(default_factory=list)
    attack_rejected: int = 0
    legitimate_rejected: int = 0

    @property
    def to_train(self) -> list[LabeledMessage]:
        return self.accepted_legitimate + self.trained_attack

    @property
    def attack_trained(self) -> int:
        return len(self.trained_attack)


class TickDefense:
    """Base: accept everything, keep the static thresholds.

    Also the concrete ``"none"`` defense — and the fallback behaviour
    subclasses inherit for ticks where they cannot act yet (RONI
    before enough accepted history exists).
    """

    def __init__(self, spec: "StreamSpec", table: "TokenTable") -> None:
        self.spec = spec
        self.table = table

    def gate(
        self,
        tick: int,
        arrivals: Sequence[LabeledMessage],
        attack_arrivals: Sequence[LabeledMessage],
        accepted_history: Sequence[LabeledMessage],
        tick_rng: random.Random,
    ) -> GateDecision:
        return GateDecision(
            accepted_legitimate=list(arrivals),
            trained_attack=list(attack_arrivals),
        )

    def cutoffs(
        self,
        trained_history: Sequence[LabeledMessage],
        tick_rng: random.Random,
    ) -> ThresholdFit | None:
        return None


class RoniTickDefense(TickDefense):
    """The RONI gate, recalibrated every tick on accepted mail.

    Until the accepted history can seat one ``train_size +
    validation_size`` resample the gate is open (the legacy warm-up
    behaviour); from then on each tick subsamples
    ``roni_calibration_size`` accepted messages with the tick's rng,
    builds a fresh :class:`RoniDefense` over them, and judges every
    arrival — legitimate mail first, then the attack batch.
    """

    def gate(
        self,
        tick: int,
        arrivals: Sequence[LabeledMessage],
        attack_arrivals: Sequence[LabeledMessage],
        accepted_history: Sequence[LabeledMessage],
        tick_rng: random.Random,
    ) -> GateDecision:
        config = self.spec.roni
        if len(accepted_history) < config.train_size + config.validation_size:
            # Not enough history to calibrate a gate yet.
            return super().gate(tick, arrivals, attack_arrivals, accepted_history, tick_rng)
        calibration_pool = Dataset(
            list(accepted_history), name=f"accepted-through-tick{tick - 1}"
        )
        sample_size = min(self.spec.roni_calibration_size, len(calibration_pool))
        pool = calibration_pool.subset(
            tick_rng.sample(range(len(calibration_pool)), sample_size)
        )
        # The stream's shared interning table rides along, so calibration
        # mail encoded in earlier ticks is not re-encoded here (scores
        # are table-layout-independent: this changes nothing but speed).
        defense = RoniDefense(
            pool,
            tick_rng,
            config=config,
            options=self.spec.options,
            table=self.table,
        )
        decision = GateDecision()
        for message in arrivals:
            if defense.judge(message).rejected:
                decision.legitimate_rejected += 1
            else:
                decision.accepted_legitimate.append(message)
        for message in attack_arrivals:
            if defense.judge(message).rejected:
                decision.attack_rejected += 1
            else:
                decision.trained_attack.append(message)
        return decision


class ThresholdTickDefense(TickDefense):
    """Section 5.2's dynamic thresholds, refitted after every retrain.

    The gate is open (distribution-shift defenses train on everything,
    attack mail included); after the tick's retrain the (θ0, θ1) pair
    is refitted on the full trained history — exactly what a deployed
    defense would see — and that tick's held-out evaluation runs under
    the fitted cutoffs.
    """

    def cutoffs(
        self,
        trained_history: Sequence[LabeledMessage],
        tick_rng: random.Random,
    ) -> ThresholdFit | None:
        defense = DynamicThresholdDefense(
            config=DynamicThresholdConfig(quantile=self.spec.threshold_quantile),
            options=self.spec.options,
        )
        return defense.fit(
            Dataset(list(trained_history), name="trained-history"), tick_rng
        )


_DEFENSES = {
    "none": TickDefense,
    "roni": RoniTickDefense,
    "threshold": ThresholdTickDefense,
}


def build_tick_defense(spec: "StreamSpec", table: "TokenTable") -> TickDefense:
    """The spec's defense, instantiated over the stream's shared table."""
    try:
        factory = _DEFENSES[spec.defense]
    except KeyError:  # pragma: no cover - StreamSpec validates first
        raise ExperimentError(f"unknown defense {spec.defense!r}") from None
    return factory(spec, table)
