"""Per-tick phase timing for the streaming tick loop.

The tick loop has four recurring phases — ``train`` (arrival slicing,
attack generation and the incremental retrain), ``defense`` (the gate
plus any cutoff refit), ``eval`` (the held-out bulk scoring pass) and
``counterfactual`` (maintaining and evaluating the no-poison clean
twin, or the retained snapshot/unlearn excursion) — plus a one-off
``prepare`` step (corpus generation and test-set encoding).  With
``StreamSpec.profile_phases`` set, :class:`~repro.stream.runner.
StreamRunner` wraps each phase with :func:`time.perf_counter` and
attaches the resulting :class:`StreamProfile` to its
:class:`~repro.stream.runner.StreamResult` — *outside* the serialized
record, because wall-clock timings are the one thing the engine's
byte-identical-records contract must never depend on.

The profile is what makes stream perf work measurable rather than
asserted: ``repro run-scenario <stream-*> --profile`` renders it, and
``benchmarks/bench_stream_throughput.py`` records the per-tick
counterfactual series (flat under the clean twin, linear under the
unlearn path) into ``BENCH_stream*.json`` and asserts the phases sum
to within tolerance of the measured wall time.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["PHASES", "PhaseTimer", "StreamProfile"]

PHASES: tuple[str, ...] = ("train", "defense", "eval", "counterfactual")
"""The recurring tick-loop phases, in reporting order."""


@dataclass
class StreamProfile:
    """Wall-clock accounting of one played stream, phase by phase.

    ``per_tick[i]`` maps each of :data:`PHASES` to tick ``i+1``'s
    seconds; ``prepare_seconds`` covers the one-off setup before the
    loop and ``total_seconds`` the whole :meth:`StreamRunner.run` call,
    so ``accounted_fraction()`` exposes how much of the run the phase
    timers explain (loop scaffolding and record assembly are the only
    unattributed remainder).
    """

    per_tick: list[dict[str, float]] = field(default_factory=list)
    prepare_seconds: float = 0.0
    total_seconds: float = 0.0

    def phase_totals(self) -> dict[str, float]:
        """Seconds per phase summed over every tick."""
        totals = {phase: 0.0 for phase in PHASES}
        for tick in self.per_tick:
            for phase, seconds in tick.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        return totals

    def phase_series(self, phase: str) -> list[float]:
        """One phase's seconds, tick by tick."""
        return [tick.get(phase, 0.0) for tick in self.per_tick]

    def accounted_seconds(self) -> float:
        """Prepare plus every timed phase — the explained wall time."""
        return self.prepare_seconds + sum(self.phase_totals().values())

    def accounted_fraction(self) -> float:
        """Explained share of ``total_seconds`` (1.0 when untimed)."""
        if self.total_seconds <= 0.0:
            return 1.0
        return self.accounted_seconds() / self.total_seconds

    def as_dict(self) -> dict:
        """JSON-ready form for the benchmark records."""
        return {
            "prepare_seconds": self.prepare_seconds,
            "total_seconds": self.total_seconds,
            "accounted_seconds": self.accounted_seconds(),
            "phase_totals": self.phase_totals(),
            "per_tick": [dict(tick) for tick in self.per_tick],
        }

    def render(self) -> str:
        """ASCII phase table: one row per tick plus totals."""
        headers = ["tick", *PHASES, "tick total"]
        rows: list[list[str]] = []
        for index, tick in enumerate(self.per_tick, start=1):
            seconds = [tick.get(phase, 0.0) for phase in PHASES]
            rows.append(
                [str(index)]
                + [f"{value * 1e3:.2f}" for value in seconds]
                + [f"{sum(seconds) * 1e3:.2f}"]
            )
        totals = self.phase_totals()
        rows.append(
            ["all"]
            + [f"{totals[phase] * 1e3:.2f}" for phase in PHASES]
            + [f"{sum(totals.values()) * 1e3:.2f}"]
        )
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in rows))
            for i in range(len(headers))
        ]
        lines = [
            "phase timings (ms per tick)",
            "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        ]
        lines.extend(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths)) for row in rows
        )
        lines.append(
            f"prepare {self.prepare_seconds * 1e3:.2f} ms, "
            f"wall {self.total_seconds * 1e3:.2f} ms, "
            f"accounted {self.accounted_fraction() * 100.0:.1f}%"
        )
        return "\n".join(lines)


class PhaseTimer:
    """Accumulates phase seconds into a :class:`StreamProfile`.

    Disabled timers hand out one shared no-op context manager, so the
    un-profiled tick loop pays a single attribute load per phase —
    the profiling hooks cost effectively nothing when off.
    """

    def __init__(self, enabled: bool) -> None:
        self.profile: StreamProfile | None = StreamProfile() if enabled else None
        self._tick: dict[str, float] | None = None

    @contextmanager
    def _null(self) -> Iterator[None]:
        yield

    def phase(self, name: str):
        if self.profile is None:
            return self._null()
        return self._measure(name)

    @contextmanager
    def _measure(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            if name == "prepare":
                self.profile.prepare_seconds += elapsed
            else:
                tick = self._tick
                if tick is not None:
                    tick[name] = tick.get(name, 0.0) + elapsed

    def start_tick(self) -> None:
        if self.profile is not None:
            self._tick = {}
            self.profile.per_tick.append(self._tick)

    def finish(self, total_seconds: float) -> StreamProfile | None:
        if self.profile is not None:
            self.profile.total_seconds = total_seconds
        return self.profile
